#!/usr/bin/env python3
"""Anatomy of the Enhanced Index Table (Figures 7 and 8, live).

Feeds the miss sequence from the paper's Figure 8 —

    A B L D F A Q B A X C U

— through Domino's metadata structures with sampling disabled, then
prints the resulting EIT contents next to the paper's expected state:

    C -> (U, P7)
    A -> (X, P6), (Q, P4), (B, P1)      (MRU first)
    B -> (A, P5), (L, P2)
    F -> (A, P3)

and finally walks one lookup to show both halves of the combined
one-and-two-address mechanism.

Run:  python examples/eit_anatomy.py
"""

from repro.config import small_test_config
from repro.core.domino import DominoPrefetcher

SEQUENCE = "A B L D F A Q B A X C U".split()
NAMES = {letter: 100 + i for i, letter in enumerate(sorted(set(SEQUENCE)))}
LETTERS = {v: k for k, v in NAMES.items()}


def main() -> None:
    config = small_test_config(sampling_probability=1.0)  # always update
    domino = DominoPrefetcher(config)
    for letter in SEQUENCE:
        domino.on_miss(0, NAMES[letter])

    print("miss sequence:", " ".join(SEQUENCE))
    print("\nEIT contents (tag -> entries, MRU first):")
    for letter in sorted(set(SEQUENCE)):
        super_entry = domino.eit.lookup(NAMES[letter])
        if super_entry is None or len(super_entry) == 0:
            continue
        entries = ", ".join(
            f"({LETTERS[a]}, P{p})" for a, p in reversed(super_entry.snapshot()))
        print(f"  {letter} -> {entries}")

    print("\nReplaying a lookup for 'A':")
    super_entry = domino.eit.lookup(NAMES["A"])
    address, pointer = super_entry.most_recent()
    print(f"  1-address step: most recent entry says A is usually "
          f"followed by {LETTERS[address]} -> speculative prefetch "
          f"({LETTERS[address]}) after ONE memory round trip")
    match = super_entry.match(NAMES["Q"])
    print(f"  2-address step: if the next triggering event is Q, the "
          f"matching entry points at HT position P{match}; the stream "
          f"after (A, Q) is replayed from P{match} + 2")
    history, _ = domino.history.read_forward(match + 2, 2)
    print(f"  ... which yields: "
          f"{' '.join(LETTERS[b] for b in history)}")


if __name__ == "__main__":
    main()
