#!/usr/bin/env python3
"""OLTP pointer chasing: where temporal prefetching earns its keep.

TPC-C style transactions chase B-tree and tuple pointers: every miss
depends on the previous one, so the out-of-order core cannot overlap
them and each one stalls the pipeline for a full memory round trip.
This example shows

1. the trace-driven view: Domino vs STMS coverage across prefetch
   degrees (the Fig. 11 -> Fig. 13 transition), and
2. the cycle view: quad-core speedup over the no-prefetcher baseline
   (the Fig. 14 measurement), where Domino's one-round-trip first
   prefetch buys extra timeliness.

Run:  python examples/oltp_pointer_chasing.py
"""

from repro import SystemConfig, make_prefetcher, simulate_trace
from repro.config import timing_config
from repro.sim.multicore import simulate_multicore
from repro.workloads import default_suite

N_ACCESSES = 100_000
WARMUP = N_ACCESSES // 2


def degree_sweep() -> None:
    config = SystemConfig()
    trace = default_suite().trace("oltp", N_ACCESSES)
    print("== Trace-driven: coverage/overpredictions by prefetch degree ==")
    print(f"{'degree':>6} {'stms':>16} {'domino':>16}")
    for degree in (1, 2, 4):
        cells = []
        for name in ("stms", "domino"):
            prefetcher = make_prefetcher(name, config, degree=degree)
            result = simulate_trace(trace, config, prefetcher, warmup=WARMUP)
            cells.append(f"{result.coverage:5.1%}/{result.overprediction_ratio:6.1%}")
        print(f"{degree:>6} {cells[0]:>16} {cells[1]:>16}")
    print()


def quad_core_speedup() -> None:
    config = timing_config()  # scaled LLC, see DESIGN.md
    suite = default_suite()
    traces = suite.core_traces("oltp", 60_000)
    baseline = simulate_multicore(traces, config, "baseline")
    print("== Cycle model: quad-core speedup over baseline ==")
    print(f"baseline aggregate IPC: {baseline.ipc:.3f} "
          f"(bandwidth {baseline.bandwidth_utilization:.0%})")
    for name in ("stms", "digram", "domino"):
        run = simulate_multicore(traces, config, name)
        speedup = run.ipc / baseline.ipc
        print(f"{name:>8}: speedup {speedup - 1:+6.1%}   "
              f"coverage {run.coverage:5.1%}   "
              f"bandwidth {run.bandwidth_utilization:.0%}")


def main() -> None:
    degree_sweep()
    quad_core_speedup()


if __name__ == "__main__":
    main()
