#!/usr/bin/env python3
"""Characterise the nine server workloads and chart the key statistics.

Uses the profiling tool (repro.workloads.analysis) to measure, per
workload, the properties the paper's Table II discussion leans on:
misses per kilo-instruction, miss-stream repetitiveness (the Sequitur
opportunity), pointer-chase density, and page locality — then renders
ASCII charts so the suite's character can be eyeballed at a glance.

Run:  python examples/workload_characterisation.py
"""

from repro import SystemConfig
from repro.stats import bar_chart
from repro.workloads import default_suite, profile_trace

N_ACCESSES = 60_000


def main() -> None:
    config = SystemConfig()
    suite = default_suite()
    profiles = []
    for name in suite.names:
        profile = profile_trace(suite.trace(name, N_ACCESSES), config)
        profiles.append(profile)
        print(profile.summary())

    labels = [p.name for p in profiles]
    print()
    print(bar_chart(labels, [p.miss_repetitiveness for p in profiles],
                    title="miss-stream repetitiveness (Sequitur opportunity)",
                    fmt="{:.1%}"))
    print()
    print(bar_chart(labels, [p.dependent_frac for p in profiles],
                    title="pointer-chase density (dependent accesses)",
                    fmt="{:.1%}"))
    print()
    print(bar_chart(labels, [p.page_locality for p in profiles],
                    title="page locality of consecutive misses",
                    fmt="{:.1%}"))
    print("\nExpected character: SAT Solver least repetitive, OLTP most "
          "dependent, Media Streaming / MapReduce-C most page-local.")


if __name__ == "__main__":
    main()
