#!/usr/bin/env python3
"""Model your own application and size a temporal prefetcher for it.

The workload generator is parameterised by the statistical properties
temporal prefetchers care about (see repro.workloads.base).  This
example models a hypothetical message broker — highly repetitive
delivery paths, a modest set of hot queues shared across consumers —
then (1) measures the temporal opportunity with Sequitur, (2) compares
the prefetcher family on the trace, and (3) sweeps Domino's EIT size to
find the knee (the Fig. 10 methodology applied to a new workload).

Run:  python examples/custom_workload.py
"""

from repro import SystemConfig, WorkloadConfig, make_prefetcher, simulate_trace
from repro.sequitur import analyze_sequence
from repro.sim.engine import collect_miss_stream
from repro.workloads import generate_trace

BROKER = WorkloadConfig(
    name="message_broker",
    description="hypothetical queue broker: hot delivery paths, few scans",
    n_documents=1200,          # distinct delivery paths
    doc_length_mean=11.0,      # touches per delivery
    doc_length_min=5,
    zipf_alpha=0.9,            # a few very hot queues
    hot_pool_blocks=4096,      # queue descriptors shared across paths
    shared_frac=0.8,
    spatial_doc_frac=0.08,     # occasional log scans
    family_size=3,             # same queue head, different consumers
    interleave=2, switch_prob=0.2,
    truncation_prob=0.04, mutation_rate=0.02, noise_rate=0.05,
    dependent_frac=0.45,       # pointer-linked message headers
    pc_pool=256, pcs_per_doc=8, work_mean=35.0,
)

N_ACCESSES = 100_000
WARMUP = N_ACCESSES // 2


def main() -> None:
    config = SystemConfig()
    trace = generate_trace(BROKER, N_ACCESSES, seed=7)

    # 1. How much temporal opportunity is there at all?
    misses = [b for _, b in collect_miss_stream(
        trace.slice(WARMUP, len(trace)), config)]
    analysis = analyze_sequence(misses)
    print(f"misses in measured window: {analysis.total_misses}")
    print(f"temporal opportunity (Sequitur): {analysis.opportunity:.1%}, "
          f"mean stream length {analysis.mean_stream_length:.1f}\n")

    # 2. Which prefetcher fits?
    print(f"{'prefetcher':>12} {'coverage':>9} {'overpred':>9} {'accuracy':>9}")
    for name in ("stride", "vldp", "isb", "stms", "digram", "domino"):
        result = simulate_trace(trace, config, make_prefetcher(name, config),
                                warmup=WARMUP)
        print(f"{name:>12} {result.coverage:>9.1%} "
              f"{result.overprediction_ratio:>9.1%} {result.accuracy:>9.1%}")

    # 3. Size Domino's EIT for this workload (Fig. 10 methodology).
    print("\nDomino coverage vs EIT rows:")
    for rows in (1 << 8, 1 << 10, 1 << 12, 1 << 16):
        sized = config.scaled(eit_rows=rows)
        result = simulate_trace(trace, sized,
                                make_prefetcher("domino", sized),
                                warmup=WARMUP)
        print(f"  {rows:>7} rows: {result.coverage:.1%}")


if __name__ == "__main__":
    main()
