#!/usr/bin/env python3
"""Spatio-temporal prefetching (the Fig. 16 experiment as an example).

VLDP predicts *unobserved* misses from in-page delta patterns — it can
catch compulsory misses but never crosses a page.  Domino replays
*observed* global sequences across pages but cannot predict cold
misses.  Stacking them covers the union: this example reproduces that
on the Data Serving workload and prints which component each covered
miss came from.

Run:  python examples/spatio_temporal_stack.py
"""

from repro import SystemConfig, make_prefetcher, simulate_trace
from repro.workloads import default_suite

N_ACCESSES = 100_000
WARMUP = N_ACCESSES // 2


def main() -> None:
    config = SystemConfig()
    suite = default_suite()
    for workload in ("data_serving", "oltp", "media_streaming"):
        trace = suite.trace(workload, N_ACCESSES)
        vldp = simulate_trace(trace, config, make_prefetcher("vldp", config),
                              warmup=WARMUP)
        domino = simulate_trace(trace, config,
                                make_prefetcher("domino", config),
                                warmup=WARMUP)
        combo = simulate_trace(trace, config,
                               make_prefetcher("vldp+domino", config),
                               warmup=WARMUP)
        hits = combo.extras["component_hits"]
        total_hits = max(hits["vldp"] + hits["domino"], 1)
        print(f"{workload}:")
        print(f"  vldp alone     {vldp.coverage:6.1%}")
        print(f"  domino alone   {domino.coverage:6.1%}")
        print(f"  stacked        {combo.coverage:6.1%}  "
              f"(vldp share of hits {hits['vldp'] / total_hits:.0%})")
        gain_v = combo.coverage - vldp.coverage
        gain_d = combo.coverage - domino.coverage
        print(f"  gain over vldp {gain_v:+.1%}, over domino {gain_d:+.1%}\n")

    print("Expected shape (paper): the stack beats both components; "
          "OLTP gains almost nothing over Domino alone (few spatial "
          "patterns), Data Serving gains a lot.")


if __name__ == "__main__":
    main()
