#!/usr/bin/env python3
"""Quickstart: run the Domino prefetcher on a server workload.

Generates an OLTP-like trace, replays it through the trace-driven
simulator with no prefetcher, with STMS, and with Domino, and prints
the paper's headline metrics (coverage / overpredictions / accuracy).

Run:  python examples/quickstart.py
"""

from repro import SystemConfig, get_workload, make_prefetcher, simulate_trace
from repro.workloads import generate_trace

N_ACCESSES = 120_000
WARMUP = N_ACCESSES // 2  # first half trains caches + metadata tables


def main() -> None:
    config = SystemConfig()  # Table I of the paper
    workload = get_workload("oltp")
    print(f"workload: {workload.name} — {workload.description}")

    trace = generate_trace(workload, N_ACCESSES, seed=1)
    print(f"trace: {len(trace)} accesses over "
          f"{trace.footprint_blocks} distinct 64 B blocks\n")

    for name in ("baseline", "stms", "domino"):
        prefetcher = make_prefetcher(name, config)
        result = simulate_trace(trace, config, prefetcher, warmup=WARMUP)
        print(f"{name:>9}: coverage {result.coverage:6.1%}   "
              f"overpredictions {result.overprediction_ratio:6.1%}   "
              f"accuracy {result.accuracy:6.1%}")

    print("\nExpected shape (paper): Domino covers the most misses with "
          "far fewer overpredictions than STMS.")


if __name__ == "__main__":
    main()
