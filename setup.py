"""Legacy shim so ``pip install -e .`` works without the wheel package
(this environment is offline; modern editable installs need bdist_wheel)."""

from setuptools import setup

setup()
