#!/usr/bin/env python3
"""Calibration harness: run the full prefetcher comparison on every
workload and print the Fig. 11/13-style table plus the Sequitur
opportunity, so workload parameters can be tuned against the paper's
qualitative targets (see DESIGN.md §4).

Methodology mirrors the experiments: the first half of each trace warms
caches and (crucially) the sampled metadata tables; measurements cover
the second half.

Usage:
    python scripts/calibrate.py [n_accesses] [degree] [workload ...]
"""

import sys
import time

from repro import SystemConfig, make_prefetcher, simulate_trace, workload_names
from repro.sequitur import analyze_sequence
from repro.sim.engine import collect_miss_stream
from repro.workloads import default_suite

PREFETCHERS = ["vldp", "isb", "stms", "digram", "domino"]


def main() -> None:
    n_accesses = int(sys.argv[1]) if len(sys.argv) > 1 else 400_000
    degree = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    names = sys.argv[3:] or workload_names()
    config = SystemConfig()
    suite = default_suite()
    warmup = n_accesses // 2

    header = f"{'workload':<16} {'events':>7} " + "".join(
        f"{p:>18}" for p in PREFETCHERS) + f"{'sequitur':>22}"
    print(header)
    print("-" * len(header))
    for name in names:
        t0 = time.time()
        trace = suite.trace(name, n_accesses)
        misses = [b for _, b in collect_miss_stream(
            trace.slice(warmup, n_accesses), config)]
        cells = []
        for pf_name in PREFETCHERS:
            pf = make_prefetcher(pf_name, config, degree=degree)
            r = simulate_trace(trace, config, pf, warmup=warmup)
            cells.append(f"{r.coverage:5.1%}/{r.overprediction_ratio:6.1%}")
        seq = analyze_sequence(misses)
        cells.append(f"{seq.opportunity:5.1%} len={seq.mean_stream_length:4.1f}")
        print(f"{name:<16} {len(misses):>7} " + "".join(f"{c:>18}" for c in cells)
              + f"   ({time.time()-t0:.0f}s)")


if __name__ == "__main__":
    main()
