#!/usr/bin/env bash
# Full reproduction pipeline: install, test, benchmark, regenerate every
# figure/table at full experiment size.  Takes ~30-40 minutes on a laptop.
set -euo pipefail
cd "$(dirname "$0")/.."

pip install -e . --no-build-isolation 2>/dev/null || pip install -e .

echo "== unit / property / integration tests =="
pytest tests/ 2>&1 | tee test_output.txt

echo "== benchmarks (one per paper figure + ablations) =="
pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

echo "== full-size experiments (every table and figure) =="
python -m repro.cli run all 2>&1 | tee experiments_output.txt

echo "done; see test_output.txt, bench_output.txt, experiments_output.txt"
