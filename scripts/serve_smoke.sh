#!/usr/bin/env bash
# Serve smoke: boot the experiment server for real and prove the
# serving path end to end.  Four gates:
#
#   1. lifecycle    — server starts on a unix socket, serves a small
#                     multi-tenant loadgen scenario with zero errors,
#                     and drains cleanly on SIGTERM (exit 0).
#   2. equivalence  — a job fetched through the wire is bit-identical
#                     to the same spec computed by run_cells in-process.
#   3. telemetry    — every event the server traced uses a registered
#                     obs name, and `obs summary` parses the trace
#                     (doubling as a trace-integrity check).
#   4. store warm   — serving populated the artifact store (the batch
#                     path would hit, not recompute).
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORK=$(mktemp -d)
SOCK="$WORK/serve.sock"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== gate 1: server lifecycle under load =="
python -m repro.cli serve --socket "$SOCK" --slots 2 \
  --cache-dir "$WORK/cache" --trace-events "$WORK/trace.jsonl" \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "server never bound $SOCK"; cat "$WORK/server.log"; exit 1; }

python -m repro.cli loadgen "unix:$SOCK" \
  --tenants 2 --jobs-per-tenant 3 --rate 5 --n 2000 \
  --out "$WORK/loadgen.json"
python - "$WORK/loadgen.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["errors"] == 0 and report["failed"] == 0, report
assert report["completed"] == report["submitted"], report
print(f"loadgen: {report['completed']} jobs, "
      f"fairness {report['fairness_jain']}")
EOF

echo "== gate 2: served == batch, payload for payload =="
python - "$SOCK" <<'EOF'
import asyncio, sys
from repro.runner import ExecutionPolicy, run_cells
from repro.serve import JobSpec, ServeClient

SPEC = {"workload": "oltp", "prefetcher": "domino", "kind": "trace",
        "degrees": [1, 4], "n_accesses": 2000, "seed": 77}

async def serve_once():
    async with await ServeClient.connect(f"unix:{sys.argv[1]}",
                                         "smoke") as client:
        return await client.run_job(SPEC, "smoke-1")

served = asyncio.run(serve_once())
assert served.status == "ok", (served.status, served.reason)
cells, options = JobSpec.from_dict(SPEC).compile()
batch, manifest = run_cells(cells, options,
                            ExecutionPolicy(jobs=1, use_cache=False))
assert manifest.failed == 0
assert served.payloads == batch, "served payloads differ from batch"
print(f"{len(batch)} cells bit-identical through the wire")
EOF

# Clean shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "drained; bye" "$WORK/server.log" \
  || { echo "no clean-drain message"; cat "$WORK/server.log"; exit 1; }
echo "drained cleanly on SIGTERM"

echo "== gate 3: zero unregistered obs names in the trace =="
python - "$WORK/trace.jsonl" <<'EOF'
import sys
from repro.obs import read_jsonl
from repro.obs.names import EVENT_NAMES

events = read_jsonl(sys.argv[1])
assert events, "server wrote an empty trace"
names = {str(e.get("event", "")) for e in events}
rogue = sorted(names - EVENT_NAMES)
assert not rogue, f"unregistered event names in trace: {rogue}"
served = [n for n in names if any(
    e.get("event") == n and str(e.get("component", "")).startswith("serve.")
    for e in events)]
assert served, "trace has no serve-tier events"
print(f"{len(events)} events, {len(names)} names, all registered")
EOF
python -m repro.cli obs summary "$WORK/trace.jsonl" --top 5 > /dev/null
echo "obs summary parses the trace"

echo "== gate 4: serving warmed the artifact store =="
python -m repro.cli cache stats --cache-dir "$WORK/cache" | tee "$WORK/stats.txt"
grep -vq " 0 artifacts" "$WORK/stats.txt" || true
python - "$WORK/cache" <<'EOF'
import sys
from repro.runner import ResultStore
stats = ResultStore(sys.argv[1]).stats()
assert stats.n_entries > 0, "serving left the store empty"
assert stats.n_quarantined == 0, "serving quarantined artifacts"
print(f"store holds {stats.n_entries} artifacts, none quarantined")
EOF

echo "serve smoke: all gates passed"
