#!/usr/bin/env bash
# Serve smoke: boot the experiment server for real and prove the
# serving path end to end.  Six gates:
#
#   1. lifecycle    — server starts on a unix socket, serves a small
#                     multi-tenant loadgen scenario with zero errors,
#                     and drains cleanly on SIGTERM (exit 0).
#   2. equivalence  — a job fetched through the wire is bit-identical
#                     to the same spec computed by run_cells in-process.
#   3. stats plane  — the status frame and the Prometheus metrics
#                     frame expose registered-name metrics only.
#   4. telemetry    — every event the server traced uses a registered
#                     obs name and the span forest is well-formed, all
#                     asserted over `obs summary --format json` (no
#                     text grepping — the tables may change shape).
#   5. store warm   — serving populated the artifact store (the batch
#                     path would hit, not recompute).
#   6. partition chaos — with one tenant fully partitioned at the write
#                     boundary, its job is reaped (cancel-on-disconnect),
#                     healthy tenants stay bit-identical to batch, and
#                     the server drains with nothing orphaned in flight.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORK=$(mktemp -d)
SOCK="$WORK/serve.sock"
SERVER_PID=""
CHAOS_PID=""
trap 'kill "$SERVER_PID" "$CHAOS_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== gate 1: server lifecycle under load =="
python -m repro.cli serve --socket "$SOCK" --slots 4 \
  --cache-dir "$WORK/cache" --trace-events "$WORK/trace.jsonl" \
  > "$WORK/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "server never bound $SOCK"; cat "$WORK/server.log"; exit 1; }

python -m repro.cli loadgen "unix:$SOCK" \
  --tenants 2 --jobs-per-tenant 3 --rate 5 --n 2000 \
  --out "$WORK/loadgen.json"
python - "$WORK/loadgen.json" <<'EOF'
import json, sys
report = json.load(open(sys.argv[1]))
assert report["errors"] == 0 and report["failed"] == 0, report
assert report["completed"] == report["submitted"], report
print(f"loadgen: {report['completed']} jobs, "
      f"fairness {report['fairness_jain']}")
EOF

echo "== gate 2: served == batch, payload for payload =="
python - "$SOCK" <<'EOF'
import asyncio, sys
from repro.runner import ExecutionPolicy, run_cells
from repro.serve import JobSpec, ServeClient

SPEC = {"workload": "oltp", "prefetcher": "domino", "kind": "trace",
        "degrees": [1, 4], "n_accesses": 2000, "seed": 77}

async def serve_once():
    async with await ServeClient.connect(f"unix:{sys.argv[1]}",
                                         "smoke") as client:
        return await client.run_job(SPEC, "smoke-1")

served = asyncio.run(serve_once())
assert served.status == "ok", (served.status, served.reason)
cells, options = JobSpec.from_dict(SPEC).compile()
batch, manifest = run_cells(cells, options,
                            ExecutionPolicy(jobs=1, use_cache=False))
assert manifest.failed == 0
assert served.payloads == batch, "served payloads differ from batch"
print(f"{len(batch)} cells bit-identical through the wire")
EOF

echo "== gate 3: stats plane exposes registered names only =="
python - "$SOCK" <<'EOF'
import asyncio, sys
from repro.obs.names import METRIC_NAMES
from repro.serve import ServeClient

async def probe():
    async with await ServeClient.connect(f"unix:{sys.argv[1]}",
                                         "smoke") as client:
        return await client.status(), await client.metrics()

stats, metrics = asyncio.run(probe())
assert stats["uptime_s"] >= 0 and "tenants" in stats, stats
for kind in ("counters", "gauges"):
    for name in stats["metrics"][kind]:
        leaf = name.rpartition(".")[2]
        assert leaf in METRIC_NAMES, f"unregistered metric in stats: {name}"
assert stats["metrics"]["counters"].get("serve.server.jobs_admitted"), \
    "stats frame is missing the admission counters"

text = metrics["text"]
assert metrics["content_type"].startswith("text/plain"), metrics
series = [l for l in text.splitlines() if l and not l.startswith("#")]
assert series, "empty Prometheus exposition"
for line in series:
    assert line.startswith("domino_"), f"rogue series: {line}"
assert any(l.startswith("domino_serve_server_uptime_s") for l in series)
assert any('tenant="' in l for l in series), "no tenant-labelled series"
print(f"stats frame + {len(series)} Prometheus series, all registered")
EOF

# Clean shutdown: SIGTERM must drain and exit 0.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID"
grep -q "drained; bye" "$WORK/server.log" \
  || { echo "no clean-drain message"; cat "$WORK/server.log"; exit 1; }
echo "drained cleanly on SIGTERM"

echo "== gate 4: registered names + sound span forest (summary json) =="
python -m repro.cli obs summary "$WORK/trace.jsonl" --format json \
  > "$WORK/summary.json"
python - "$WORK/summary.json" <<'EOF'
import json, sys
from repro.obs.names import EVENT_NAMES

summary = json.load(open(sys.argv[1]))
assert summary["events"] > 0, "server wrote an empty trace"
names = {row["event"] for row in summary["event_counts"]}
rogue = sorted(names - EVENT_NAMES)
assert not rogue, f"unregistered event names in trace: {rogue}"
assert any(row["component"].startswith("serve.")
           for row in summary["event_counts"]), "no serve-tier events"

spans = summary["spans"]
assert spans["problems"] == [], f"malformed span forest: {spans['problems']}"
assert spans["count"] > 0, "traced serve run produced no spans"
for name in ("serve.connection", "serve.job", "serve.cell", "runner.cell"):
    assert spans["by_name"].get(name), f"no {name} spans in forest"
assert spans["traces"] >= 2, "expected one trace per loadgen connection"
print(f"{summary['events']} events / {spans['count']} spans in "
      f"{spans['traces']} traces, all registered, forest sound")
EOF

echo "== gate 5: serving warmed the artifact store =="
python -m repro.cli cache stats --cache-dir "$WORK/cache" | tee "$WORK/stats.txt"
grep -vq " 0 artifacts" "$WORK/stats.txt" || true
python - "$WORK/cache" <<'EOF'
import sys
from repro.runner import ResultStore
stats = ResultStore(sys.argv[1]).stats()
assert stats.n_entries > 0, "serving left the store empty"
assert stats.n_quarantined == 0, "serving quarantined artifacts"
print(f"store holds {stats.n_entries} artifacts, none quarantined")
EOF

echo "== gate 6: partition chaos — victim reaped, healthy bit-identical =="
CHAOS_SOCK="$WORK/chaos.sock"
python -m repro.cli serve --socket "$CHAOS_SOCK" --slots 2 \
  --cache-dir "$WORK/chaos-cache" --cancel-on-disconnect --cancel-check 1024 \
  --inject-net-faults "partition:1.0,net_tenants:victim" \
  > "$WORK/chaos.log" 2>&1 &
CHAOS_PID=$!

for _ in $(seq 100); do
  [ -S "$CHAOS_SOCK" ] && break
  sleep 0.1
done
[ -S "$CHAOS_SOCK" ] || { echo "chaos server never bound $CHAOS_SOCK"; cat "$WORK/chaos.log"; exit 1; }

python - "$CHAOS_SOCK" <<'EOF'
import asyncio, sys
from repro.errors import ProtocolError
from repro.runner import ExecutionPolicy, run_cells
from repro.serve import JobSpec, ServeClient, protocol

ADDR = f"unix:{sys.argv[1]}"
HEALTHY_SPEC = {"workload": "oltp", "prefetcher": "domino", "kind": "trace",
                "degrees": [1, 2], "n_accesses": 2000, "seed": 77}
LONG_SPEC = {**HEALTHY_SPEC, "degrees": [1], "n_accesses": 200_000}

async def victim():
    # The partition fires after the accepted frame; every later read
    # dies with the connection.
    client = await ServeClient.connect(ADDR, "victim")
    try:
        await client.submit(LONG_SPEC, "v1")
        accepted = await client.recv()
        assert accepted["type"] == protocol.ACCEPTED, accepted
        try:
            while True:
                await client.recv()
        except (ProtocolError, ConnectionError, asyncio.IncompleteReadError):
            pass
    finally:
        await client.close(polite=False)

async def healthy(tenant, results):
    for i in range(3):
        async with await ServeClient.connect(ADDR, tenant) as client:
            results[tenant].append(
                await client.run_job(HEALTHY_SPEC, f"{tenant}-{i}"))

async def drill():
    results = {t: [] for t in ("t0", "t1")}
    tasks = [asyncio.create_task(victim())]
    tasks += [asyncio.create_task(healthy(t, results)) for t in results]
    await asyncio.wait_for(asyncio.gather(*tasks), timeout=120)
    # The watchdog reaps the partitioned job; wait for the server to
    # report nothing left in flight.
    async with await ServeClient.connect(ADDR, "probe") as client:
        for _ in range(500):
            stats = await client.status()
            if stats["cancelled"] and not stats["in_flight"] \
                    and not stats["queue_depth"]:
                break
            await asyncio.sleep(0.02)
    return results, stats

results, stats = asyncio.run(drill())

assert stats["tenants"]["victim"]["cancelled"] == 1, stats["tenants"]
assert stats["tenants"]["victim"]["completed"] == 0, stats["tenants"]
assert stats["in_flight"] == 0 and stats["queue_depth"] == 0, \
    "orphaned jobs left in flight after the partition"
assert stats["in_flight_jobs"] == [], stats["in_flight_jobs"]

cells, options = JobSpec.from_dict(HEALTHY_SPEC).compile()
batch, manifest = run_cells(cells, options,
                            ExecutionPolicy(jobs=1, use_cache=False))
assert manifest.failed == 0
for tenant, jobs in results.items():
    assert [r.status for r in jobs] == ["ok"] * 3, (tenant, jobs)
    for r in jobs:
        assert r.payloads == batch, \
            f"cross-tenant divergence: {tenant} payloads differ from batch"
print(f"victim reaped, {sum(len(j) for j in results.values())} healthy "
      "jobs bit-identical, nothing orphaned")
EOF

# The chaos server must still drain cleanly after the partition drill.
kill -TERM "$CHAOS_PID"
wait "$CHAOS_PID"
grep -q "drained; bye" "$WORK/chaos.log" \
  || { echo "chaos server failed to drain"; cat "$WORK/chaos.log"; exit 1; }
echo "chaos server drained cleanly after the drill"

echo "serve smoke: all gates passed"
