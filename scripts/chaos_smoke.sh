#!/usr/bin/env bash
# Chaos smoke: exercise the runner's fault-tolerance layer end to end.
#
# Four gates, all deterministic (fault rolls are pure functions of the
# fault seed + cell key + attempt, so a passing combination passes on
# every machine, forever):
#
#   1. crash chaos   — fig11 under a 30% injected crash rate with a
#                      retry budget must still exit 0 and print the
#                      same table as a clean run.
#   2. serial parity — the same chaos run at --jobs 1 must produce the
#                      identical table (parallel == serial under faults).
#   3. kill + resume — a journaled run killed mid-flight and resumed
#                      must leave bit-identical cached payloads vs an
#                      uninterrupted run in a fresh cache.
#   4. shm hygiene   — a pooled run whose workers are killed with
#                      os._exit (the harshest worker death: no atexit,
#                      no cleanup) must still reap every shared-memory
#                      trace segment when the parent's scheduler exits.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH=src

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

RUN="python -m repro.cli run fig11 --quick --n 8000 --workloads oltp"
CHAOS="--inject-faults crash:0.3,seed:1 --retries 3"

echo "== gate 1: crash chaos survives on retries =="
$RUN --no-cache --jobs 4 $CHAOS | tee "$WORK/chaos-par.txt"

echo "== gate 2: parallel == serial under injected crashes =="
$RUN --no-cache --jobs 1 $CHAOS | tee "$WORK/chaos-ser.txt"
# The runner footer reports wall-clock and jobs, which legitimately
# differ; every table row above it must match exactly.
grep -v '^\[runner\]\|^([0-9]' "$WORK/chaos-par.txt" > "$WORK/par-table.txt"
grep -v '^\[runner\]\|^([0-9]' "$WORK/chaos-ser.txt" > "$WORK/ser-table.txt"
diff -u "$WORK/par-table.txt" "$WORK/ser-table.txt"
echo "tables identical"

echo "== gate 3: kill -9 mid-run, then --resume =="
# Uninterrupted reference run in its own cache.
$RUN --cache-dir "$WORK/ref-cache" --jobs 2 > /dev/null

# Journaled run, killed while cells are still executing.  Serial jobs
# keep the journal in the killed process itself, which is the harsher
# crash to recover from.  Waiting for the checkpoint file (created when
# the scheduler starts, before any cell completes) makes the kill land
# mid-run regardless of machine speed.
set +e
$RUN --cache-dir "$WORK/cache" --run-id smoke --jobs 1 > /dev/null 2>&1 &
PID=$!
for _ in $(seq 100); do
  [ -f "$WORK/cache/runs/smoke.ckpt" ] && break
  sleep 0.1
done
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
set -e

$RUN --cache-dir "$WORK/cache" --resume smoke --jobs 2 | tee "$WORK/resumed.txt"
grep -q 'resumed run' "$WORK/resumed.txt" || true

# Bit-identical payloads: hash every committed artifact (*.json only;
# a kill -9 may leave harmless *.tmp staging files behind).
hash_cache () {
  (cd "$1" && find . -name '*.json' | sort | xargs sha256sum)
}
hash_cache "$WORK/ref-cache" > "$WORK/ref.sha"
hash_cache "$WORK/cache"     > "$WORK/resumed.sha"
diff -u "$WORK/ref.sha" "$WORK/resumed.sha"
echo "resumed cache bit-identical to uninterrupted run"

echo "== gate 4: worker kill -9 leaks no shared-memory segments =="
# exit:P makes workers die via os._exit mid-cell (skipping all worker
# cleanup); --timeout-s lets the watchdog detect the vanished worker
# and rebuild the pool.  The parent's scheduler owns the shm trace
# segments and must unlink them all on the way out regardless.
$RUN --no-cache --jobs 2 \
  --inject-faults exit:0.4,seed:3 --retries 3 --timeout-s 5 \
  | tee "$WORK/chaos-exit.txt"
python - <<'EOF'
from repro.runner import shm

leaked = shm.active_segments()
if leaked:
    raise SystemExit(f"leaked shm segments after worker-kill chaos: {leaked}")
print("no shared-memory segments leaked")
EOF

echo "chaos smoke: all gates passed"
