"""Every registered experiment id has a benchmark regenerating it."""

from pathlib import Path

from repro.experiments import experiment_ids

BENCH_DIR = Path(__file__).resolve().parents[1] / "benchmarks"


def test_one_bench_per_experiment():
    for experiment_id in experiment_ids():
        bench = BENCH_DIR / f"test_{experiment_id}.py"
        assert bench.exists(), f"missing benchmark for {experiment_id}"
        assert f'run_quick("{experiment_id}")' in bench.read_text()


def test_ablation_benches_exist():
    text = (BENCH_DIR / "test_ablations.py").read_text()
    for knob in ("eit_entries_per_super", "sampling_probability",
                 "active_streams", "stream_end_detection", "prefetch_degree"):
        assert knob in text, f"missing ablation for {knob}"
