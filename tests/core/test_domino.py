"""Domino prefetcher behaviour on hand-crafted miss sequences.

Sampling is forced to 1.0 so every metadata update is applied and the
scenarios are deterministic.
"""

import pytest

from repro.config import small_test_config
from repro.core.domino import DominoPrefetcher


@pytest.fixture
def config():
    return small_test_config(sampling_probability=1.0, prefetch_degree=4)


def replay(prefetcher, blocks, pc=0):
    """Feed a miss sequence; returns the candidates of the last event."""
    out = []
    for block in blocks:
        out = prefetcher.on_miss(pc, block)
    return out


class TestSingleAddressLookup:
    def test_cold_miss_prefetches_nothing(self, config):
        domino = DominoPrefetcher(config)
        assert domino.on_miss(0, 100) == []

    def test_second_occurrence_prefetches_recorded_successor(self, config):
        domino = DominoPrefetcher(config)
        replay(domino, [1, 2, 3, 4, 5])
        candidates = domino.on_miss(0, 1)
        assert [block for block, _ in candidates] == [2]

    def test_speculative_prefetch_uses_most_recent_successor(self, config):
        domino = DominoPrefetcher(config)
        replay(domino, [1, 2, 9, 9, 1, 7, 9, 9])  # 1->2 then 1->7
        domino.on_miss(0, 777)  # cold miss: clears any pending stream
        candidates = domino.on_miss(0, 1)
        assert [block for block, _ in candidates] == [7]

    def test_index_reads_charged_for_lookup_and_sampled_update(self, config):
        domino = DominoPrefetcher(config)
        replay(domino, [1, 2, 3])
        reads_before = domino.metadata.index_reads
        writes_before = domino.metadata.index_writes
        domino.on_miss(0, 777)
        # One EIT row fetch for the lookup plus (sampling=1.0) one
        # read-modify-write for the update.
        assert domino.metadata.index_reads == reads_before + 2
        assert domino.metadata.index_writes == writes_before + 1


class TestTwoAddressConfirmation:
    def test_confirmation_replays_the_right_stream(self, config):
        domino = DominoPrefetcher(config)
        # Two streams share head 1: (1,2,3,4,5,6) and (1, 20, 30, 40, 50, 60).
        replay(domino, [1, 2, 3, 4, 5, 6])
        replay(domino, [1, 20, 30, 40, 50, 60])
        # New stream begins at 1; the speculative guess is the MRU
        # successor (20), but the miss on 2 selects the older entry.
        spec = domino.on_miss(0, 1)
        assert [b for b, _ in spec] == [20]
        confirmed = domino.on_miss(0, 2)
        assert [b for b, _ in confirmed][: 3] == [3, 4, 5]

    def test_prefetch_hit_confirms_mru_stream(self, config):
        domino = DominoPrefetcher(config)
        replay(domino, [1, 2, 3, 4, 5, 6])
        spec = domino.on_miss(0, 1)
        (block, sid), = spec
        assert block == 2
        confirmed = domino.on_prefetch_hit(0, 2, sid)
        assert [b for b, _ in confirmed][: 3] == [3, 4, 5]

    def test_failed_confirmation_discards_stream_quietly(self, config):
        domino = DominoPrefetcher(config)
        replay(domino, [1, 2, 3, 4, 5])
        spec = domino.on_miss(0, 1)
        assert spec  # pending stream with a speculative prefetch
        # An unrelated miss does not match any entry of the pending
        # super-entry; the stream is discarded without killing the
        # buffered speculative block.
        domino.on_miss(0, 999)
        assert domino.take_killed_streams() == []

    def test_confirmation_happens_only_once(self, config):
        domino = DominoPrefetcher(config)
        replay(domino, [1, 2, 3, 4, 5, 6, 7, 8])
        spec = domino.on_miss(0, 1)
        (block, sid), = spec
        first = domino.on_prefetch_hit(0, 2, sid)
        assert first
        # A second hit on the same stream advances by one, not a full
        # re-confirmation.
        second = domino.on_prefetch_hit(0, 3, sid)
        assert len(second) == 1


class TestStreamManagement:
    def test_lru_stream_replacement_reports_killed(self, config):
        config = config.scaled(active_streams=2)
        domino = DominoPrefetcher(config)
        # Train three streams with distinct heads and long bodies.
        replay(domino, [1, 101, 201, 301, 401,
                        2, 102, 202, 302, 402,
                        3, 103, 203, 303, 403, 999])
        # Confirm two streams so they stay active.
        (b1, s1), = domino.on_miss(0, 1)
        domino.on_prefetch_hit(0, b1, s1)
        cands2 = domino.on_miss(0, 2)
        s2 = cands2[-1][1]
        domino.on_prefetch_hit(0, 102, s2)
        domino.take_killed_streams()
        # A third stream allocation overflows the 2-entry table and must
        # replace the LRU confirmed stream (discarding its buffer blocks).
        domino.on_miss(0, 3)
        killed = domino.take_killed_streams()
        assert s1 in killed

    def test_history_records_misses_and_prefetch_hits(self, config):
        domino = DominoPrefetcher(config)
        domino.on_miss(0, 1)
        domino.on_prefetch_hit(0, 2, stream_id=12345)  # unknown stream ok
        assert domino.history.read_at(0) == 1
        assert domino.history.read_at(1) == 2

    def test_ht_write_traffic_per_row(self, config):
        domino = DominoPrefetcher(config)
        for i in range(config.ht_row_entries):
            domino.on_miss(0, 1000 + i)
        assert domino.metadata.history_writes == 1


class TestDegree:
    def test_confirmed_stream_issues_at_most_degree(self, config):
        domino = DominoPrefetcher(config.scaled(prefetch_degree=2))
        replay(domino, [1, 2, 3, 4, 5, 6, 7])
        (block, sid), = domino.on_miss(0, 1)
        confirmed = domino.on_prefetch_hit(0, 2, sid)
        assert len(confirmed) == 2

    def test_invalid_degree_rejected(self, config):
        with pytest.raises(ValueError):
            DominoPrefetcher(config, degree=0)
