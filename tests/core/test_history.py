"""History Table: circular residency, row-granular reads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import HistoryTable


class TestAppendAndResidency:
    def test_positions_are_monotonic(self):
        ht = HistoryTable(capacity=8, row_entries=4)
        assert [ht.append(i) for i in range(3)] == [0, 1, 2]

    def test_wraparound_drops_oldest(self):
        ht = HistoryTable(capacity=4, row_entries=2)
        for i in range(6):
            ht.append(i)
        assert ht.contains_position(0) is False
        assert ht.contains_position(2) is True
        assert ht.oldest_position == 2
        assert ht.read_at(2) == 2
        assert ht.read_at(1) is None

    def test_len_capped_at_capacity(self):
        ht = HistoryTable(capacity=4)
        for i in range(10):
            ht.append(i)
        assert len(ht) == 4


class TestReadForward:
    def test_reads_exact_range(self):
        ht = HistoryTable(capacity=64, row_entries=4)
        for i in range(10):
            ht.append(100 + i)
        addrs, rows = ht.read_forward(2, 5)
        assert addrs == [102, 103, 104, 105, 106]

    def test_row_fetch_counting(self):
        ht = HistoryTable(capacity=64, row_entries=4)
        for i in range(12):
            ht.append(i)
        # positions 2..6 span rows 0 and 1
        _, rows = ht.read_forward(2, 5)
        assert rows == 2
        # positions 4..7 lie in row 1 only
        _, rows = ht.read_forward(4, 4)
        assert rows == 1

    def test_clipped_to_written_region(self):
        ht = HistoryTable(capacity=64, row_entries=4)
        for i in range(5):
            ht.append(i)
        addrs, _ = ht.read_forward(3, 10)
        assert addrs == [3, 4]

    def test_clipped_to_oldest(self):
        ht = HistoryTable(capacity=4, row_entries=4)
        for i in range(8):
            ht.append(i)
        addrs, _ = ht.read_forward(0, 6)
        assert addrs == [4, 5]

    def test_empty_read(self):
        ht = HistoryTable(capacity=8)
        assert ht.read_forward(0, 0) == ([], 0)
        assert ht.read_forward(5, 3) == ([], 0)

    def test_successors_skips_anchor(self):
        ht = HistoryTable(capacity=64, row_entries=4)
        for i in range(5):
            ht.append(i * 10)
        addrs, _ = ht.successors(1, 2)
        assert addrs == [20, 30]

    def test_row_of(self):
        ht = HistoryTable(capacity=64, row_entries=12)
        assert ht.row_of(0) == 0
        assert ht.row_of(11) == 0
        assert ht.row_of(12) == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            HistoryTable(0)
        with pytest.raises(ValueError):
            HistoryTable(4, row_entries=0)


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.integers(0, 1000), min_size=1, max_size=100),
       pos=st.integers(0, 120), count=st.integers(0, 20))
def test_read_forward_matches_slice_of_full_log(values, pos, count):
    """Whatever is resident must equal the corresponding suffix slice."""
    ht = HistoryTable(capacity=16, row_entries=4)
    for v in values:
        ht.append(v)
    addrs, _ = ht.read_forward(pos, count)
    start = max(pos, max(len(values) - 16, 0))
    stop = min(pos + count, len(values))
    expected = values[start:stop] if stop > start else []
    assert addrs == expected
