"""Active-stream table: LRU replacement, promotion, lifecycle."""

from collections import deque

import pytest

from repro.core.stream import ActiveStream, StreamTable


class TestActiveStream:
    def test_next_address_pops_in_order(self):
        stream = ActiveStream(stream_id=0, queue=deque([1, 2, 3]))
        assert stream.next_address() == 1
        assert stream.next_address() == 2

    def test_next_address_empty(self):
        stream = ActiveStream(stream_id=0)
        assert stream.next_address() is None

    def test_pending_flag(self):
        stream = ActiveStream(stream_id=0)
        assert stream.pending is False
        stream.pending_entries = [(1, 2)]
        assert stream.pending is True

    def test_extendable(self):
        stream = ActiveStream(stream_id=0)
        assert stream.extendable() is False
        stream.ht_cursor = 5
        assert stream.extendable() is True


class TestStreamTable:
    def test_allocate_assigns_unique_ids(self):
        table = StreamTable(4)
        ids = {table.allocate()[0].stream_id for _ in range(4)}
        assert len(ids) == 4

    def test_lru_victim_on_overflow(self):
        table = StreamTable(2)
        first, _ = table.allocate()
        second, _ = table.allocate()
        third, victim = table.allocate()
        assert victim is first
        assert victim.dead is True
        assert table.get(first.stream_id) is None

    def test_promotion_protects_stream(self):
        table = StreamTable(2)
        first, _ = table.allocate()
        second, _ = table.allocate()
        table.promote(first.stream_id)
        _, victim = table.allocate()
        assert victim is second

    def test_remove_marks_dead(self):
        table = StreamTable(2)
        stream, _ = table.allocate()
        removed = table.remove(stream.stream_id)
        assert removed is stream
        assert stream.dead is True
        assert table.remove(stream.stream_id) is None

    def test_clear(self):
        table = StreamTable(3)
        streams = [table.allocate()[0] for _ in range(3)]
        table.clear()
        assert len(table) == 0
        assert all(s.dead for s in streams)

    def test_iteration_yields_streams(self):
        table = StreamTable(3)
        created = [table.allocate()[0] for _ in range(2)]
        assert list(table) == created

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            StreamTable(0)
