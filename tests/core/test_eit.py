"""Enhanced Index Table: super-entries, double LRU, bounded rows."""

import pytest

from repro.core.eit import EnhancedIndexTable, SuperEntry


class TestSuperEntry:
    def test_update_and_most_recent(self):
        entry = SuperEntry(tag=10, max_entries=3)
        entry.update(20, 100)
        entry.update(30, 200)
        assert entry.most_recent() == (30, 200)

    def test_update_existing_promotes_and_repoints(self):
        entry = SuperEntry(tag=10, max_entries=3)
        entry.update(20, 100)
        entry.update(30, 200)
        entry.update(20, 300)
        assert entry.most_recent() == (20, 300)

    def test_lru_eviction_at_capacity(self):
        entry = SuperEntry(tag=10, max_entries=2)
        entry.update(1, 10)
        entry.update(2, 20)
        victim = entry.update(3, 30)
        assert victim == 1
        assert entry.match(1) is None

    def test_match_returns_pointer_and_promotes(self):
        entry = SuperEntry(tag=10, max_entries=3)
        entry.update(1, 10)
        entry.update(2, 20)
        assert entry.match(1) == 10
        # 1 was promoted: inserting a third then fourth evicts 2 first.
        entry.update(3, 30)
        assert entry.update(4, 40) == 2

    def test_snapshot_order_lru_to_mru(self):
        entry = SuperEntry(tag=10, max_entries=3)
        entry.update(1, 10)
        entry.update(2, 20)
        entry.match(1)
        assert entry.snapshot() == [(2, 20), (1, 10)]

    def test_empty_most_recent(self):
        assert SuperEntry(tag=1, max_entries=3).most_recent() is None


class TestEnhancedIndexTable:
    def test_lookup_miss_returns_none(self):
        eit = EnhancedIndexTable(rows=16)
        assert eit.lookup(42) is None

    def test_update_then_lookup(self):
        eit = EnhancedIndexTable(rows=16)
        eit.update(42, 43, 7)
        found = eit.lookup(42)
        assert found is not None
        assert found.most_recent() == (43, 7)

    def test_row_associativity_evicts_lru_super_entry(self):
        eit = EnhancedIndexTable(rows=1, assoc=2)
        eit.update(1, 10, 0)
        eit.update(2, 20, 1)
        eit.update(3, 30, 2)  # row full: evicts super-entry for tag 1
        assert eit.lookup(1) is None
        assert eit.lookup(2) is not None
        assert eit.stats.super_entry_evictions == 1

    def test_lookup_promotes_super_entry(self):
        eit = EnhancedIndexTable(rows=1, assoc=2)
        eit.update(1, 10, 0)
        eit.update(2, 20, 1)
        eit.lookup(1)
        eit.update(3, 30, 2)  # should evict tag 2 (LRU after promotion)
        assert eit.lookup(1) is not None
        assert eit.lookup(2) is None

    def test_entry_eviction_counted(self):
        eit = EnhancedIndexTable(rows=4, entries_per_super=2)
        eit.update(1, 10, 0)
        eit.update(1, 20, 1)
        eit.update(1, 30, 2)
        assert eit.stats.entry_evictions == 1

    def test_unbounded_mode_never_evicts(self):
        eit = EnhancedIndexTable(rows=1, assoc=1, unbounded=True)
        for tag in range(100):
            eit.update(tag, tag + 1, tag)
        assert eit.resident_tags() == 100
        assert eit.stats.super_entry_evictions == 0

    def test_distinct_tags_in_same_row_coexist_up_to_assoc(self):
        eit = EnhancedIndexTable(rows=1, assoc=4)
        for tag in range(4):
            eit.update(tag, tag + 10, tag)
        assert all(eit.lookup(tag) is not None for tag in range(4))

    def test_stats_lookups_and_hits(self):
        eit = EnhancedIndexTable(rows=8)
        eit.update(5, 6, 0)
        eit.lookup(5)
        eit.lookup(6)
        assert eit.stats.lookups == 2
        assert eit.stats.super_entry_hits == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            EnhancedIndexTable(rows=0)
        with pytest.raises(ValueError):
            EnhancedIndexTable(rows=4, assoc=0)
