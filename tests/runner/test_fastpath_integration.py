"""Fastpath ↔ runner integration: shared filter artifacts and the
on/off payload-equality guarantee at the scheduler level."""

import json

import numpy as np
import pytest

from repro import obs
from repro.obs import names as obs_names
from repro.runner import Cell, ExecutionPolicy, ResultStore, run_cells
from repro.runner import execute as execute_mod
from repro.sim import fastpath


@pytest.fixture(autouse=True)
def _fresh_fastpath_state():
    """Make per-process fastpath caches test-local and deterministic."""
    execute_mod._FILTERS.clear()
    execute_mod.set_fastpath_root(None)
    yield
    execute_mod._FILTERS.clear()
    execute_mod.set_fastpath_root(None)


def _grid():
    cells = [Cell(kind="trace", workload="oltp", prefetcher=name, degree=1)
             for name in ("baseline", "stms", "domino")]
    cells.append(Cell(kind="opportunity", workload="oltp"))
    return cells


class TestFastpathToggleEquivalence:
    def test_payloads_identical_on_and_off(self, tiny_options, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "0")
        off, _ = run_cells(_grid(), tiny_options,
                           ExecutionPolicy(use_cache=False))
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        on, _ = run_cells(_grid(), tiny_options,
                          ExecutionPolicy(use_cache=False))
        assert on == off

    def test_store_served_filter_equivalent(self, tiny_options, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "warm-store"
        first, _ = run_cells(_grid(), tiny_options,
                             ExecutionPolicy(use_cache=True, cache_dir=cache))
        # Same grid, cold memo, warm store: the filters (and the cell
        # artifacts) come back from disk bit-identical.
        execute_mod._FILTERS.clear()
        again, _ = run_cells(_grid(), tiny_options,
                             ExecutionPolicy(use_cache=True, cache_dir=cache))
        assert again == first


class TestFilterArtifacts:
    def test_filters_persisted_with_their_own_kind(self, tiny_options,
                                                   tmp_path, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "store"
        run_cells(_grid(), tiny_options,
                  ExecutionPolicy(use_cache=True, cache_dir=cache))
        kinds = [json.loads(p.read_text()).get("kind", "cell")
                 for p in cache.glob("v*/*/*.json")]
        # Full-trace filter + opportunity-window filter + 4 cell results.
        assert kinds.count("l1_filter") == 2
        assert kinds.count("cell") == 4

    def test_one_filter_shared_across_prefetcher_cells(self, tiny_options,
                                                       tmp_path, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "store"
        cells = [Cell(kind="trace", workload="oltp", prefetcher=name,
                      degree=degree)
                 for name in ("baseline", "nextline", "stms", "domino")
                 for degree in (1, 4)]
        run_cells(cells, tiny_options,
                  ExecutionPolicy(use_cache=True, cache_dir=cache))
        kinds = [json.loads(p.read_text()).get("kind", "cell")
                 for p in cache.glob("v*/*/*.json")]
        assert kinds.count("l1_filter") == 1  # 8 cells, one filter

    def test_no_cache_means_no_filter_writes(self, tiny_options, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        monkeypatch.setenv("DOMINO_CACHE_DIR", str(tmp_path / "unused"))
        run_cells(_grid(), tiny_options, ExecutionPolicy(use_cache=False))
        assert not (tmp_path / "unused").exists()

    def test_filters_persist_binary_sidecars(self, tiny_options, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "store"
        run_cells(_grid(), tiny_options,
                  ExecutionPolicy(use_cache=True, cache_dir=cache))
        sidecars = list(cache.glob("v*/*/*.bin"))
        assert len(sidecars) == 2  # full-trace + opportunity-window filter
        for sidecar in sidecars:
            assert sidecar.read_bytes()[:6] == b"\x93NUMPY"


class TestCorruptFilterRecovery:
    """A filter the codec rejects is quarantined, reported, rebuilt."""

    def test_truncated_sidecar_quarantined_and_rebuilt(self, tiny_options,
                                                       tmp_path, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "store"
        first, _ = run_cells(_grid(), tiny_options,
                             ExecutionPolicy(use_cache=True, cache_dir=cache))
        sidecars = list(cache.glob("v*/*/*.bin"))
        assert sidecars
        for sidecar in sidecars:
            sidecar.write_bytes(sidecar.read_bytes()[:-16])
        # Drop the cached cell results so the cells really re-execute
        # and have to load (then reject) the corrupt filters.
        for envelope in cache.glob("v*/*/*.json"):
            if json.loads(envelope.read_text()).get("kind") != "l1_filter":
                envelope.unlink()
        execute_mod._FILTERS.clear()
        obs.configure(level=obs.DEBUG)
        try:
            again, _ = run_cells(_grid(), tiny_options,
                                 ExecutionPolicy(use_cache=True,
                                                 cache_dir=cache))
            rejected = [e for e in obs.state().trace.events()
                        if e["event"] == obs_names.EVT_FASTPATH_FILTER_REJECTED]
        finally:
            obs.disable()
        assert again == first                 # rebuilt bit-identical
        assert rejected                       # the rejection was reported
        store = ResultStore(cache)
        assert store.stats().n_quarantined >= 2  # envelope + sidecar pairs
        assert list(cache.glob("v*/*/*.bin"))    # fresh sidecars re-persisted


class TestWindowedFilters:
    """Opportunity-style sliced-trace filters stay consistent across
    codecs and agree with the full-trace filter on prefix windows."""

    def test_prefix_window_matches_full_filter_restriction(self, config,
                                                           tiny_trace):
        # Cache state at access i depends only on accesses < i, so the
        # filter of the (0, k) prefix must equal the full filter
        # restricted to indices < k — including the evicted blocks.
        full = fastpath.build_l1_filter(tiny_trace, config)
        k = len(tiny_trace) // 2
        prefix = fastpath.build_l1_filter(tiny_trace.slice(0, k), config)
        mask = full.indices < k
        for fname in ("indices", "pcs", "blocks", "evicted"):
            assert np.array_equal(getattr(prefix, fname),
                                  getattr(full, fname)[mask]), fname

    def test_windowed_filter_roundtrips_both_codecs(self, config, tiny_trace,
                                                    tmp_path):
        window = tiny_trace.slice(1500, len(tiny_trace))
        filt = fastpath.build_l1_filter(window, config)
        store = ResultStore(tmp_path / "cache")
        key_bin, key_json = "aa" + "0" * 62, "bb" + "1" * 62
        payload, sidecar = fastpath.filter_to_binary(filt)
        store.put(key_bin, payload, kind="l1_filter", sidecar=sidecar)
        store.put(key_json, fastpath.filter_to_payload(filt),
                  kind="l1_filter")  # JSON-era inline artifact
        for key in (key_bin, key_json):
            served = store.get(key, kind="l1_filter")
            assert served is not None
            back = fastpath.filter_from_payload(served)
            assert back.n_accesses == filt.n_accesses
            for fname in ("indices", "pcs", "blocks", "evicted"):
                assert np.array_equal(getattr(back, fname),
                                      getattr(filt, fname)), (key, fname)
