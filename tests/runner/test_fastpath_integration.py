"""Fastpath ↔ runner integration: shared filter artifacts and the
on/off payload-equality guarantee at the scheduler level."""

import json

import pytest

from repro.runner import Cell, ExecutionPolicy, run_cells
from repro.runner import execute as execute_mod


@pytest.fixture(autouse=True)
def _fresh_fastpath_state():
    """Make per-process fastpath caches test-local and deterministic."""
    execute_mod._FILTERS.clear()
    execute_mod.set_fastpath_root(None)
    yield
    execute_mod._FILTERS.clear()
    execute_mod.set_fastpath_root(None)


def _grid():
    cells = [Cell(kind="trace", workload="oltp", prefetcher=name, degree=1)
             for name in ("baseline", "stms", "domino")]
    cells.append(Cell(kind="opportunity", workload="oltp"))
    return cells


class TestFastpathToggleEquivalence:
    def test_payloads_identical_on_and_off(self, tiny_options, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "0")
        off, _ = run_cells(_grid(), tiny_options,
                           ExecutionPolicy(use_cache=False))
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        on, _ = run_cells(_grid(), tiny_options,
                          ExecutionPolicy(use_cache=False))
        assert on == off

    def test_store_served_filter_equivalent(self, tiny_options, tmp_path,
                                            monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "warm-store"
        first, _ = run_cells(_grid(), tiny_options,
                             ExecutionPolicy(use_cache=True, cache_dir=cache))
        # Same grid, cold memo, warm store: the filters (and the cell
        # artifacts) come back from disk bit-identical.
        execute_mod._FILTERS.clear()
        again, _ = run_cells(_grid(), tiny_options,
                             ExecutionPolicy(use_cache=True, cache_dir=cache))
        assert again == first


class TestFilterArtifacts:
    def test_filters_persisted_with_their_own_kind(self, tiny_options,
                                                   tmp_path, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "store"
        run_cells(_grid(), tiny_options,
                  ExecutionPolicy(use_cache=True, cache_dir=cache))
        kinds = [json.loads(p.read_text()).get("kind", "cell")
                 for p in cache.glob("v*/*/*.json")]
        # Full-trace filter + opportunity-window filter + 4 cell results.
        assert kinds.count("l1_filter") == 2
        assert kinds.count("cell") == 4

    def test_one_filter_shared_across_prefetcher_cells(self, tiny_options,
                                                       tmp_path, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        cache = tmp_path / "store"
        cells = [Cell(kind="trace", workload="oltp", prefetcher=name,
                      degree=degree)
                 for name in ("baseline", "nextline", "stms", "domino")
                 for degree in (1, 4)]
        run_cells(cells, tiny_options,
                  ExecutionPolicy(use_cache=True, cache_dir=cache))
        kinds = [json.loads(p.read_text()).get("kind", "cell")
                 for p in cache.glob("v*/*/*.json")]
        assert kinds.count("l1_filter") == 1  # 8 cells, one filter

    def test_no_cache_means_no_filter_writes(self, tiny_options, tmp_path,
                                             monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        monkeypatch.setenv("DOMINO_CACHE_DIR", str(tmp_path / "unused"))
        run_cells(_grid(), tiny_options, ExecutionPolicy(use_cache=False))
        assert not (tmp_path / "unused").exists()
