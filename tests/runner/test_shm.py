"""Shared-memory trace handoff: publish/attach roundtrip, lifetime,
stale-segment reaping, and pool-level bit-identity with and without it."""

import os

import numpy as np
import pytest

from repro.runner import Cell, ExecutionPolicy, run_cells, shm


@pytest.fixture(autouse=True)
def _fresh_attach_caches():
    """Worker-side attach caches are per-process; keep tests hermetic."""
    shm._release_attachments()
    yield
    shm._release_attachments()


def _cells():
    return [Cell(kind="trace", workload="oltp", prefetcher=name, degree=1)
            for name in ("stms", "domino")]


class TestToggle:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("DOMINO_TRACE_SHM", raising=False)
        assert shm.share_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", " no "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("DOMINO_TRACE_SHM", value)
        assert not shm.share_enabled()

    def test_spec_key_format(self):
        assert shm.trace_share_key("oltp", 6000, 7) == "oltp|6000|7"


class TestPublishAttach:
    def test_roundtrip_preserves_every_column(self, tiny_trace):
        key = shm.trace_share_key("tiny", len(tiny_trace), 42)
        share = shm.publish_traces({key: tiny_trace})
        assert share is not None
        try:
            attached = shm.attach_trace(share.spec[key])
            assert attached is not None
            assert attached.name == tiny_trace.name
            assert np.array_equal(attached.pcs, tiny_trace.pcs)
            assert np.array_equal(attached.blocks, tiny_trace.blocks)
            assert np.array_equal(attached.deps, tiny_trace.deps)
            assert np.array_equal(attached.works, tiny_trace.works)
        finally:
            share.close()  # attach views die with the fixture teardown

    def test_attached_arrays_are_read_only(self, tiny_trace):
        share = shm.publish_traces({"k": tiny_trace})
        try:
            attached = shm.attach_trace(share.spec["k"])
            for col in (attached.pcs, attached.blocks,
                        attached.deps, attached.works):
                assert not col.flags.writeable
                with pytest.raises(ValueError):
                    col[0] = 1
        finally:
            share.close()

    def test_repeat_attach_reuses_cached_mapping(self, tiny_trace):
        share = shm.publish_traces({"k": tiny_trace})
        try:
            first = shm.attach_trace(share.spec["k"])
            second = shm.attach_trace(share.spec["k"])
            assert first is second
        finally:
            share.close()

    def test_publish_nothing_returns_none(self):
        assert shm.publish_traces({}) is None

    def test_malformed_entries_return_none(self):
        assert shm.attach_trace({}) is None
        assert shm.attach_trace({"segment": "nope", "n": "x",
                                 "trace_name": "t"}) is None
        assert shm.attach_trace({"segment": "dmtr0x999999",
                                 "n": 5, "trace_name": "t"}) is None

    def test_oversized_spec_length_rejected(self, tiny_trace):
        # A spec claiming more elements than the segment holds must not
        # produce out-of-bounds views.
        share = shm.publish_traces({"k": tiny_trace})
        try:
            entry = dict(share.spec["k"])
            entry["n"] = entry["n"] * 10
            assert shm.attach_trace(entry) is None
        finally:
            share.close()


class TestLifetime:
    def test_close_unlinks_everything(self, tiny_trace):
        share = shm.publish_traces({"a": tiny_trace, "b": tiny_trace})
        assert len(share) == 2
        published = set(e["segment"] for e in share.spec.values())
        assert published <= set(shm.active_segments())
        share.close()
        assert not (published & set(shm.active_segments()))
        share.close()  # idempotent

    def test_reap_unlinks_dead_creator_segments(self):
        from multiprocessing import shared_memory

        # Fabricate a segment whose embedded creator pid cannot exist.
        name = f"{shm.SEGMENT_PREFIX}999999999x0"
        seg = shared_memory.SharedMemory(name=name, create=True, size=64)
        seg.close()
        try:
            assert name in shm.active_segments()
            assert shm.reap_stale_segments() >= 1
            assert name not in shm.active_segments()
        finally:
            if name in shm.active_segments():  # reap failed: clean up
                seg.unlink()

    def test_reap_spares_live_creators(self, tiny_trace):
        share = shm.publish_traces({"k": tiny_trace})  # our pid: alive
        try:
            shm.reap_stale_segments()
            assert set(e["segment"] for e in share.spec.values()) \
                <= set(shm.active_segments())
        finally:
            share.close()


class TestPoolHandoff:
    def test_pool_with_share_matches_serial(self, tiny_options, monkeypatch):
        serial, _ = run_cells(_cells(), tiny_options,
                              ExecutionPolicy(use_cache=False))
        monkeypatch.setenv("DOMINO_TRACE_SHM", "1")
        pooled, _ = run_cells(_cells(), tiny_options,
                              ExecutionPolicy(jobs=2, use_cache=False))
        assert pooled == serial
        mine = [n for n in shm.active_segments()
                if n.startswith(f"{shm.SEGMENT_PREFIX}{os.getpid()}x")]
        assert mine == []  # the run's finally reclaimed every segment

    def test_pool_without_share_identical(self, tiny_options, monkeypatch):
        serial, _ = run_cells(_cells(), tiny_options,
                              ExecutionPolicy(use_cache=False))
        monkeypatch.setenv("DOMINO_TRACE_SHM", "0")
        pooled, _ = run_cells(_cells(), tiny_options,
                              ExecutionPolicy(jobs=2, use_cache=False))
        assert pooled == serial
        assert not [n for n in shm.active_segments()
                    if n.startswith(f"{shm.SEGMENT_PREFIX}{os.getpid()}x")]
