"""Artifact store: round-trips, corruption recovery, quarantine, locking."""

import json
import os

import pytest

from repro.errors import RunnerError
from repro.runner import ResultStore
from repro.runner.store import SCHEMA_VERSION, StoreLock

KEY = "ab" + "0" * 62
OTHER = "cd" + "1" * 62


def make_store(tmp_path) -> ResultStore:
    return ResultStore(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_on_empty_store(self, tmp_path):
        assert make_store(tmp_path).get(KEY) is None

    def test_put_then_get(self, tmp_path):
        store = make_store(tmp_path)
        payload = {"coverage": 0.5, "misses": 123, "rows": [["a", "b"]]}
        store.put(KEY, payload)
        assert store.get(KEY) == payload

    def test_float_payloads_roundtrip_exactly(self, tmp_path):
        store = make_store(tmp_path)
        value = 0.1 + 0.2  # not representable; repr round-trips exactly
        store.put(KEY, {"v": value})
        assert store.get(KEY)["v"] == value

    def test_overwrite_is_atomic_replace(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.put(KEY, {"v": 2})
        assert store.get(KEY) == {"v": 2}
        assert store.stats().n_entries == 1


class TestArtifactKinds:
    def test_kind_roundtrip(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"misses": [1, 2]}, kind="l1_filter")
        assert store.get(KEY, kind="l1_filter") == {"misses": [1, 2]}

    def test_kind_mismatch_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1}, kind="l1_filter")
        assert store.get(KEY) is None  # asked for a "cell", got a filter

    def test_default_kind_is_cell(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        assert store.get(KEY, kind="cell") == {"v": 1}

    def test_pre_kind_artifact_reads_as_cell(self, tmp_path):
        # Artifacts written before kinds existed have no "kind" field.
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        document = json.loads(store.path_for(KEY).read_text())
        del document["kind"]
        store.path_for(KEY).write_text(json.dumps(document))
        assert store.get(KEY) == {"v": 1}
        assert store.get(KEY, kind="l1_filter") is None


class TestCorruptionRecovery:
    def test_truncated_artifact_is_a_miss_and_removed(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        path = store.path_for(KEY)
        path.write_text('{"schema": 1, "code_ver')
        assert store.get(KEY) is None
        assert not path.exists()

    def test_binary_garbage_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.path_for(KEY).write_bytes(b"\x00\xff\xfe garbage")
        assert store.get(KEY) is None

    def test_key_mismatch_is_a_miss(self, tmp_path):
        """A renamed/copied artifact must not serve the wrong payload."""
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        document = json.loads(store.path_for(KEY).read_text())
        other_path = store.path_for(OTHER)
        other_path.parent.mkdir(parents=True, exist_ok=True)
        other_path.write_text(json.dumps(document))
        assert store.get(OTHER) is None

    def test_stale_schema_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        document = json.loads(store.path_for(KEY).read_text())
        document["schema"] = SCHEMA_VERSION + 1
        store.path_for(KEY).write_text(json.dumps(document))
        assert store.get(KEY) is None

    def test_wrong_payload_type_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        document = json.loads(store.path_for(KEY).read_text())
        document["payload"] = [1, 2, 3]
        store.path_for(KEY).write_text(json.dumps(document))
        assert store.get(KEY) is None


class TestQuarantine:
    def test_corrupt_artifact_moved_not_deleted(self, tmp_path):
        """The corrupt bytes are evidence; keep them for autopsy."""
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.path_for(KEY).write_text('{"schema": 1, "code_')
        assert store.get(KEY) is None
        quarantined = list(store.quarantine_dir.iterdir())
        assert [p.name for p in quarantined] == [f"{KEY}.json"]
        assert quarantined[0].read_text() == '{"schema": 1, "code_'

    def test_quarantine_counted_in_stats(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.path_for(KEY).write_bytes(b"\x00garbage")
        store.get(KEY)
        stats = store.stats()
        assert stats.n_quarantined == 1 and stats.n_entries == 0
        assert "1 quarantined" in stats.render()

    def test_repeated_corruption_does_not_collide(self, tmp_path):
        store = make_store(tmp_path)
        for _ in range(2):
            store.put(KEY, {"v": 1})
            store.path_for(KEY).write_text("junk")
            assert store.get(KEY) is None
        assert store.stats().n_quarantined == 2

    def test_clear_sweeps_quarantine(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.path_for(KEY).write_text("junk")
        store.get(KEY)
        store.clear()
        assert store.stats().n_quarantined == 0


class TestSidecars:
    """Binary payload sidecars: atomic pairing with their envelopes."""

    PAYLOAD = {"codec": "npy:<i8", "n_misses": 3, "sidecar_bytes": 7}

    def test_put_get_attaches_sidecar_path(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter",
                  sidecar=b"\x93NUMPY!")
        got = store.get(KEY, kind="l1_filter")
        assert got is not None
        side = got["sidecar_path"]
        assert os.path.isabs(side)
        assert open(side, "rb").read() == b"\x93NUMPY!"
        assert store.sidecar_path_for(KEY).read_bytes() == b"\x93NUMPY!"

    def test_plain_payloads_have_no_sidecar(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        got = store.get(KEY)
        assert got == {"v": 1}
        assert "sidecar_path" not in got
        assert not store.sidecar_path_for(KEY).exists()

    def test_overwrite_replaces_sidecar(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"old old")
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"new new")
        assert store.sidecar_path_for(KEY).read_bytes() == b"new new"
        assert store.stats().n_entries == 1

    def test_missing_sidecar_is_a_miss_and_quarantined(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"1234567")
        store.sidecar_path_for(KEY).unlink()
        assert store.get(KEY, kind="l1_filter") is None
        assert not store.path_for(KEY).exists()
        assert store.stats().n_quarantined == 1

    def test_malformed_payload_path_is_a_miss(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"1234567")
        document = json.loads(store.path_for(KEY).read_text())
        document["payload_path"] = "../../etc/passwd"
        store.path_for(KEY).write_text(json.dumps(document))
        assert store.get(KEY, kind="l1_filter") is None
        assert store.stats().n_quarantined == 2  # envelope + sidecar

    def test_quarantine_moves_both_halves(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"1234567")
        store.path_for(KEY).write_text("corrupt json")
        assert store.get(KEY, kind="l1_filter") is None
        names = sorted(p.name for p in store.quarantine_dir.iterdir())
        assert names == [f"{KEY}.bin", f"{KEY}.json"]
        assert not store.sidecar_path_for(KEY).exists()

    def test_quarantine_key_api(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"1234567")
        assert store.quarantine_key(KEY, reason="codec rejected it")
        assert store.get(KEY, kind="l1_filter") is None
        assert store.stats().n_quarantined == 2  # envelope + sidecar
        assert not store.quarantine_key(OTHER)  # nothing there: no-op

    def test_gc_prunes_sidecar_with_envelope(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"1234567")
        store.put(OTHER, {"v": 2})
        os.utime(store.path_for(KEY), (1, 1))
        assert store.gc(keep=1) == 1
        assert not store.sidecar_path_for(KEY).exists()
        assert store.get(OTHER) == {"v": 2}

    def test_gc_sweeps_old_orphan_sidecars_only(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        old = store.sidecar_path_for(OTHER)
        old.parent.mkdir(parents=True, exist_ok=True)
        old.write_bytes(b"crash debris")
        os.utime(old, (1, 1))
        fresh = store.sidecar_path_for("ef" + "2" * 62)
        fresh.parent.mkdir(parents=True, exist_ok=True)
        fresh.write_bytes(b"mid-put")  # may belong to an in-flight put
        store.gc(keep=10)
        assert not old.exists()
        assert fresh.exists()

    def test_stats_count_sidecar_bytes(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        lean = store.stats().total_bytes
        store.put(OTHER, dict(self.PAYLOAD), kind="l1_filter",
                  sidecar=b"x" * 4096)
        assert store.stats().total_bytes >= lean + 4096

    def test_clear_removes_sidecars(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, dict(self.PAYLOAD), kind="l1_filter", sidecar=b"1234567")
        store.clear()
        assert not store.sidecar_path_for(KEY).exists()


class TestStoreLock:
    def test_exclusive_between_instances(self, tmp_path):
        store = make_store(tmp_path)
        with store.lock():
            contender = store.lock(timeout_s=0.2)
            with pytest.raises(RunnerError, match="held by another"):
                contender.acquire()
        with store.lock():  # released cleanly, so reacquire works
            pass

    def test_dead_holder_lock_broken(self, tmp_path):
        """A lock left by a crashed process must not wedge the cache."""
        store = make_store(tmp_path)
        lock = StoreLock(store.base, timeout_s=1.0)
        lock.path.parent.mkdir(parents=True, exist_ok=True)
        lock.path.write_text("999999999")  # no such pid
        with lock:
            assert lock._held
        assert not lock.path.exists()

    def test_stale_lock_broken_by_age(self, tmp_path):
        store = make_store(tmp_path)
        lock = StoreLock(store.base, timeout_s=1.0, stale_s=10.0)
        lock.path.parent.mkdir(parents=True, exist_ok=True)
        lock.path.write_text(str(os.getpid()))  # alive, but ancient:
        os.utime(lock.path, (1, 1))
        with lock:
            assert lock._held

    def test_live_holder_not_broken(self, tmp_path):
        store = make_store(tmp_path)
        lock = StoreLock(store.base, timeout_s=0.2, stale_s=600.0)
        lock.path.parent.mkdir(parents=True, exist_ok=True)
        lock.path.write_text(str(os.getpid()))  # us: provably alive
        with pytest.raises(RunnerError):
            lock.acquire()

    def test_clear_blocks_on_held_lock(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        with store.lock():
            with pytest.raises(RunnerError):
                store.clear(lock_timeout_s=0.2)
        assert store.clear() == 1


class TestMaintenance:
    def test_stats(self, tmp_path):
        store = make_store(tmp_path)
        assert store.stats().n_entries == 0
        store.put(KEY, {"v": 1})
        store.put(OTHER, {"v": 2})
        stats = store.stats()
        assert stats.n_entries == 2
        assert stats.total_bytes > 0
        assert "2 artifacts" in stats.render()

    def test_clear(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.put(OTHER, {"v": 2})
        assert store.clear() == 2
        assert store.get(KEY) is None
        assert store.stats().n_entries == 0

    def test_gc_keeps_newest(self, tmp_path):
        import os
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        store.put(OTHER, {"v": 2})
        os.utime(store.path_for(KEY), (1, 1))  # make KEY the oldest
        assert store.gc(keep=1) == 1
        assert store.get(KEY) is None
        assert store.get(OTHER) == {"v": 2}

    def test_gc_drops_stale_schema_dirs(self, tmp_path):
        store = make_store(tmp_path)
        store.put(KEY, {"v": 1})
        old = store.base / "v0" / KEY[:2]
        old.mkdir(parents=True)
        (old / f"{KEY}.json").write_text("{}")
        assert store.gc(keep=10) == 1
        assert not (store.base / "v0").exists()
        assert store.get(KEY) == {"v": 1}

    def test_env_var_roots_the_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("DOMINO_CACHE_DIR", str(tmp_path / "env-cache"))
        store = ResultStore()
        store.put(KEY, {"v": 1})
        assert (tmp_path / "env-cache").is_dir()
