"""Cross-process ResultStore contention: put/get/gc racing for real.

The store's only promises under concurrency are (a) readers never see
a torn artifact — a ``get`` returns a complete payload or a miss, and
(b) nothing healthy lands in quarantine.  These tests hammer one store
root from several OS processes (the same isolation level the runner's
pool uses) and check exactly those promises, plus the StoreLock's
timeout/stale-break behaviour and its obs counters.
"""

import multiprocessing
import os
import time

import pytest

from repro import obs
from repro.errors import RunnerError
from repro.obs import names as obs_names
from repro.runner.store import (DEFAULT_LOCK_TIMEOUT_S, ResultStore,
                                StoreLock, default_lock_timeout_s)

N_WORKERS = 4
N_KEYS = 25


def _keys():
    return [f"{i:02d}contended{i:03d}" for i in range(N_KEYS)]


def _payload(key: str) -> dict:
    return {"key": key, "value": sum(map(ord, key))}


def _hammer_put_get(root: str, rounds: int) -> None:
    """Worker body: write and read back every shared key, repeatedly."""
    store = ResultStore(root)
    for _ in range(rounds):
        for key in _keys():
            store.put(key, _payload(key))
            got = store.get(key)
            # Atomic replace means a racing reader sees a complete old
            # or complete new artifact — and here they are identical.
            assert got == _payload(key), (key, got)


def _hammer_gc(root: str, rounds: int) -> None:
    """Worker body: run gc/stats loops against the writers."""
    store = ResultStore(root)
    for _ in range(rounds):
        store.gc(keep=N_KEYS // 2)
        store.stats()


def _run_all(targets) -> None:
    procs = [multiprocessing.Process(target=fn, args=args)
             for fn, args in targets]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=120)
    alive = [p for p in procs if p.is_alive()]
    for p in alive:
        p.kill()
    assert not alive, "contention worker wedged"
    assert all(p.exitcode == 0 for p in procs), \
        [p.exitcode for p in procs]


class TestConcurrentPutGet:
    def test_parallel_writers_never_tear_or_quarantine(self, tmp_path):
        root = str(tmp_path / "store")
        _run_all([(_hammer_put_get, (root, 10))] * N_WORKERS)
        store = ResultStore(root)
        for key in _keys():
            assert store.get(key) == _payload(key)
        stats = store.stats()
        assert stats.n_entries == N_KEYS
        assert stats.n_quarantined == 0

    def test_writers_racing_gc(self, tmp_path):
        """gc may delete artifacts mid-race, but every survivor must
        read back whole and nothing may be quarantined."""
        root = str(tmp_path / "store")
        targets = [(_hammer_put_get, (root, 6))] * (N_WORKERS - 1)
        targets.append((_hammer_gc, (root, 20)))
        _run_all(targets)
        store = ResultStore(root)
        seen = sum(1 for key in _keys()
                   if store.get(key) == _payload(key))
        # Misses are fine (gc took them); corruption is not.
        assert seen == store.stats().n_entries
        assert store.stats().n_quarantined == 0


class TestLockTimeout:
    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("DOMINO_STORE_LOCK_TIMEOUT", raising=False)
        assert default_lock_timeout_s() == DEFAULT_LOCK_TIMEOUT_S
        monkeypatch.setenv("DOMINO_STORE_LOCK_TIMEOUT", "2.5")
        assert default_lock_timeout_s() == 2.5
        assert StoreLock(os.devnull + "-unused").timeout_s == 2.5

    @pytest.mark.parametrize("raw", ["nope", "-1"])
    def test_env_rejects_garbage(self, monkeypatch, raw):
        monkeypatch.setenv("DOMINO_STORE_LOCK_TIMEOUT", raw)
        with pytest.raises(RunnerError):
            default_lock_timeout_s()

    def test_contended_lock_times_out_and_counts_waits(self, tmp_path):
        obs.configure(level=obs.parse_level("info"))
        try:
            store = ResultStore(tmp_path / "store")
            with store.lock():
                started = time.monotonic()
                with pytest.raises(RunnerError, match="held by another"):
                    store.lock(timeout_s=0.2).acquire()
                assert time.monotonic() - started < 5.0
            waits = obs.state().registry.snapshot()["counters"].get(
                f"runner.store.{obs_names.MET_LOCK_WAITS}", 0)
            assert waits >= 1
        finally:
            obs.disable()

    def test_dead_holder_lock_is_broken_and_counted(self, tmp_path):
        obs.configure(level=obs.parse_level("info"))
        try:
            store = ResultStore(tmp_path / "store")
            # A pid from a process that has provably exited.
            probe = multiprocessing.Process(target=_noop)
            probe.start()
            dead_pid = probe.pid
            probe.join()
            lock_path = tmp_path / "store" / ".lock"
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            lock_path.write_text(str(dead_pid), encoding="utf-8")
            with store.lock(timeout_s=5.0):
                pass  # acquired by breaking the dead holder's lock
            breaks = obs.state().registry.snapshot()["counters"].get(
                f"runner.store.{obs_names.MET_LOCK_BREAKS}", 0)
            assert breaks >= 1
        finally:
            obs.disable()


def _noop() -> None:
    pass
