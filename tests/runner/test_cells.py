"""Cell model and cache-key derivation."""

import pytest

from repro.errors import RunnerError
from repro.runner import Cell, cell_config, cell_key


def key(cell, options):
    return cell_key(cell, options)


class TestCellValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(RunnerError):
            Cell(kind="quantum")

    def test_unknown_config_name_rejected(self):
        with pytest.raises(RunnerError):
            Cell(kind="trace", config_name="overclocked")

    def test_label_is_human_readable(self):
        cell = Cell(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        assert cell.label == "trace:oltp:domino:d1"


class TestCellConfig:
    def test_default_config_is_table1(self):
        assert cell_config(Cell(kind="trace")).llc.size_bytes == 4 * 1024 * 1024

    def test_timing_config_scales_llc(self):
        cfg = cell_config(Cell(kind="multicore", config_name="timing"))
        assert cfg.llc.size_bytes == 256 * 1024

    def test_overrides_applied(self):
        cell = Cell(kind="trace", overrides=(("ht_entries", 1 << 14),))
        assert cell_config(cell).ht_entries == 1 << 14


class TestCellKey:
    def test_same_inputs_same_key(self, tiny_options):
        a = Cell(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        b = Cell(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        assert key(a, tiny_options) == key(b, tiny_options)

    def test_key_is_hex_sha256(self, tiny_options):
        k = key(Cell(kind="opportunity", workload="oltp"), tiny_options)
        assert len(k) == 64
        int(k, 16)

    @pytest.mark.parametrize("change", [
        dict(prefetcher="stms"),
        dict(workload="web_apache"),
        dict(degree=4),
        dict(kind="opportunity", prefetcher="", degree=None),
        dict(overrides=(("ht_entries", 1 << 14),)),
        dict(params=(("table_bits", 8),)),
    ])
    def test_any_cell_change_changes_key(self, tiny_options, change):
        base = dict(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        assert (key(Cell(**base), tiny_options)
                != key(Cell(**{**base, **change}), tiny_options))

    @pytest.mark.parametrize("change", [
        dict(n_accesses=7000),
        dict(warmup_frac=0.25),
        dict(seed=8),
    ])
    def test_any_option_change_changes_key(self, tiny_options, change):
        cell = Cell(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        assert (key(cell, tiny_options)
                != key(cell, tiny_options.scaled(**change)))

    def test_default_degree_resolves_from_options(self, tiny_options):
        """degree=None must hash as the sweep default, not collide
        across sweeps with different defaults."""
        cell = Cell(kind="trace", workload="oltp", prefetcher="domino")
        explicit = Cell(kind="trace", workload="oltp", prefetcher="domino",
                        degree=tiny_options.degree)
        assert key(cell, tiny_options) == key(explicit, tiny_options)
        assert (key(cell, tiny_options)
                != key(cell, tiny_options.scaled(degree=1)))

    def test_opportunity_cells_are_degree_independent(self, tiny_options):
        cell = Cell(kind="opportunity", workload="oltp")
        assert (key(cell, tiny_options)
                == key(cell, tiny_options.scaled(degree=1)))

    def test_table1_ignores_trace_options(self, tiny_options):
        cell = Cell(kind="table1")
        assert (key(cell, tiny_options)
                == key(cell, tiny_options.scaled(n_accesses=99, seed=0)))

    def test_workload_list_does_not_enter_key(self, tiny_options):
        """fig sweeps over different workload subsets share cells."""
        cell = Cell(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        wider = tiny_options.scaled(workloads=("oltp", "web_apache"))
        assert key(cell, tiny_options) == key(cell, wider)

    def test_unserialisable_override_rejected(self, tiny_options):
        cell = Cell(kind="trace", workload="oltp", prefetcher="domino",
                    overrides=(("ht_entries", object()),))
        with pytest.raises(RunnerError):
            key(cell, tiny_options)


class TestL1FilterKey:
    def test_stable_and_hex(self, tiny_options):
        from repro.config import SystemConfig
        from repro.runner.cells import l1_filter_key

        cfg = SystemConfig()
        k = l1_filter_key("oltp", tiny_options, cfg)
        assert k == l1_filter_key("oltp", tiny_options, cfg)
        assert len(k) == 64
        int(k, 16)

    def test_trace_identity_enters_key(self, tiny_options):
        from repro.config import SystemConfig
        from repro.runner.cells import l1_filter_key

        cfg = SystemConfig()
        base = l1_filter_key("oltp", tiny_options, cfg)
        assert l1_filter_key("web_apache", tiny_options, cfg) != base
        assert l1_filter_key("oltp", tiny_options.scaled(n_accesses=999),
                             cfg) != base
        assert l1_filter_key("oltp", tiny_options.scaled(seed=99), cfg) != base
        assert l1_filter_key("oltp", tiny_options, cfg,
                             window=(100, 6000)) != base

    def test_l1_geometry_enters_key(self, tiny_options):
        from repro.config import SystemConfig, small_test_config
        from repro.runner.cells import l1_filter_key

        assert (l1_filter_key("oltp", tiny_options, SystemConfig())
                != l1_filter_key("oltp", tiny_options, small_test_config()))

    def test_prefetcher_irrelevant_knobs_do_not_enter_key(self, tiny_options):
        """The whole point: one filter serves every prefetcher/degree."""
        from repro.config import SystemConfig
        from repro.runner.cells import l1_filter_key

        cfg = SystemConfig()
        assert (l1_filter_key("oltp", tiny_options, cfg)
                == l1_filter_key("oltp", tiny_options.scaled(degree=8), cfg)
                == l1_filter_key("oltp", tiny_options.scaled(
                    warmup_frac=0.5), cfg))

    def test_distinct_from_cell_keys(self, tiny_options):
        from repro.config import SystemConfig
        from repro.runner.cells import l1_filter_key

        cell = Cell(kind="trace", workload="oltp", prefetcher="domino", degree=1)
        assert (l1_filter_key("oltp", tiny_options, SystemConfig())
                != key(cell, tiny_options))
