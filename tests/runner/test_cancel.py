"""Cancellation through the runner: serial scope plumbing, retry
backoff interruption, and pool polling."""

import pytest

from repro.cancel import CancelToken
from repro.errors import JobCancelled
from repro.experiments.fig11_degree1 import build_cells
from repro.runner import ExecutionPolicy, run_cells


@pytest.fixture
def sweep(tiny_options):
    return build_cells(tiny_options, degree=1)


class TestSerial:
    def test_uncancelled_token_matches_plain_run(self, tiny_options, sweep):
        policy = ExecutionPolicy(jobs=1, use_cache=False)
        plain, _ = run_cells(sweep, tiny_options, policy)
        token = CancelToken(check_every=256)
        metered, manifest = run_cells(sweep, tiny_options, policy,
                                      cancel=token)
        assert metered == plain
        assert manifest.failed == 0
        # Every trace-simulating cell meters its accesses (analysis
        # cells run no engine loop, so they bill nothing).
        n_trace = sum(1 for cell in sweep if cell.kind == "trace")
        assert token.progress == n_trace * tiny_options.n_accesses

    def test_precancelled_token_runs_nothing(self, tiny_options, sweep):
        token = CancelToken()
        token.cancel("client_cancel")
        with pytest.raises(JobCancelled) as exc_info:
            run_cells(sweep, tiny_options,
                      ExecutionPolicy(jobs=1, use_cache=False), cancel=token)
        assert exc_info.value.reason == "client_cancel"
        assert token.progress == 0

    def test_cancel_overrides_keep_going(self, tiny_options, sweep):
        token = CancelToken()
        token.cancel("client_cancel")
        policy = ExecutionPolicy(jobs=1, use_cache=False, keep_going=True)
        with pytest.raises(JobCancelled):
            run_cells(sweep, tiny_options, policy, cancel=token)

    def test_completed_cells_stay_in_store(self, tmp_path, tiny_options,
                                           sweep):
        """Cancel between cells: finished artifacts survive for reuse."""
        policy = ExecutionPolicy(jobs=1, use_cache=True,
                                 cache_dir=tmp_path / "c")
        n_first = tiny_options.n_accesses

        class TripwireToken(CancelToken):
            """Cancels itself once the first cell's accesses are billed."""

            __slots__ = ()

            def advance(self, n):
                super().advance(n)
                if self.progress >= n_first and not self.cancelled:
                    self.cancel("client_cancel")

        token = TripwireToken(check_every=256)
        with pytest.raises(JobCancelled):
            run_cells(sweep, tiny_options, policy, cancel=token)
        # A fresh uncancelled run over the same store serves at least
        # the first cell from cache.
        _, manifest = run_cells(sweep, tiny_options, policy)
        assert manifest.hits >= 1


class TestPool:
    def test_pool_uncancelled_token_matches_serial(self, tiny_options):
        cells = build_cells(tiny_options, degree=1) + \
            build_cells(tiny_options, degree=4)
        serial, _ = run_cells(cells, tiny_options,
                              ExecutionPolicy(jobs=1, use_cache=False))
        token = CancelToken()
        pooled, manifest = run_cells(
            cells, tiny_options, ExecutionPolicy(jobs=2, use_cache=False),
            cancel=token)
        assert pooled == serial
        assert manifest.failed == 0

    def test_pool_precancelled_token_aborts(self, tiny_options):
        cells = build_cells(tiny_options, degree=1) + \
            build_cells(tiny_options, degree=4)
        token = CancelToken()
        token.cancel("client_cancel")
        with pytest.raises(JobCancelled):
            run_cells(cells, tiny_options,
                      ExecutionPolicy(jobs=2, use_cache=False), cancel=token)
