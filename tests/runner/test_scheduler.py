"""Scheduler: cache accounting, pool fan-out, serial equivalence."""

import pytest

from repro.experiments.fig11_degree1 import build_cells, run as run_fig11
from repro.runner import Cell, ExecutionPolicy, ResultStore, run_cells, set_policy
from repro.runner.cells import cell_key


@pytest.fixture
def sweep(tiny_options):
    """fig11's cell list for the tiny single-workload options."""
    return build_cells(tiny_options, degree=1)


class TestCacheAccounting:
    def test_cold_run_all_misses(self, tmp_path, tiny_options, sweep):
        policy = ExecutionPolicy(use_cache=True, cache_dir=tmp_path / "c")
        payloads, manifest = run_cells(sweep, tiny_options, policy)
        assert manifest.misses == len(sweep) and manifest.hits == 0
        assert all(p is not None for p in payloads)

    def test_warm_run_all_hits_same_payloads(self, tmp_path, tiny_options, sweep):
        policy = ExecutionPolicy(use_cache=True, cache_dir=tmp_path / "c")
        cold, _ = run_cells(sweep, tiny_options, policy)
        warm, manifest = run_cells(sweep, tiny_options, policy)
        assert manifest.hits == len(sweep) and manifest.misses == 0
        assert warm == cold
        assert manifest.wall_s < 1.0

    def test_corrupted_artifact_reexecutes_one_cell(self, tmp_path, tiny_options, sweep):
        policy = ExecutionPolicy(use_cache=True, cache_dir=tmp_path / "c")
        cold, _ = run_cells(sweep, tiny_options, policy)
        store = ResultStore(tmp_path / "c")
        store.path_for(cell_key(sweep[0], tiny_options)).write_text("not json")
        warm, manifest = run_cells(sweep, tiny_options, policy)
        assert manifest.hits == len(sweep) - 1 and manifest.misses == 1
        assert warm == cold

    def test_no_cache_never_touches_disk(self, tmp_path, tiny_options, sweep):
        policy = ExecutionPolicy(use_cache=False, cache_dir=tmp_path / "c")
        _, manifest = run_cells(sweep, tiny_options, policy)
        assert not (tmp_path / "c").exists()
        assert not manifest.cache_enabled
        assert manifest.misses == len(sweep)

    def test_manifest_serialises(self, tmp_path, tiny_options):
        cells = [Cell(kind="table1")]
        _, manifest = run_cells(cells, tiny_options,
                                ExecutionPolicy(use_cache=False))
        d = manifest.to_dict()
        assert d["cells"][0]["label"] == "table1"
        assert d["mode"] == "serial"


class TestParallelEquivalence:
    def test_pool_matches_serial_payloads(self, tiny_options, sweep):
        serial, m1 = run_cells(sweep, tiny_options,
                               ExecutionPolicy(jobs=1, use_cache=False))
        parallel, m2 = run_cells(sweep, tiny_options,
                                 ExecutionPolicy(jobs=2, use_cache=False))
        assert parallel == serial
        assert m1.mode == "serial"
        assert m2.mode in ("pool", "serial-fallback")

    def test_fig11_quick_tables_identical(self, tiny_options):
        """The acceptance criterion, in-process: --jobs N renders the
        very same table as --jobs 1, and a warm rerun still does."""
        set_policy(ExecutionPolicy(jobs=1, use_cache=False))
        serial = run_fig11(tiny_options)
        set_policy(ExecutionPolicy(jobs=2, use_cache=False))
        parallel = run_fig11(tiny_options)
        assert parallel.render() == serial.render()
        assert parallel.rows == serial.rows

    def test_fig11_warm_cache_identical_with_hits(self, tmp_path, tiny_options):
        set_policy(ExecutionPolicy(jobs=2, use_cache=True,
                                   cache_dir=tmp_path / "c"))
        cold = run_fig11(tiny_options)
        warm = run_fig11(tiny_options)
        assert warm.render() == cold.render()
        assert cold.manifest.hits == 0
        assert warm.manifest.hits == warm.manifest.n_cells > 0

    def test_single_pending_cell_stays_serial(self, tmp_path, tiny_options):
        """No point forking a pool for one miss."""
        cells = [Cell(kind="table1")]
        _, manifest = run_cells(cells, tiny_options,
                                ExecutionPolicy(jobs=8, use_cache=False))
        assert manifest.mode == "serial"


class TestPolicy:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionPolicy(jobs=0)

    @pytest.mark.parametrize("bad", [dict(retries=-1), dict(backoff_s=-0.1),
                                     dict(backoff_max_s=-1.0),
                                     dict(timeout_s=0.0),
                                     dict(resume=True)])
    def test_robustness_knobs_validated(self, bad):
        with pytest.raises(ValueError):
            ExecutionPolicy(**bad)

    def test_backoff_delay_deterministic_and_bounded(self):
        from repro.runner.scheduler import _backoff_delay
        policy = ExecutionPolicy(retries=5, backoff_s=0.1, backoff_max_s=1.0)
        delays = [_backoff_delay(policy, "somekey", a) for a in range(5)]
        assert delays == [_backoff_delay(policy, "somekey", a)
                          for a in range(5)]
        for attempt, delay in enumerate(delays):
            ceiling = min(1.0, 0.1 * 2 ** attempt)
            assert 0.5 * ceiling <= delay < 1.5 * ceiling

    def test_set_policy_overrides(self):
        policy = set_policy(jobs=3, use_cache=False)
        assert policy.jobs == 3
        from repro.runner import get_policy
        assert get_policy() is policy
