"""Runner test fixtures: policy isolation and small sweep options."""

import pytest

from repro.experiments.common import ExperimentOptions
from repro.runner import scheduler


@pytest.fixture(autouse=True)
def _restore_policy():
    """Tests may install a global execution policy; undo it."""
    old = scheduler.get_policy()
    yield
    scheduler.set_policy(old)


@pytest.fixture
def tiny_options() -> ExperimentOptions:
    """A sweep small enough for sub-second cells."""
    return ExperimentOptions(n_accesses=6000, workloads=("oltp",), seed=7)
