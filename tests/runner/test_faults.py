"""Fault injection: deterministic rolls, retry/timeout/degradation paths.

Everything here leans on the one property that makes chaos testing
usable in CI: a :class:`FaultPlan` decision depends only on
``(seed, mode, cell key, attempt)``, never on scheduler state, so the
same plan produces the same failures at ``--jobs 1`` and ``--jobs 4``.
"""

import pytest

from repro.errors import CellFailedError, ConfigError
from repro.experiments.fig11_degree1 import build_cells
from repro.faults import (FaultPlan, InjectedFault, corrupt_artifact,
                          parse_fault_spec, stable_fraction)
from repro.runner import ExecutionPolicy, ResultStore, run_cells


@pytest.fixture
def sweep(tiny_options):
    return build_cells(tiny_options, degree=1)


def statuses(manifest):
    return [(c.label, c.status, c.attempts) for c in manifest.cells]


class TestStableFraction:
    def test_in_unit_interval_and_deterministic(self):
        values = [stable_fraction(7, "crash", f"key{i}", 0) for i in range(200)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [stable_fraction(7, "crash", f"key{i}", 0)
                          for i in range(200)]

    def test_sensitive_to_every_part(self):
        base = stable_fraction(0, "crash", "k", 0)
        assert stable_fraction(1, "crash", "k", 0) != base
        assert stable_fraction(0, "hang", "k", 0) != base
        assert stable_fraction(0, "crash", "k2", 0) != base
        assert stable_fraction(0, "crash", "k", 1) != base

    def test_roughly_uniform(self):
        hits = sum(stable_fraction("u", i) < 0.3 for i in range(2000))
        assert 450 < hits < 750  # 0.3 ± generous slack


class TestFaultPlan:
    def test_zeroed_plan_is_inert(self):
        plan = FaultPlan()
        assert not plan.active
        plan.apply("deadbeef", 0)  # must not raise

    def test_crash_attempts_fails_first_n_then_succeeds(self):
        plan = FaultPlan(crash_attempts=2)
        assert plan.should_crash("k", 0) and plan.should_crash("k", 1)
        assert not plan.should_crash("k", 2)

    def test_apply_raises_injected_fault(self):
        with pytest.raises(InjectedFault):
            FaultPlan(crash_attempts=1).apply("k", 0)

    def test_exit_degrades_to_raise_outside_pool_workers(self):
        """In-process, `exit` must not kill the interpreter."""
        with pytest.raises(InjectedFault, match="not in a pool worker"):
            FaultPlan(exit_p=1.0).apply("k", 0)

    def test_probabilities_validated(self):
        with pytest.raises(ConfigError):
            FaultPlan(crash_p=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(crash_attempts=-1)

    def test_corrupt_artifact_clobbers_file(self, tmp_path):
        target = tmp_path / "a.json"
        target.write_text('{"ok": true}')
        assert corrupt_artifact(target)
        assert target.read_bytes().startswith(b'{"schema"')
        assert not corrupt_artifact(tmp_path / "missing.json")


class TestParseSpec:
    def test_full_grammar(self):
        plan = parse_fault_spec("crash:0.3,hang:0.1,exit:0.05,corrupt:0.2,"
                                "seed:9,hang_s:2.5")
        assert plan == FaultPlan(crash_p=0.3, hang_p=0.1, exit_p=0.05,
                                 corrupt_p=0.2, seed=9, hang_s=2.5)

    def test_crash_at_n(self):
        assert parse_fault_spec("crash@2").crash_attempts == 2

    @pytest.mark.parametrize("bad", ["bogus:1", "crash", "hang@2",
                                     "crash:lots", "crash@x", "crash:2.0"])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_fault_spec(bad)


class TestRetries:
    def test_crash_at_n_retried_to_success(self, tiny_options, sweep):
        plan = FaultPlan(crash_attempts=1)
        payloads, manifest = run_cells(
            sweep, tiny_options,
            ExecutionPolicy(use_cache=False, retries=2, backoff_s=0.0,
                            faults=plan))
        assert all(p is not None for p in payloads)
        assert all(c.status == "retried" and c.attempts == 2
                   for c in manifest.cells)
        assert manifest.retried == len(sweep) and manifest.failed == 0

    def test_exhausted_budget_raises_by_default(self, tiny_options, sweep):
        plan = FaultPlan(crash_attempts=3)
        with pytest.raises(CellFailedError, match="injected crash"):
            run_cells(sweep[:1], tiny_options,
                      ExecutionPolicy(use_cache=False, retries=1,
                                      backoff_s=0.0, faults=plan))

    def test_keep_going_degrades_to_partial_results(self, tiny_options, sweep):
        plan = FaultPlan(crash_attempts=3)
        payloads, manifest = run_cells(
            sweep, tiny_options,
            ExecutionPolicy(use_cache=False, retries=1, backoff_s=0.0,
                            keep_going=True, faults=plan))
        assert all(p is None for p in payloads)
        assert all(c.status == "failed" and c.attempts == 2
                   for c in manifest.cells)
        assert manifest.failed == len(sweep)
        assert not manifest.complete
        assert all("injected crash" in c.error for c in manifest.cells)


class TestSerialParallelEquivalence:
    def test_same_payloads_and_statuses_under_crashes(self, tiny_options, sweep):
        """The acceptance criterion: `--jobs 4` == serial under injected
        worker crashes, payloads and manifest statuses alike."""
        def run(jobs):
            return run_cells(sweep, tiny_options,
                             ExecutionPolicy(jobs=jobs, use_cache=False,
                                             retries=3, backoff_s=0.0,
                                             keep_going=True,
                                             faults=FaultPlan(crash_p=0.4,
                                                              seed=5)))
        serial_p, serial_m = run(1)
        pool_p, pool_m = run(4)
        assert pool_p == serial_p
        assert statuses(pool_m) == statuses(serial_m)

    def test_failures_identical_across_modes(self, tiny_options, sweep):
        """Even *which* cells fail matches between serial and pool."""
        def run(jobs):
            _, m = run_cells(sweep, tiny_options,
                             ExecutionPolicy(jobs=jobs, use_cache=False,
                                             retries=0, backoff_s=0.0,
                                             keep_going=True,
                                             faults=FaultPlan(crash_p=0.5,
                                                              seed=3)))
            return statuses(m)
        assert run(4) == run(1)


class TestTimeouts:
    TIMEOUT = ExecutionPolicy(use_cache=False, retries=0, timeout_s=0.2,
                              keep_going=True,
                              faults=FaultPlan(hang_p=1.0, hang_s=1.0))

    def test_serial_hang_marked_timeout(self, tiny_options, sweep):
        payloads, manifest = run_cells(sweep[:2], tiny_options, self.TIMEOUT)
        assert payloads == [None, None]
        assert all(c.status == "timeout" for c in manifest.cells)

    def test_pool_watchdog_preempts_hang(self, tiny_options, sweep):
        import dataclasses
        import time
        policy = dataclasses.replace(
            self.TIMEOUT, jobs=2,
            faults=FaultPlan(hang_p=1.0, hang_s=30.0))
        start = time.monotonic()
        payloads, manifest = run_cells(sweep[:2], tiny_options, policy)
        assert time.monotonic() - start < 25.0  # did not wait out the hang
        assert payloads == [None, None]
        assert all(c.status == "timeout" for c in manifest.cells)

    def test_worker_death_detected_via_timeout(self, tiny_options, sweep):
        policy = ExecutionPolicy(jobs=2, use_cache=False, retries=0,
                                 timeout_s=1.0, keep_going=True,
                                 faults=FaultPlan(exit_p=1.0))
        payloads, manifest = run_cells(sweep[:2], tiny_options, policy)
        assert payloads == [None, None]
        assert all(c.status == "timeout" for c in manifest.cells)


class TestCorruptFault:
    def test_corrupt_artifacts_quarantined_on_next_run(self, tmp_path,
                                                       tiny_options, sweep):
        cache = tmp_path / "c"
        seeded = ExecutionPolicy(use_cache=True, cache_dir=cache,
                                 faults=FaultPlan(corrupt_p=1.0))
        first, _ = run_cells(sweep, tiny_options, seeded)
        clean = ExecutionPolicy(use_cache=True, cache_dir=cache)
        second, manifest = run_cells(sweep, tiny_options, clean)
        assert manifest.hits == 0 and manifest.misses == len(sweep)
        assert second == first
        assert ResultStore(cache).stats().n_quarantined == len(sweep)
        third, manifest3 = run_cells(sweep, tiny_options, clean)
        assert manifest3.hits == len(sweep)
        assert third == first
