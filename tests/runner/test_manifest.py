"""Manifest schema: versioned round-trip, validation, utilization math."""

import pytest

from repro.errors import RunnerError
from repro.runner import MANIFEST_SCHEMA_VERSION
from repro.runner.manifest import RunManifest


def _sample() -> RunManifest:
    manifest = RunManifest(jobs=2, mode="pool", wall_s=4.0)
    manifest.record_hit("k1", "trace:oltp:domino:d1")
    manifest.record_executed("k2", "trace:oltp:stms:d1", wall_s=3.0, cpu_s=2.5)
    manifest.record_executed("k3", "trace:oltp:isb:d1", wall_s=1.0, cpu_s=0.9)
    return manifest


class TestRoundTrip:
    def test_to_dict_carries_version_and_totals(self):
        data = _sample().to_dict()
        assert data["version"] == MANIFEST_SCHEMA_VERSION
        assert data["wall_s"] == 4.0
        assert data["executed_s"] == 4.0
        assert data["executed_cpu_s"] == pytest.approx(3.4)
        assert len(data["cells"]) == 3

    def test_from_dict_round_trips(self):
        original = _sample()
        restored = RunManifest.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.hits == 1 and restored.misses == 2

    def test_json_serialisable(self):
        import json
        json.dumps(_sample().to_dict())  # must not raise


class TestValidation:
    def test_missing_version_rejected(self):
        data = _sample().to_dict()
        del data["version"]
        with pytest.raises(RunnerError, match="no 'version'"):
            RunManifest.from_dict(data)

    def test_unknown_version_rejected_with_both_versions_named(self):
        data = _sample().to_dict()
        data["version"] = 99
        with pytest.raises(RunnerError) as exc:
            RunManifest.from_dict(data)
        message = str(exc.value)
        assert "99" in message and str(MANIFEST_SCHEMA_VERSION) in message

    def test_malformed_cell_rejected(self):
        data = _sample().to_dict()
        del data["cells"][0]["label"]
        with pytest.raises(RunnerError, match="malformed manifest cell"):
            RunManifest.from_dict(data)


class TestAccounting:
    def test_utilization_bounded_by_capacity(self):
        manifest = _sample()   # 4.0s executed over 2 jobs x 4.0s wall
        assert manifest.utilization == pytest.approx(0.5)

    def test_utilization_zero_without_timed_work(self):
        assert RunManifest().utilization == 0.0
        idle = RunManifest(jobs=4, wall_s=0.0)
        idle.record_hit("k", "cell")
        assert idle.utilization == 0.0

    def test_utilization_clamped_to_one(self):
        manifest = RunManifest(jobs=1, wall_s=1.0)
        manifest.record_executed("k", "cell", wall_s=5.0)  # timer skew
        assert manifest.utilization == 1.0

    def test_slowest_cells_excludes_hits(self):
        slowest = _sample().slowest_cells
        assert [c.wall_s for c in slowest] == [3.0, 1.0]
        assert all(not c.cached for c in slowest)


class TestFailureStatuses:
    def _mixed(self) -> RunManifest:
        manifest = RunManifest(jobs=1, mode="serial", run_id="r9")
        manifest.record_hit("k1", "a")
        manifest.record_executed("k2", "b", wall_s=1.0)
        manifest.record_executed("k3", "c", wall_s=2.0,
                                 status="retried", attempts=3)
        manifest.record_failed("k4", "d", status="failed", attempts=2,
                               error="InjectedFault: injected crash")
        manifest.record_failed("k5", "e", status="timeout", attempts=1,
                               error="RunnerTimeoutError: 0.5s")
        return manifest

    def test_counts(self):
        manifest = self._mixed()
        assert manifest.hits == 1 and manifest.misses == 4
        assert manifest.failed == 2 and manifest.retried == 1
        assert not manifest.complete
        assert _sample().complete

    def test_cell_ok_property(self):
        by_status = {c.status: c for c in self._mixed().cells}
        assert by_status["hit"].ok and by_status["ok"].ok
        assert by_status["retried"].ok
        assert not by_status["failed"].ok and not by_status["timeout"].ok

    def test_round_trip_preserves_failure_fields(self):
        original = self._mixed()
        restored = RunManifest.from_dict(original.to_dict())
        assert restored.to_dict() == original.to_dict()
        assert restored.failed == 2 and restored.run_id == "r9"
        by_status = {c.status: c for c in restored.cells}
        assert by_status["failed"].attempts == 2
        assert "injected crash" in by_status["failed"].error

    def test_invalid_status_rejected(self):
        manifest = RunManifest()
        with pytest.raises(RunnerError, match="status"):
            manifest.record_failed("k", "cell", status="exploded",
                                   attempts=1, error="boom")

    def test_merged_with_sums_failures(self):
        left, right = self._mixed(), self._mixed()
        merged = left.merged_with(right)
        assert merged.failed == 4 and merged.retried == 2
        assert merged.run_id == "r9"
