"""Checkpoint journals: durability, torn tails, resume semantics."""

import json

import pytest

from repro.errors import CheckpointError
from repro.experiments.fig11_degree1 import build_cells
from repro.runner import ExecutionPolicy, run_cells
from repro.runner.checkpoint import (CheckpointJournal, RUNS_DIR,
                                     SCHEMA_VERSION, validate_run_id)


@pytest.fixture
def sweep(tiny_options):
    return build_cells(tiny_options, degree=1)


class TestRunIds:
    @pytest.mark.parametrize("good", ["r1", "fig11-2026.08.06", "A_b-c.d"])
    def test_safe_ids_accepted(self, good):
        assert validate_run_id(good) == good

    @pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden",
                                     "-dash", "x" * 200, "sp ace"])
    def test_unsafe_ids_rejected(self, bad):
        with pytest.raises(CheckpointError, match="invalid run id"):
            validate_run_id(bad)


class TestJournalRoundTrip:
    def test_fresh_open_writes_header(self, tmp_path):
        with CheckpointJournal.open(tmp_path, "r1") as journal:
            journal.record("k1")
            journal.record("k2", status="retried")
        lines = (tmp_path / RUNS_DIR / "r1.ckpt").read_text().splitlines()
        assert json.loads(lines[0]) == {"schema": SCHEMA_VERSION,
                                        "run_id": "r1"}
        assert [json.loads(l)["key"] for l in lines[1:]] == ["k1", "k2"]

    def test_duplicate_records_written_once(self, tmp_path):
        with CheckpointJournal.open(tmp_path, "r1") as journal:
            journal.record("k1")
            journal.record("k1")
        reloaded = CheckpointJournal.open(tmp_path, "r1", resume=True)
        assert reloaded.seen == {"k1"}
        assert len(reloaded.path.read_text().splitlines()) == 2
        reloaded.close()

    def test_fresh_open_truncates_stale_journal(self, tmp_path):
        with CheckpointJournal.open(tmp_path, "r1") as journal:
            journal.record("old")
        with CheckpointJournal.open(tmp_path, "r1") as journal:
            assert journal.seen == set()
        resumed = CheckpointJournal.open(tmp_path, "r1", resume=True)
        assert resumed.seen == set()
        resumed.close()

    def test_torn_tail_tolerated(self, tmp_path):
        """A SIGKILL mid-append leaves a partial last line; everything
        before it must still load."""
        with CheckpointJournal.open(tmp_path, "r1") as journal:
            journal.record("k1")
            journal.record("k2")
        path = tmp_path / RUNS_DIR / "r1.ckpt"
        path.write_text(path.read_text() + '{"key": "k3", "sta')
        resumed = CheckpointJournal.open(tmp_path, "r1", resume=True)
        assert resumed.seen == {"k1", "k2"}
        resumed.close()

    def test_corrupt_middle_record_rejected(self, tmp_path):
        with CheckpointJournal.open(tmp_path, "r1") as journal:
            journal.record("k1")
        path = tmp_path / RUNS_DIR / "r1.ckpt"
        lines = path.read_text().splitlines()
        lines.insert(1, "not json")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt checkpoint record"):
            CheckpointJournal.open(tmp_path, "r1", resume=True)

    def test_resume_of_unknown_run_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointJournal.open(tmp_path, "ghost", resume=True)

    def test_resume_of_non_journal_file_rejected(self, tmp_path):
        path = tmp_path / RUNS_DIR / "r1.ckpt"
        path.parent.mkdir(parents=True)
        path.write_text('{"some": "other json"}\n')
        with pytest.raises(CheckpointError, match="not a v"):
            CheckpointJournal.open(tmp_path, "r1", resume=True)


class TestSchedulerIntegration:
    def test_resume_skips_journaled_cells(self, tmp_path, tiny_options, sweep):
        cache = tmp_path / "c"
        first = ExecutionPolicy(use_cache=True, cache_dir=cache, run_id="r1")
        partial, m1 = run_cells(sweep[:3], tiny_options, first)
        assert m1.run_id == "r1" and m1.misses == 3

        resumed = ExecutionPolicy(jobs=2, use_cache=True, cache_dir=cache,
                                  run_id="r1", resume=True)
        payloads, m2 = run_cells(sweep, tiny_options, resumed)
        assert m2.hits == 3 and m2.misses == len(sweep) - 3
        assert payloads[:3] == partial

        reference, _ = run_cells(sweep, tiny_options,
                                 ExecutionPolicy(use_cache=False))
        assert payloads == reference

    def test_journal_records_every_completed_cell(self, tmp_path,
                                                  tiny_options, sweep):
        cache = tmp_path / "c"
        run_cells(sweep, tiny_options,
                  ExecutionPolicy(jobs=2, use_cache=True, cache_dir=cache,
                                  run_id="r1"))
        journal = CheckpointJournal(cache / RUNS_DIR / "r1.ckpt", "r1")
        assert len(journal.load()) == len(sweep)

    def test_failed_cells_not_journaled_and_rerun_on_resume(
            self, tmp_path, tiny_options, sweep):
        from repro.faults import FaultPlan
        cache = tmp_path / "c"
        crashing = ExecutionPolicy(use_cache=True, cache_dir=cache,
                                   run_id="r1", retries=0, backoff_s=0.0,
                                   keep_going=True,
                                   faults=FaultPlan(crash_attempts=1))
        payloads, m1 = run_cells(sweep, tiny_options, crashing)
        assert m1.failed == len(sweep) and payloads == [None] * len(sweep)
        journal = CheckpointJournal(cache / RUNS_DIR / "r1.ckpt", "r1")
        assert journal.load() == set()

        healed = ExecutionPolicy(use_cache=True, cache_dir=cache,
                                 run_id="r1", resume=True)
        payloads2, m2 = run_cells(sweep, tiny_options, healed)
        assert m2.hits == 0 and m2.misses == len(sweep)
        assert all(p is not None for p in payloads2)

    def test_journaled_key_with_evicted_artifact_reexecutes(
            self, tmp_path, tiny_options, sweep):
        """The journal is an optimisation, not a source of truth: a
        journaled cell whose artifact is gone simply runs again."""
        from repro.runner import ResultStore
        cache = tmp_path / "c"
        first, _ = run_cells(sweep[:2], tiny_options,
                             ExecutionPolicy(use_cache=True, cache_dir=cache,
                                             run_id="r1"))
        ResultStore(cache).clear()
        payloads, manifest = run_cells(
            sweep[:2], tiny_options,
            ExecutionPolicy(use_cache=True, cache_dir=cache,
                            run_id="r1", resume=True))
        assert manifest.hits == 0 and manifest.misses == 2
        assert payloads == first

    def test_run_id_requires_cache(self, tiny_options, sweep):
        with pytest.raises(CheckpointError, match="artifact cache"):
            run_cells(sweep[:1], tiny_options,
                      ExecutionPolicy(use_cache=False, run_id="r1"))

    def test_resume_requires_run_id(self):
        with pytest.raises(ValueError, match="run_id"):
            ExecutionPolicy(use_cache=True, resume=True)
