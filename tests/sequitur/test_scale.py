"""Sequitur at scale: linear-ish growth and robustness on long inputs."""

import random
import time

from repro.sequitur.grammar import Grammar
from repro.sequitur.analysis import analyze_sequence


def test_handles_tens_of_thousands_of_symbols():
    rng = random.Random(5)
    motif = [rng.randrange(500) for _ in range(60)]
    seq = []
    while len(seq) < 30_000:
        if rng.random() < 0.8:
            start = rng.randrange(40)
            seq.extend(motif[start:start + 12])
        else:
            seq.append(rng.randrange(10_000))
    grammar = Grammar()
    start_time = time.time()
    grammar.extend(seq)
    elapsed = time.time() - start_time
    assert grammar.expand() == seq
    assert elapsed < 10.0  # linear-time algorithm; generous CI bound

    analysis = analyze_sequence(seq[:10_000])
    assert analysis.opportunity > 0.3


def test_pathological_alternation():
    seq = [1, 2, 1, 2, 2, 1, 1, 2, 2, 2, 1, 1, 1] * 50
    grammar = Grammar()
    grammar.extend(seq)
    assert grammar.expand() == seq
    grammar.check_invariants()


def test_long_runs_of_one_symbol():
    seq = [9] * 400
    grammar = Grammar()
    grammar.extend(seq)
    assert grammar.expand() == seq
    # Hierarchical doubling: the grammar is logarithmic, not linear.
    assert grammar.grammar_size() < 60
