"""Longest-match oracle replay tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequitur.analysis import analyze_sequence
from repro.sequitur.oracle import oracle_replay


class TestOracleReplay:
    def test_unique_sequence_covers_nothing(self):
        result = oracle_replay(list(range(30)))
        assert result.covered_misses == 0
        assert result.coverage == 0.0

    def test_perfect_repetition_covers_tail(self):
        seq = [1, 2, 3, 4, 5]
        result = oracle_replay(seq * 4)
        # After the first occurrence, everything except re-anchor points
        # is predictable.
        assert result.coverage > 0.6

    def test_streak_lengths_recorded(self):
        seq = [1, 2, 3, 4, 5]
        result = oracle_replay(seq * 3)
        assert result.stream_lengths.count >= 1
        assert result.mean_stream_length > 1.0

    def test_interleaved_repetition_still_covered_with_context(self):
        # Two interleaved streams: pair context disambiguates.
        a = [10, 11, 12, 13]
        b = [20, 21, 22, 23]
        seq = a + b + a + b + a + b
        result = oracle_replay(seq, max_context=2)
        assert result.coverage > 0.4

    def test_max_context_must_be_positive(self):
        with pytest.raises(ValueError):
            oracle_replay([1, 2, 3], max_context=0)

    def test_empty_sequence(self):
        result = oracle_replay([])
        assert result.total_misses == 0
        assert result.coverage == 0.0


@settings(max_examples=60, deadline=None)
@given(seq=st.lists(st.integers(0, 9), max_size=150))
def test_coverage_bounded(seq):
    result = oracle_replay(seq)
    assert 0 <= result.covered_misses <= len(seq)
    assert 0.0 <= result.coverage <= 1.0


@settings(max_examples=25, deadline=None)
@given(seq=st.lists(st.integers(0, 4), min_size=4, max_size=40),
       repeats=st.integers(3, 6))
def test_oracle_tracks_grammar_opportunity(seq, repeats):
    """The two opportunity estimates must agree on strongly repetitive
    inputs (they formalise the same notion)."""
    inp = seq * repeats
    oracle = oracle_replay(inp)
    grammar = analyze_sequence(inp)
    assert abs(oracle.coverage - grammar.opportunity) < 0.35
