"""Sequitur grammar: worked examples plus the algorithm's invariants.

The three invariants checked property-style:

* **reconstruction** — expanding the grammar reproduces the input;
* **digram uniqueness** — no digram occurs twice across rule bodies;
* **rule utility** — every non-root rule is referenced at least twice
  and has a body of at least two symbols.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GrammarError
from repro.sequitur.grammar import Grammar


def build(sequence):
    grammar = Grammar()
    grammar.extend(sequence)
    return grammar


class TestWorkedExamples:
    def test_no_repetition_no_rules(self):
        grammar = build([1, 2, 3, 4])
        assert len(grammar.rules()) == 1  # only the root

    def test_repeated_pair_creates_one_rule(self):
        grammar = build([1, 2, 1, 2])
        rules = grammar.rules()
        assert len(rules) == 2
        assert grammar.expand() == [1, 2, 1, 2]

    def test_classic_abcdbc(self):
        # From the Sequitur paper: "abcdbc" -> S = a A d A ; A = b c
        grammar = build([ord(c) for c in "abcdbc"])
        assert grammar.expand() == [ord(c) for c in "abcdbc"]
        assert len(grammar.rules()) == 2

    def test_nested_rules(self):
        # "abcabcabc" builds hierarchy
        seq = [ord(c) for c in "abcabcabcabc"]
        grammar = build(seq)
        assert grammar.expand() == seq
        grammar.check_invariants()

    def test_triple_repetition_aaa(self):
        # Overlapping digrams must not create bogus matches.
        for n in range(2, 12):
            grammar = build([7] * n)
            assert grammar.expand() == [7] * n, f"failed at n={n}"
            grammar.check_invariants()

    def test_alternating_long(self):
        seq = [1, 2] * 20
        grammar = build(seq)
        assert grammar.expand() == seq
        grammar.check_invariants()

    def test_length_tracked(self):
        grammar = build([5, 6, 5, 6, 5])
        assert len(grammar) == 5

    def test_grammar_size_compresses_repetition(self):
        repetitive = build([1, 2, 3, 4] * 16)
        random_ish = build(list(range(64)))
        assert repetitive.grammar_size() < random_ish.grammar_size()

    def test_incremental_append_equivalent_to_extend(self):
        seq = [3, 1, 4, 1, 5, 9, 2, 6, 3, 1, 4, 1, 5]
        g1 = build(seq)
        g2 = Grammar()
        for s in seq:
            g2.append(s)
        assert g1.expand() == g2.expand()


@settings(max_examples=150, deadline=None)
@given(seq=st.lists(st.integers(0, 7), min_size=0, max_size=120))
def test_reconstruction_property(seq):
    grammar = build(seq)
    assert grammar.expand() == seq


@settings(max_examples=150, deadline=None)
@given(seq=st.lists(st.integers(0, 5), min_size=0, max_size=120))
def test_invariants_property(seq):
    """Digram uniqueness and rule utility hold for arbitrary inputs."""
    grammar = build(seq)
    grammar.check_invariants()


@settings(max_examples=50, deadline=None)
@given(seq=st.lists(st.integers(0, 3), min_size=4, max_size=80),
       repeats=st.integers(2, 4))
def test_grammar_never_larger_than_input(seq, repeats):
    """Rule substitution is symbol-neutral at worst, so the grammar can
    never hold more symbols than the input it encodes."""
    grammar = build(seq * repeats)
    assert grammar.expand() == seq * repeats
    assert grammar.grammar_size() <= len(seq) * repeats


def test_heavy_repetition_strictly_compresses():
    seq = [3, 1, 4, 1, 5, 9, 2, 6]
    grammar = build(seq * 8)
    assert grammar.expand() == seq * 8
    assert grammar.grammar_size() < len(seq) * 8 / 2


class TestInvariantChecker:
    def test_detects_broken_refcount(self):
        grammar = build([1, 2, 1, 2])
        rule = [r for r in grammar.rules() if r is not grammar.root][0]
        rule.refcount = 1
        with pytest.raises(GrammarError):
            grammar.check_invariants()
