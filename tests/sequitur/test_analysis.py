"""Opportunity analysis: stream decomposition over the grammar."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sequitur.analysis import analyze_sequence


class TestOpportunity:
    def test_unique_sequence_has_no_opportunity(self):
        analysis = analyze_sequence(list(range(20)))
        assert analysis.opportunity == 0.0
        assert analysis.covered_misses == 0
        assert analysis.total_misses == 20

    def test_exact_repetition_covers_second_half(self):
        seq = [1, 2, 3, 4, 5, 6, 7, 8]
        analysis = analyze_sequence(seq + seq)
        # The second occurrence is fully covered; the first is not.
        assert analysis.covered_misses == pytest.approx(len(seq), abs=2)
        assert 0.35 <= analysis.opportunity <= 0.55

    def test_many_repetitions_approach_full_coverage(self):
        seq = [1, 2, 3, 4, 5, 6, 7, 8]
        analysis = analyze_sequence(seq * 10)
        assert analysis.opportunity > 0.8

    def test_stream_lengths_reflect_repeated_chunks(self):
        seq = [1, 2, 3, 4]
        analysis = analyze_sequence(seq * 5)
        assert analysis.mean_stream_length >= 2.0

    def test_total_always_equals_input_length(self):
        seq = [1, 2, 1, 2, 3, 1, 2, 1, 2, 3]
        analysis = analyze_sequence(seq)
        assert analysis.total_misses == len(seq)

    def test_empty_sequence(self):
        analysis = analyze_sequence([])
        assert analysis.opportunity == 0.0
        assert analysis.total_misses == 0

    def test_compression_ratio_positive_for_repetitive_input(self):
        analysis = analyze_sequence([5, 6, 7] * 20)
        assert analysis.compression_ratio > 2.0

    def test_n_rules_counted(self):
        analysis = analyze_sequence([1, 2, 1, 2])
        assert analysis.n_rules == 2  # root + one rule


@settings(max_examples=80, deadline=None)
@given(seq=st.lists(st.integers(0, 9), max_size=150))
def test_decomposition_conserves_misses(seq):
    """covered + uncovered must equal the input length for any input."""
    analysis = analyze_sequence(seq)
    assert analysis.total_misses == len(seq)
    assert 0 <= analysis.covered_misses <= len(seq)
    assert 0.0 <= analysis.opportunity <= 1.0


@settings(max_examples=40, deadline=None)
@given(seq=st.lists(st.integers(0, 4), min_size=2, max_size=60),
       repeats=st.integers(2, 5))
def test_more_repetition_never_less_opportunity(seq, repeats):
    """Opportunity of k+1 repetitions >= opportunity of k repetitions
    (within tolerance for boundary-digram effects)."""
    lower = analyze_sequence(seq * repeats).opportunity
    higher = analyze_sequence(seq * (repeats + 1)).opportunity
    assert higher >= lower - 0.12
