"""Call-graph mechanics: edge typing, resolution, cycles, lock identity."""

from pathlib import Path

from repro.analyze.callgraph import (CALL, EXECUTOR, PROCESS, TASK, THREAD,
                                     TO_THREAD, Project)
from repro.analyze.engine import Analyzer


def build_project(**files: str) -> Project:
    """Build a Project from ``{module_name: source}`` mappings."""
    analyzer = Analyzer()
    contexts = []
    for name, source in files.items():
        ctx, parse_findings = analyzer._context_for(
            source, Path(f"fixtures/pkg/{name}.py"))
        assert ctx is not None, parse_findings
        contexts.append(ctx)
    return Project.build(contexts)


def edge_kinds(project: Project, caller: str) -> dict[str, str]:
    return {e.callee: e.kind for e in project.edges_from(caller)
            if e.callee is not None}


class TestEdgeTyping:
    def test_to_thread_edge(self):
        project = build_project(mod=(
            "import asyncio\n"
            "def work():\n    return 1\n"
            "async def run():\n    await asyncio.to_thread(work)\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.mod.work": TO_THREAD}

    def test_run_in_executor_edge(self):
        project = build_project(mod=(
            "def work():\n    return 1\n"
            "async def run(loop, pool):\n"
            "    await loop.run_in_executor(pool, work)\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.mod.work": TO_THREAD}

    def test_thread_target_edge(self):
        project = build_project(mod=(
            "import threading\n"
            "def work():\n    return 1\n"
            "def run():\n    threading.Thread(target=work).start()\n"))
        assert edge_kinds(project, "pkg.mod.run")["pkg.mod.work"] == THREAD

    def test_pool_submission_is_process_edge(self):
        project = build_project(mod=(
            "def work(x):\n    return x\n"
            "def run(pool):\n    pool.apply_async(work, (1,))\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.mod.work": PROCESS}
        assert len(project.process_spawns) == 1
        assert project.process_spawns[0].callee == "pkg.mod.work"

    def test_generic_map_needs_pool_receiver(self):
        project = build_project(mod=(
            "def work(x):\n    return x\n"
            "def a(pool, policy):\n    pool.map(work, [1])\n"
            "def b(pool, policy):\n    policy.apply(work, 1)\n"))
        assert edge_kinds(project, "pkg.mod.a") == {"pkg.mod.work": PROCESS}
        assert PROCESS not in edge_kinds(project, "pkg.mod.b").values()

    def test_create_task_edge(self):
        project = build_project(mod=(
            "import asyncio\n"
            "async def work():\n    return 1\n"
            "async def run():\n    asyncio.create_task(work())\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.mod.work": TASK}

    def test_executor_submit_edge(self):
        project = build_project(mod=(
            "def work():\n    return 1\n"
            "def run(pool):\n    pool.submit(work)\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.mod.work": EXECUTOR}


class TestResolution:
    def test_cross_module_import(self):
        project = build_project(
            util="def helper():\n    return 1\n",
            mod=("from util import helper\n"
                 "def run():\n    return helper()\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.util.helper": CALL}

    def test_module_alias_attribute_call(self):
        project = build_project(
            util="def helper():\n    return 1\n",
            mod=("import util\n"
                 "def run():\n    return util.helper()\n"))
        assert edge_kinds(project, "pkg.mod.run") == {"pkg.util.helper": CALL}

    def test_self_method_resolves_in_class(self):
        project = build_project(mod=(
            "class Server:\n"
            "    def step(self):\n        return self.render()\n"
            "    def render(self):\n        return 1\n"))
        assert edge_kinds(project, "pkg.mod.Server.step") == {
            "pkg.mod.Server.render": CALL}

    def test_dynamic_dispatch_unique_name_resolves(self):
        project = build_project(mod=(
            "class Worker:\n"
            "    def run_once(self):\n        return 1\n"
            "def drive(worker):\n    return worker.run_once()\n"))
        assert edge_kinds(project, "pkg.mod.drive") == {
            "pkg.mod.Worker.run_once": CALL}

    def test_dynamic_dispatch_ambiguous_name_stays_unresolved(self):
        project = build_project(mod=(
            "class A:\n"
            "    def run_once(self):\n        return 1\n"
            "class B:\n"
            "    def run_once(self):\n        return 2\n"
            "def drive(x):\n    return x.run_once()\n"))
        edges = project.edges_from("pkg.mod.drive")
        assert [e.callee for e in edges] == [None]
        assert edges[0].dotted == "x.run_once"


class TestGraphQueries:
    def test_call_cycle_terminates(self):
        project = build_project(mod=(
            "def ping():\n    return pong()\n"
            "def pong():\n    return ping()\n"))
        reach = project.reachable({"pkg.mod.ping"})
        assert reach == {"pkg.mod.ping", "pkg.mod.pong"}

    def test_entry_points_exclude_called_functions(self):
        project = build_project(mod=(
            "def inner():\n    return 1\n"
            "def outer():\n    return inner()\n"))
        assert project.entry_points() == {"pkg.mod.outer"}

    def test_reachability_respects_edge_kinds(self):
        project = build_project(mod=(
            "import asyncio\n"
            "def work():\n    return deeper()\n"
            "def deeper():\n    return 1\n"
            "async def run():\n    await asyncio.to_thread(work)\n"))
        sync_reach = project.reachable({"pkg.mod.run"})
        assert "pkg.mod.work" not in sync_reach
        thread_reach = project.reachable({"pkg.mod.work"})
        assert thread_reach == {"pkg.mod.work", "pkg.mod.deeper"}


class TestLockAndStateFacts:
    def test_module_and_instance_locks_identified(self):
        project = build_project(mod=(
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "class Box:\n"
            "    def __init__(self):\n"
            "        self._guard = threading.RLock()\n"))
        assert set(project.locks) == {"pkg.mod._LOCK", "pkg.mod.Box._guard"}

    def test_with_lock_nesting_recorded(self):
        project = build_project(mod=(
            "import threading\n"
            "_A = threading.Lock()\n"
            "_B = threading.Lock()\n"
            "def f():\n"
            "    with _A:\n"
            "        with _B:\n"
            "            pass\n"))
        nested = [a for a in project.acquisitions if a.held]
        assert len(nested) == 1
        assert nested[0].lock == "pkg.mod._B"
        assert nested[0].held == ("pkg.mod._A",)

    def test_contextvar_set_and_reset_facts(self):
        project = build_project(mod=(
            "import contextvars\n"
            "_V = contextvars.ContextVar('v')\n"
            "def scope(value):\n"
            "    token = _V.set(value)\n"
            "    _V.reset(token)\n"))
        assert [(s.var, s.token) for s in project.ctx_sets] == [
            ("pkg.mod._V", ("local", "token"))]
        assert [(r.var, r.token) for r in project.ctx_resets] == [
            ("pkg.mod._V", ("local", "token"))]

    def test_mutable_global_accesses_carry_held_locks(self):
        project = build_project(mod=(
            "import threading\n"
            "_LOCK = threading.Lock()\n"
            "_STATE = {}\n"
            "def locked_write():\n"
            "    with _LOCK:\n"
            "        _STATE['k'] = 1\n"
            "def bare_read():\n"
            "    return _STATE\n"))
        writes = [a for a in project.global_accesses if a.is_write]
        assert [w.locks_held for w in writes] == [("pkg.mod._LOCK",)]
        bare = [a for a in project.global_accesses
                if a.function == "pkg.mod.bare_read"]
        assert [(a.is_write, a.locks_held) for a in bare] == [(False, ())]
