"""PICKLE001 fixture: lambdas that would die at the pickle boundary."""

EXECUTORS = {
    "trace": lambda options: {"ok": True},
    "table1": lambda options: {"ok": False},
}


def submit_lambda(pool):
    return pool.apply_async(lambda: 1)


def run_lambda_cells():
    return run_cells(lambda cell: cell, options=None)
