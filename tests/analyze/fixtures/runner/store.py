"""IO001 fixture: a durable-write path that forgets to fsync."""
import json
import os


def put_without_fsync(path, payload):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
    os.replace(path, path + ".final")


def put_durably(path, payload):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(path, path + ".final")


def lockfile_hint(path, pid):
    with open(path, "w", encoding="utf-8") as fh:
        # Justification: advisory hint, durability not required.
        fh.write(str(pid))  # repro: noqa[IO001]
