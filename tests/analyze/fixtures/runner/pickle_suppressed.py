"""PICKLE001 fixture: a suppressed lambda registry entry."""

REGISTRY = {
    # Justification: fixture for the suppression path.
    "noop": lambda options: None,  # repro: noqa[PICKLE001]
}
