"""PICKLE001 fixture: module-level functions are picklable and clean."""


def _execute_trace(options):
    return {"ok": True}


EXECUTORS = {
    "trace": _execute_trace,
}

#: lower-case locals are not executor registries and stay unflagged.
handlers = {
    "inline": lambda x: x,
}


def submit_function(pool):
    return pool.apply_async(_execute_trace)
