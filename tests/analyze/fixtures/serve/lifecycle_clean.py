"""OBS001/OBS002 fixture: the serve-tier lifecycle vocabulary.

Every cancellation, quota, and chaos name introduced for job
lifecycle resilience is registered — emitting any of them, by
literal or by constant, must produce no findings.
"""
from repro import obs
from repro.obs import names as obs_names
from repro.obs.names import EVT_JOB_CANCELLED, MET_CANCEL_LATENCY_S
from repro.obs.trace import span

_OBS = obs.scope("fixture.lifecycle")


def cancel_event_by_constant(job_id, reason):
    _OBS.warning(EVT_JOB_CANCELLED, job_id=job_id, reason=reason)


def net_fault_by_literal(tenant, fate):
    _OBS.warning("net_fault_injected", tenant=tenant, fate=fate)


def terminal_counters():
    _OBS.counter(obs_names.MET_JOBS_CANCELLED).inc()
    _OBS.counter(obs_names.MET_JOBS_DEADLINE_EXCEEDED).inc()
    _OBS.counter(obs_names.MET_JOBS_QUOTA_EXHAUSTED).inc()
    _OBS.counter(obs_names.MET_NET_FAULTS).inc()


def metering(accesses):
    _OBS.counter(obs_names.MET_ACCESSES_CHARGED).inc(accesses)
    _OBS.histogram(MET_CANCEL_LATENCY_S).observe(0.01)


def watchdog_span(job_id):
    with span(obs_names.SPAN_WATCHDOG, job_id=job_id):
        pass
