"""OBS001 fixture: unregistered and computed names at emit sites."""
from repro import obs

_OBS = obs.scope("fixture.experiments")


def unregistered_event():
    _OBS.info("not.a.registered.event", detail=1)


def unregistered_metric():
    _OBS.counter("bogus_metric").inc()


def computed_name(kind):
    _OBS.debug(f"dynamic.{kind}", detail=2)


def bad_names_attr():
    from repro.obs import names
    _OBS.info(names.EVT_DOES_NOT_EXIST)
