"""OBS001 fixture: registered literals and names.X references pass."""
from repro import obs
from repro.obs import names as obs_names
from repro.obs.names import EVT_EXPERIMENT_START

_OBS = obs.scope("fixture.experiments")
_CHILD = _OBS.child("inner")
tel = _OBS


def registered_literal():
    tel.info("run_complete", coverage=0.5)


def registered_constant():
    _OBS.info(obs_names.EVT_RUN_COMPLETE, coverage=0.5)
    _CHILD.counter(obs_names.MET_PREFETCH_ISSUED).inc()


def imported_constant():
    _OBS.info(EVT_EXPERIMENT_START, name="fixture")
