"""OBS002 fixture: every idiomatic span form the rule must accept."""
from repro.obs import names
from repro.obs.names import SPAN_CELL
from repro.obs.trace import span
from repro.obs.trace import span as trace_span


def literal_name():
    with span("runner.cell"):
        pass


def names_attr():
    with span(names.SPAN_RUN_CELLS, cells=3):
        pass


def imported_constant():
    with span(SPAN_CELL, cell="a"):
        pass


def aliased_callable():
    with trace_span(names.SPAN_SIMULATE, trace="t"):
        pass


def captured_handle():
    with span(names.SPAN_CONNECTION, tenant="t") as handle:
        return handle


def unrelated_span_variable(row):
    # A plain variable called span is not the trace callable.
    length = row.span(3)
    return length
