"""OBS001 fixture: a justified suppression for an ad-hoc event name."""
from repro import obs

_OBS = obs.scope("fixture.experiments")


def tolerated_adhoc():
    # Justification: fixture for the suppression path.
    _OBS.debug("adhoc.fixture.event")  # repro: noqa[OBS001]
