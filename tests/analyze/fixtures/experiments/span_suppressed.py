"""OBS002 fixture: suppressions silence the rule with justification."""
from repro.obs import names
from repro.obs.trace import span


def migration_shim():
    # Transitional name kept until the dashboards migrate.
    with span("legacy.phase.name"):  # repro: noqa[OBS002]
        pass


def handle_for_tests():
    return span(names.SPAN_CELL)  # repro: noqa[OBS002]  (test helper)
