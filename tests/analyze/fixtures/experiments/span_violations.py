"""OBS002 fixture: bare span calls and unregistered span names."""
from repro.obs import names
from repro.obs.trace import span
from repro.obs.trace import span as trace_span


def unregistered_literal():
    with span("not.a.registered.span"):
        pass


def event_name_is_not_a_span_name():
    # Registered as an *event*, but spans draw from SPAN_NAMES.
    with span("cell.finished"):
        pass


def bare_call():
    span(names.SPAN_CELL)


def bare_aliased_call():
    handle = trace_span(names.SPAN_SIMULATE)
    return handle


def computed_name(kind):
    with span(f"runner.{kind}"):
        pass


def bad_names_attr():
    with span(names.SPAN_DOES_NOT_EXIST):
        pass
