"""ERR001 fixture: raises outside the hierarchy and assert control flow."""


def escape_hierarchy(flag):
    if flag:
        raise RuntimeError("outside the ReproError tree")
    raise Exception("even worse")


def assert_control_flow(value):
    assert value > 0
    return value
