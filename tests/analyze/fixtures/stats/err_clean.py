"""ERR001 fixture: hierarchy raises and argument contracts are fine."""


class FixtureError(Exception):
    """Stands in for a ReproError subclass."""


def hierarchy_raise(flag):
    if not flag:
        raise FixtureError("library failure")
    return flag


def argument_contract(n):
    if n < 0:
        raise ValueError("n must be non-negative")
    return n


def abstract_hook():
    raise NotImplementedError
