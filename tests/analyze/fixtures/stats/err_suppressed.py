"""ERR001 fixture: suppressed violations stay silent."""


def suppressed(flag):
    if flag:
        # Justification: fixture for the suppression path.
        raise RuntimeError("tolerated here")  # repro: noqa[ERR001]
    assert flag is not None  # repro: noqa[ERR001]
    return flag
