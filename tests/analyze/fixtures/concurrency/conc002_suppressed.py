"""CONC002 suppression: a sub-millisecond fsync accepted on the loop."""

import os


async def persist(fd):
    # Justification: called once at shutdown, loop is already draining.
    os.fsync(fd)  # repro: noqa[CONC002]
