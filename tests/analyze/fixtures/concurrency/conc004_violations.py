"""CONC004 positives: fork-unsafe state crossing into worker processes."""

import threading

_LOCK = threading.Lock()


def job(payload):
    return payload


class Tracker:
    def __init__(self):
        self._lock = threading.Lock()
        self.count = 0

    def submit(self, pool):
        # Bound method: pickling self drags the lock into the child.
        pool.apply_async(self.bump, (1,))

    def bump(self, step):
        with self._lock:
            self.count += step


def ship_lock(pool):
    # The module lock rides along as an argument.
    pool.apply_async(job, (_LOCK,))


def ship_instance(pool):
    tracker = Tracker()
    pool.apply_async(job, (tracker,))
