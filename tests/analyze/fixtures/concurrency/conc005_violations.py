"""CONC005 positives: contextvar tokens dropped or never reset."""

import contextvars

_REQUEST = contextvars.ContextVar("request")


def enter_discarded(request):
    # The token vanishes: nothing can ever restore the old value.
    _REQUEST.set(request)


def enter_leaky(request):
    # Captured but never reset in this function: same leak, delayed.
    token = _REQUEST.set(request)
    return token
