"""Helper module for the cross-module CONC002 fixture."""

import subprocess


def run_command(args):
    return subprocess.run(args, capture_output=True)
