"""CONC005 suppression: a process-lifetime set() that must not reset."""

import contextvars

_MODE = contextvars.ContextVar("mode", default="off")


def enable(mode):
    # Justification: process-wide configuration set once at startup;
    # there is no previous value worth restoring.
    _MODE.set(mode)  # repro: noqa[CONC005]
