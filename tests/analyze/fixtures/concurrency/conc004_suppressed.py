"""CONC004 suppression: a fork-server pool set up before the lock exists."""

import threading

_LOCK = threading.Lock()


def job(payload):
    return payload


def ship_lock(pool):
    # Justification: this pool uses the spawn start method with an
    # initializer that rebuilds the lock; the parent's lock is a
    # sentinel the child replaces on first use.
    pool.apply_async(job, (_LOCK,))  # repro: noqa[CONC004]
