"""CONC003 negative: two paths, nested and via a call, same lock order."""

import threading

_ALPHA = threading.Lock()
_BETA = threading.Lock()


def finish():
    with _BETA:
        return True


def snapshot():
    with _ALPHA:
        with _BETA:
            return {}


def refresh():
    # Also _ALPHA before _BETA, just through a callee: consistent.
    with _ALPHA:
        return finish()
