"""CONC003 positive: AB/BA lock order, one side hidden behind a call."""

import threading

_ALPHA = threading.Lock()
_BETA = threading.Lock()


def flush():
    # The reverse acquisition happens transitively: refresh() holds
    # _BETA while *calling* flush(), which takes _ALPHA.
    with _ALPHA:
        return True


def snapshot():
    with _ALPHA:
        with _BETA:
            return {}


def refresh():
    with _BETA:
        return flush()
