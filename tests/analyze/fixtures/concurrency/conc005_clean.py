"""CONC005 negatives: both sanctioned token disciplines.

The class form needs cross-method reasoning — the set() in __enter__
is only safe because __exit__ resets the token stored on self.
"""

import contextvars

_REQUEST = contextvars.ContextVar("request")


def with_request(request, fn):
    token = _REQUEST.set(request)
    try:
        return fn()
    finally:
        _REQUEST.reset(token)


class RequestScope:
    def __init__(self, request):
        self._request = request
        self._token = None

    def __enter__(self):
        self._token = _REQUEST.set(self._request)
        return self

    def __exit__(self, *exc):
        _REQUEST.reset(self._token)
        return False
