"""CONC001 suppression: the write is a benign last-writer-wins gauge."""

import threading

_LOCK = threading.Lock()
_GAUGE: dict = {}


def read_gauge():
    with _LOCK:
        return _GAUGE.get("value")


def worker():
    # Single-key overwrite; torn updates are impossible for one key.
    _GAUGE["value"] = 1  # repro: noqa[CONC001]


def main():
    thread = threading.Thread(target=worker)
    thread.start()
    return read_gauge()
