"""CONC001 negatives that need call-graph reasoning, not line patterns.

``_SHARED`` is written from a worker thread *with* the guarding lock;
``_MAIN_ONLY`` is written without any lock but is only ever reachable
from the main thread — proving that takes reachability, not grep.
"""

import threading

_LOCK = threading.Lock()
_SHARED: dict = {}
_MAIN_ONLY: dict = {}


def worker():
    with _LOCK:
        _SHARED["count"] = _SHARED.get("count", 0) + 1


def report():
    # Lockless write, but no spawn edge ever reaches this function.
    _MAIN_ONLY["last"] = "report"
    with _LOCK:
        return dict(_SHARED)


def main():
    thread = threading.Thread(target=worker)
    thread.start()
    return report()
