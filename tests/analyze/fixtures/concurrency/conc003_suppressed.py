"""CONC003 suppression: opposite orders that provably never interleave.

A lock cycle is a multi-site finding (every acquisition edge is part
of it), so the supported suppression is file-level with the
justification next to it.
"""

# Justification: startup() and shutdown() are serialized by the
# process lifecycle; the opposite lock orders can never interleave.
# repro: noqa-file[CONC003]

import threading

_ALPHA = threading.Lock()
_BETA = threading.Lock()


def startup():
    with _ALPHA:
        with _BETA:
            return {}


def shutdown():
    with _BETA:
        with _ALPHA:
            return None
