"""CONC002 negatives: blocking work correctly hopped off the loop.

``settle`` *is* blocking — proving the async callers are fine takes
edge typing (``to_thread`` edges do not propagate blocking-ness), not
a per-file scan for ``sleep``.
"""

import asyncio
import time


def settle():
    time.sleep(0.5)


async def handler():
    await asyncio.to_thread(settle)
    await asyncio.sleep(0.1)


async def pooled(loop, executor):
    await loop.run_in_executor(executor, settle)
