"""CONC004 negatives: plain data and lock-free instances are fine.

Proving ``Plan`` is safe takes cross-class inspection (its __init__
holds no locks/threads/sockets), not a per-file pattern.
"""


class Plan:
    def __init__(self, steps):
        self.steps = list(steps)


def job(payload):
    return payload


def ship_plain(pool):
    pool.apply_async(job, (1, "name", {"k": 2}))


def ship_instance(pool):
    plan = Plan(["a", "b"])
    pool.apply_async(job, (plan,))
