"""CONC001 positives: thread-shared globals written without their lock."""

import threading

_LOCK = threading.Lock()
_CACHE: dict = {}
_TOTALS: dict = {}


def lookup():
    # Reads hold the lock...
    with _LOCK:
        return _CACHE.get("key")


def worker():
    # ...but the worker-thread write does not: flagged against _LOCK.
    _CACHE["key"] = 1
    # No access site of _TOTALS holds any lock at all: flagged too.
    _TOTALS["key"] = _TOTALS.get("key", 0) + 1


def main():
    thread = threading.Thread(target=worker)
    thread.start()
    lookup()
    return _TOTALS.get("key")
