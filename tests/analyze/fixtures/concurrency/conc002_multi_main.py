"""CONC002 cross-module positive: the blocking call lives one file away."""

from conc002_multi_util import run_command


async def deploy():
    return run_command(["true"])
