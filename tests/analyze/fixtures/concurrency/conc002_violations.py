"""CONC002 positives: the event loop stalls, directly and transitively."""

import time


def settle():
    # Sync helper: blocking on its own is fine...
    time.sleep(0.5)


async def handler():
    # ...a direct primitive on the loop thread is not,
    time.sleep(0.1)
    # and neither is reaching one through a sync call chain.
    settle()
