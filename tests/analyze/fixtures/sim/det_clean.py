"""DET001 fixture: the approved deterministic idioms must not flag."""
import random

import numpy as np


def seeded_stdlib(seed: int):
    rng = random.Random(seed)
    return rng.randrange(10)


def seeded_numpy(seed: int):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10)


def sorted_set_iteration():
    seen = {3, 1, 2}
    return [x for x in sorted(seen)]


def membership_only():
    seen = set()
    seen.add(4)
    return 4 in seen
