"""DET001 fixture: a file-level suppression covers the whole module."""
# Justification: fixture for the noqa-file path.
# repro: noqa-file[DET001]
import random


def first():
    return random.random()


def second():
    return random.randrange(3)
