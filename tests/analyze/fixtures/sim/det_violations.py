"""DET001 fixture: every form of nondeterminism the rule must catch."""
import random
import time
import uuid
from datetime import datetime

import numpy as np


def unseeded_random():
    return random.randrange(10)


def global_numpy():
    return np.random.rand(4)


def wall_clock():
    return time.time()


def wall_clock_ns():
    return time.time_ns()


def timestamp():
    return datetime.now()


def fresh_id():
    return uuid.uuid4()


def iterate_set_literal():
    total = 0
    for x in {3, 1, 2}:
        total += x
    return total


def iterate_tracked_set():
    seen = set()
    seen.add(1)
    out = []
    for item in seen:
        out.append(item)
    return out


def comprehension_over_set():
    pending = {5, 6}
    return [x * 2 for x in pending]
