"""DET001 fixture: line-level suppressions silence each finding."""
import random
import time


def suppressed_random():
    # Justification: exercising the suppression path itself.
    return random.randrange(10)  # repro: noqa[DET001]


def suppressed_clock():
    return time.time()  # repro: noqa


def suppressed_set_iteration():
    seen = {1, 2}
    return [x for x in seen]  # repro: noqa[DET001]
