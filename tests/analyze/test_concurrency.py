"""CONC rule behaviour over the concurrency fixtures, plus the timing budget.

Every rule gets three proofs: a true positive, a true negative that
*requires* cross-function (or cross-module) reasoning, and a working
suppression path.
"""

import time
from pathlib import Path

from repro.analyze import Analyzer

FIXTURES = Path(__file__).parent / "fixtures" / "concurrency"
SRC = Path(__file__).resolve().parents[2] / "src"


def findings_for(*names: str):
    return Analyzer().check_paths([FIXTURES / name for name in names])


def codes_for(*names: str) -> list[str]:
    return [f.code for f in findings_for(*names)]


class TestConc001:
    def test_flags_unguarded_and_lockless_writes(self):
        findings = findings_for("conc001_violations.py")
        assert [f.code for f in findings] == ["CONC001"] * 2
        messages = "\n".join(f.message for f in findings)
        assert "_CACHE" in messages and "_LOCK" in messages
        assert "no lock held at any access site" in messages
        # The message points at a witness site that does hold the lock.
        assert "conc001_violations.py:13" in messages

    def test_cross_function_negatives(self):
        # Guarded writes and main-thread-only globals both need the
        # call graph to prove clean; a per-file pattern cannot.
        assert codes_for("conc001_clean.py") == []

    def test_suppressed(self):
        assert codes_for("conc001_suppressed.py") == []


class TestConc002:
    def test_flags_direct_and_transitive_blocking(self):
        findings = findings_for("conc002_violations.py")
        assert [f.code for f in findings] == ["CONC002"] * 2
        messages = "\n".join(f.message for f in findings)
        assert "time.sleep" in messages
        # The transitive finding names its witness chain.
        assert "settle -> time.sleep" in messages

    def test_to_thread_hop_is_clean(self):
        # settle() *is* blocking; the hop is what makes this clean.
        assert codes_for("conc002_clean.py") == []

    def test_cross_module_chain(self):
        findings = findings_for("conc002_multi_main.py",
                                "conc002_multi_util.py")
        assert [f.code for f in findings] == ["CONC002"]
        assert "subprocess.run" in findings[0].message
        assert findings[0].path.endswith("conc002_multi_main.py")

    def test_unresolved_callee_stays_silent(self):
        # Analyzed alone, the import cannot resolve: conservative, no
        # finding rather than a guess.
        assert codes_for("conc002_multi_main.py") == []

    def test_suppressed(self):
        assert codes_for("conc002_suppressed.py") == []


class TestConc003:
    def test_flags_cycle_with_transitive_edge(self):
        findings = findings_for("conc003_violations.py")
        assert [f.code for f in findings] == ["CONC003"]
        message = findings[0].message
        assert "_ALPHA" in message and "_BETA" in message
        # Both witness sites are named, including the one that only
        # exists through the flush() call.
        assert "conc003_violations.py:18" in message
        assert "conc003_violations.py:24" in message

    def test_consistent_order_through_calls_is_clean(self):
        assert codes_for("conc003_clean.py") == []

    def test_file_suppression(self):
        assert codes_for("conc003_suppressed.py") == []


class TestConc004:
    def test_flags_bound_method_lock_arg_and_instance(self):
        findings = findings_for("conc004_violations.py")
        assert [f.code for f in findings] == ["CONC004"] * 3
        messages = "\n".join(f.message for f in findings)
        assert "bound method" in messages
        assert "fork-unsafe value (threading.Lock)" in messages
        assert "instance of" in messages and "Tracker" in messages

    def test_plain_payloads_and_safe_classes_are_clean(self):
        assert codes_for("conc004_clean.py") == []

    def test_suppressed(self):
        assert codes_for("conc004_suppressed.py") == []


class TestConc005:
    def test_flags_discarded_and_unreset_tokens(self):
        findings = findings_for("conc005_violations.py")
        assert [f.code for f in findings] == ["CONC005"] * 2
        messages = "\n".join(f.message for f in findings)
        assert "discards its token" in messages
        assert "never reset()" in messages

    def test_try_finally_and_enter_exit_pairs_are_clean(self):
        # The __enter__/__exit__ pair is cross-method reasoning.
        assert codes_for("conc005_clean.py") == []

    def test_suppressed(self):
        assert codes_for("conc005_suppressed.py") == []


class TestTimingBudget:
    def test_full_tree_analysis_stays_fast(self):
        # CI gate: the two-phase run over all of src must stay well
        # under 30s or the analyzer becomes a bottleneck (satellite).
        start = time.monotonic()
        Analyzer().check_paths([SRC])
        elapsed = time.monotonic() - start
        assert elapsed < 30.0, f"analyze took {elapsed:.1f}s (budget 30s)"
