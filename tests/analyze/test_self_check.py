"""The repo's own source tree must be clean under its own analyzer.

This is the acceptance gate CI enforces (`python -m repro.analyze src`);
running it from the suite means a violation fails fast in local test
runs too, with the offending findings in the assertion message.
"""

from pathlib import Path

from repro.analyze import Analyzer, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    src = REPO_ROOT / "src"
    assert src.is_dir(), f"missing {src}"
    findings = Analyzer().check_paths([src])
    assert findings == [], "\n" + render_text(findings)
