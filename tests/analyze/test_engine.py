"""Engine mechanics: suppressions, scoping, selection, output, exit codes."""

import dataclasses
import json
import os
import subprocess
from pathlib import Path

import pytest

from repro.analyze import Analyzer, all_rules, main, render_json, render_text
from repro.analyze.engine import _parse_noqa, _scope_key
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden" / "concurrency_report.txt"


class TestNoqaParsing:
    def test_line_noqa_with_code(self):
        line, file = _parse_noqa("x = 1  # repro: noqa[DET001]\n")
        assert line == {1: {"DET001"}}
        assert file == set()

    def test_bare_noqa_suppresses_all(self):
        line, _ = _parse_noqa("x = 1  # repro: noqa\n")
        assert line == {1: {"*"}}

    def test_multiple_codes(self):
        line, _ = _parse_noqa("x = 1  # repro: noqa[DET001, ERR001]\n")
        assert line == {1: {"DET001", "ERR001"}}

    def test_file_noqa(self):
        _, file = _parse_noqa("# repro: noqa-file[OBS001]\nx = 1\n")
        assert file == {"OBS001"}

    def test_plain_ruff_noqa_is_ignored(self):
        line, file = _parse_noqa("import os  # noqa: F401\n")
        assert line == {} and file == set()


class TestScopeKey:
    def test_package_path(self):
        assert _scope_key(Path("src/repro/runner/store.py")) == "runner/store.py"

    def test_fixture_path(self):
        key = _scope_key(Path("tests/analyze/fixtures/sim/det_clean.py"))
        assert key == "sim/det_clean.py"

    def test_unanchored_path_passes_through(self):
        assert _scope_key(Path("scripts/tool.py")) == "scripts/tool.py"


class TestAnalyzer:
    def test_syntax_error_yields_parse_finding(self):
        findings = Analyzer().check_source("def broken(:\n", "bad.py")
        assert len(findings) == 1
        assert findings[0].code == "PARSE000"
        assert findings[0].severity == "error"

    def test_clean_source_yields_nothing(self):
        assert Analyzer().check_source("x = 1\n", "src/repro/sim/ok.py") == []

    def test_findings_sorted_by_location(self):
        findings = Analyzer().check_paths([FIXTURES / "sim" / "det_violations.py"])
        keys = [(f.path, f.line, f.col) for f in findings]
        assert keys == sorted(keys)

    def test_rule_subset_via_constructor(self):
        registry = all_rules()
        analyzer = Analyzer([registry["ERR001"]])
        findings = analyzer.check_paths([FIXTURES / "sim" / "det_violations.py"])
        assert findings == []  # DET001 not selected

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            Analyzer().check_paths([FIXTURES / "does_not_exist.py"])

    def test_iter_files_skips_pycache_and_hidden(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x=1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "junk.py").write_text("x=1\n")
        (tmp_path / "keep.py").write_text("x=1\n")
        files = list(Analyzer.iter_files([tmp_path]))
        assert files == [tmp_path / "keep.py"]


class TestRendering:
    def test_text_clean(self):
        assert render_text([]) == "no findings"

    def test_text_summary_line(self):
        findings = Analyzer().check_paths([FIXTURES / "stats" / "err_violations.py"])
        text = render_text(findings)
        assert "finding(s)" in text and "error(s)" in text

    def test_json_round_trips(self):
        findings = Analyzer().check_paths([FIXTURES / "stats" / "err_violations.py"])
        decoded = json.loads(render_json(findings))
        assert decoded and decoded[0]["code"] == "ERR001"
        assert set(decoded[0]) == {"path", "line", "col", "code",
                                   "severity", "message"}


class TestMain:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(FIXTURES / "sim" / "det_clean.py")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "sim" / "det_violations.py")]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_unknown_path_exits_two(self, capsys):
        assert main([str(FIXTURES / "nope.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, capsys):
        assert main(["--select", "NOPE999", str(FIXTURES)]) == 2

    def test_select_limits_rules(self, capsys):
        rc = main(["--select", "ERR001",
                   str(FIXTURES / "sim" / "det_violations.py")])
        assert rc == 0

    def test_ignore_drops_rules(self, capsys):
        rc = main(["--ignore", "DET001",
                   str(FIXTURES / "sim" / "det_violations.py")])
        assert rc == 0

    def test_json_format(self, capsys):
        assert main(["--format", "json",
                     str(FIXTURES / "stats" / "err_violations.py")]) == 1
        decoded = json.loads(capsys.readouterr().out)
        assert all(f["code"] == "ERR001" for f in decoded)

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "PICKLE001", "ERR001", "OBS001", "IO001"):
            assert code in out


class TestExitCodeContract:
    def test_zero_python_files_exits_two(self, tmp_path, capsys):
        # A run that analyzed nothing must not masquerade as clean
        # (satellite: exit-code contract regression test).
        (tmp_path / "README.md").write_text("not python\n")
        assert main([str(tmp_path)]) == 2
        err = capsys.readouterr().err
        assert "no Python files found" in err

    def test_empty_directory_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "no Python files found" in capsys.readouterr().err


class TestDeterminism:
    CONCURRENCY = FIXTURES / "concurrency"
    VIOLATIONS = ["conc001_violations.py", "conc002_violations.py",
                  "conc002_multi_main.py", "conc002_multi_util.py",
                  "conc003_violations.py", "conc004_violations.py",
                  "conc005_violations.py"]

    def _relativized_report(self, names: list[str]) -> str:
        findings = Analyzer().check_paths(
            [self.CONCURRENCY / name for name in names])
        prefix = str(self.CONCURRENCY) + "/"
        rel = [dataclasses.replace(f, path=f.path.replace(prefix, ""),
                                   message=f.message.replace(prefix, ""))
               for f in findings]
        return render_text(rel) + "\n"

    def test_report_matches_golden_byte_for_byte(self):
        assert self._relativized_report(self.VIOLATIONS) == GOLDEN.read_text()

    def test_input_order_does_not_change_output(self):
        forward = self._relativized_report(self.VIOLATIONS)
        backward = self._relativized_report(list(reversed(self.VIOLATIONS)))
        assert forward == backward

    def test_rules_execute_in_code_order(self):
        analyzer = Analyzer()
        codes = [type(r).code for r in analyzer.rules]
        assert codes == sorted(codes)


class TestBaseline:
    VIOLATION = FIXTURES / "concurrency" / "conc005_violations.py"

    def test_write_baseline_then_clean_run(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(self.VIOLATION), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        capsys.readouterr()
        # With the baseline applied the same tree now exits 0, and the
        # grandfathered findings stay visible in the footer.
        assert main([str(self.VIOLATION), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out
        assert "2 pre-existing finding(s) suppressed" in out

    def test_new_finding_still_fails(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main([str(self.VIOLATION), "--baseline", str(baseline),
              "--write-baseline"])
        capsys.readouterr()
        extra = tmp_path / "fixtures" / "concurrency"
        extra.mkdir(parents=True)
        copy = extra / "conc005_violations.py"
        copy.write_text(self.VIOLATION.read_text())
        # Same fingerprints, but twice the count: the surplus is new.
        rc = main([str(self.VIOLATION), str(copy),
                   "--baseline", str(baseline)])
        assert rc == 1
        assert "CONC005" in capsys.readouterr().out

    def test_write_baseline_requires_path(self, capsys):
        assert main([str(self.VIOLATION), "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text("[]")
        assert main([str(self.VIOLATION), "--baseline", str(baseline)]) == 2
        assert "baseline" in capsys.readouterr().err

    def test_fingerprints_are_line_independent(self):
        from repro.analyze.baseline import fingerprint
        from repro.analyze.engine import Finding
        a = Finding("tests/analyze/fixtures/concurrency/x.py", 3, 1,
                    "CONC001", "error", "message")
        b = Finding("elsewhere/fixtures/concurrency/x.py", 99, 7,
                    "CONC001", "error", "message")
        assert fingerprint(a) == fingerprint(b)


class TestSarif:
    def _log(self, *paths):
        from repro.analyze.sarif import sarif_log
        findings = Analyzer().check_paths(list(paths))
        return sarif_log(findings), findings

    def test_structure_validates_against_2_1_shape(self):
        log, findings = self._log(
            FIXTURES / "concurrency" / "conc002_violations.py")
        assert log["version"] == "2.1.0"
        assert "sarif-schema-2.1.0.json" in log["$schema"]
        (run,) = log["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-analyze"
        rule_ids = [r["id"] for r in driver["rules"]]
        assert rule_ids == sorted(rule_ids)
        assert {"CONC001", "CONC002", "CONC003", "CONC004",
                "CONC005"} <= set(rule_ids)
        for rule in driver["rules"]:
            assert rule["shortDescription"]["text"]
            assert rule["defaultConfiguration"]["level"] in (
                "error", "warning")
        assert len(run["results"]) == len(findings) == 2
        for result in run["results"]:
            assert result["ruleId"] == "CONC002"
            assert result["level"] == "error"
            assert result["message"]["text"]
            assert rule_ids[result["ruleIndex"]] == result["ruleId"]
            (loc,) = result["locations"]
            region = loc["physicalLocation"]["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1
            uri = loc["physicalLocation"]["artifactLocation"]["uri"]
            assert uri.endswith("conc002_violations.py")

    def test_baselined_findings_carry_suppressions(self):
        from repro.analyze.sarif import sarif_log
        findings = Analyzer().check_paths(
            [FIXTURES / "concurrency" / "conc005_violations.py"])
        log = sarif_log([], baselined=findings)
        results = log["runs"][0]["results"]
        assert len(results) == 2
        for result in results:
            assert result["suppressions"] == [
                {"kind": "external", "justification": "analyzer baseline"}]

    def test_cli_emits_parseable_sarif(self, capsys):
        rc = main(["--format", "sarif",
                   str(FIXTURES / "concurrency" / "conc005_violations.py")])
        assert rc == 1
        log = json.loads(capsys.readouterr().out)
        assert log["version"] == "2.1.0"


class TestChanged:
    @pytest.fixture()
    def git_tree(self, tmp_path, monkeypatch):
        def git(*args):
            subprocess.run(["git", *args], cwd=tmp_path, check=True,
                           capture_output=True,
                           env={**os.environ,
                                "GIT_AUTHOR_NAME": "t",
                                "GIT_AUTHOR_EMAIL": "t@t",
                                "GIT_COMMITTER_NAME": "t",
                                "GIT_COMMITTER_EMAIL": "t@t",
                                "HOME": str(tmp_path)})
        pkg = tmp_path / "fixtures" / "concurrency"
        pkg.mkdir(parents=True)
        violation = FIXTURES / "concurrency" / "conc005_violations.py"
        (pkg / "stale.py").write_text(violation.read_text())
        (pkg / "fresh.py").write_text("x = 1\n")
        git("init", "-q")
        git("add", "-A")
        git("commit", "-qm", "seed")
        monkeypatch.chdir(tmp_path)
        return pkg

    def test_only_changed_files_reported(self, git_tree, capsys):
        # Make fresh.py newly-violating; stale.py keeps its committed
        # violations but is unchanged, so it must not be reported.
        (git_tree / "fresh.py").write_text(
            "import contextvars\n"
            "_V = contextvars.ContextVar('v')\n"
            "def f(x):\n    _V.set(x)\n")
        rc = main(["--changed", str(git_tree)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "stale.py" not in out

    def test_no_changes_is_clean_exit_zero(self, git_tree, capsys):
        assert main(["--changed", str(git_tree)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_untracked_files_count_as_changed(self, git_tree, capsys):
        (git_tree / "brand_new.py").write_text(
            "import contextvars\n"
            "_V = contextvars.ContextVar('v')\n"
            "def f(x):\n    _V.set(x)\n")
        assert main(["--changed", str(git_tree)]) == 1
        assert "brand_new.py" in capsys.readouterr().out

    def test_changed_conflicts_with_write_baseline(self, tmp_path, capsys):
        assert main(["--changed", "--write-baseline",
                     "--baseline", str(tmp_path / "b.json"), "."]) == 2


class TestCliSubcommand:
    def test_domino_repro_analyze_forwards(self, capsys):
        from repro.cli import main as cli_main
        rc = cli_main(["analyze", str(FIXTURES / "sim" / "det_clean.py")])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out

    def test_domino_repro_analyze_forwards_baseline_flags(
            self, tmp_path, capsys):
        from repro.cli import main as cli_main
        baseline = tmp_path / "baseline.json"
        violation = FIXTURES / "concurrency" / "conc005_violations.py"
        rc = cli_main(["analyze", str(violation),
                       "--baseline", str(baseline), "--write-baseline"])
        assert rc == 0
        capsys.readouterr()
        rc = cli_main(["analyze", str(violation),
                       "--baseline", str(baseline)])
        assert rc == 0
        assert "suppressed" in capsys.readouterr().out

    def test_domino_repro_analyze_forwards_sarif(self, capsys):
        from repro.cli import main as cli_main
        violation = FIXTURES / "concurrency" / "conc005_violations.py"
        rc = cli_main(["analyze", "--format", "sarif", str(violation)])
        assert rc == 1
        assert json.loads(capsys.readouterr().out)["version"] == "2.1.0"
