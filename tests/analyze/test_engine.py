"""Engine mechanics: suppressions, scoping, selection, output, exit codes."""

import json
from pathlib import Path

import pytest

from repro.analyze import Analyzer, all_rules, main, render_json, render_text
from repro.analyze.engine import _parse_noqa, _scope_key
from repro.errors import AnalysisError

FIXTURES = Path(__file__).parent / "fixtures"


class TestNoqaParsing:
    def test_line_noqa_with_code(self):
        line, file = _parse_noqa("x = 1  # repro: noqa[DET001]\n")
        assert line == {1: {"DET001"}}
        assert file == set()

    def test_bare_noqa_suppresses_all(self):
        line, _ = _parse_noqa("x = 1  # repro: noqa\n")
        assert line == {1: {"*"}}

    def test_multiple_codes(self):
        line, _ = _parse_noqa("x = 1  # repro: noqa[DET001, ERR001]\n")
        assert line == {1: {"DET001", "ERR001"}}

    def test_file_noqa(self):
        _, file = _parse_noqa("# repro: noqa-file[OBS001]\nx = 1\n")
        assert file == {"OBS001"}

    def test_plain_ruff_noqa_is_ignored(self):
        line, file = _parse_noqa("import os  # noqa: F401\n")
        assert line == {} and file == set()


class TestScopeKey:
    def test_package_path(self):
        assert _scope_key(Path("src/repro/runner/store.py")) == "runner/store.py"

    def test_fixture_path(self):
        key = _scope_key(Path("tests/analyze/fixtures/sim/det_clean.py"))
        assert key == "sim/det_clean.py"

    def test_unanchored_path_passes_through(self):
        assert _scope_key(Path("scripts/tool.py")) == "scripts/tool.py"


class TestAnalyzer:
    def test_syntax_error_yields_parse_finding(self):
        findings = Analyzer().check_source("def broken(:\n", "bad.py")
        assert len(findings) == 1
        assert findings[0].code == "PARSE000"
        assert findings[0].severity == "error"

    def test_clean_source_yields_nothing(self):
        assert Analyzer().check_source("x = 1\n", "src/repro/sim/ok.py") == []

    def test_findings_sorted_by_location(self):
        findings = Analyzer().check_paths([FIXTURES / "sim" / "det_violations.py"])
        keys = [(f.path, f.line, f.col) for f in findings]
        assert keys == sorted(keys)

    def test_rule_subset_via_constructor(self):
        registry = all_rules()
        analyzer = Analyzer([registry["ERR001"]])
        findings = analyzer.check_paths([FIXTURES / "sim" / "det_violations.py"])
        assert findings == []  # DET001 not selected

    def test_missing_path_raises(self):
        with pytest.raises(AnalysisError):
            Analyzer().check_paths([FIXTURES / "does_not_exist.py"])

    def test_iter_files_skips_pycache_and_hidden(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "junk.py").write_text("x=1\n")
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "junk.py").write_text("x=1\n")
        (tmp_path / "keep.py").write_text("x=1\n")
        files = list(Analyzer.iter_files([tmp_path]))
        assert files == [tmp_path / "keep.py"]


class TestRendering:
    def test_text_clean(self):
        assert render_text([]) == "no findings"

    def test_text_summary_line(self):
        findings = Analyzer().check_paths([FIXTURES / "stats" / "err_violations.py"])
        text = render_text(findings)
        assert "finding(s)" in text and "error(s)" in text

    def test_json_round_trips(self):
        findings = Analyzer().check_paths([FIXTURES / "stats" / "err_violations.py"])
        decoded = json.loads(render_json(findings))
        assert decoded and decoded[0]["code"] == "ERR001"
        assert set(decoded[0]) == {"path", "line", "col", "code",
                                   "severity", "message"}


class TestMain:
    def test_clean_tree_exits_zero(self, capsys):
        assert main([str(FIXTURES / "sim" / "det_clean.py")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main([str(FIXTURES / "sim" / "det_violations.py")]) == 1
        assert "DET001" in capsys.readouterr().out

    def test_unknown_path_exits_two(self, capsys):
        assert main([str(FIXTURES / "nope.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, capsys):
        assert main(["--select", "NOPE999", str(FIXTURES)]) == 2

    def test_select_limits_rules(self, capsys):
        rc = main(["--select", "ERR001",
                   str(FIXTURES / "sim" / "det_violations.py")])
        assert rc == 0

    def test_ignore_drops_rules(self, capsys):
        rc = main(["--ignore", "DET001",
                   str(FIXTURES / "sim" / "det_violations.py")])
        assert rc == 0

    def test_json_format(self, capsys):
        assert main(["--format", "json",
                     str(FIXTURES / "stats" / "err_violations.py")]) == 1
        decoded = json.loads(capsys.readouterr().out)
        assert all(f["code"] == "ERR001" for f in decoded)

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("DET001", "PICKLE001", "ERR001", "OBS001", "IO001"):
            assert code in out


class TestCliSubcommand:
    def test_domino_repro_analyze_forwards(self, capsys):
        from repro.cli import main as cli_main
        rc = cli_main(["analyze", str(FIXTURES / "sim" / "det_clean.py")])
        assert rc == 0
        assert "no findings" in capsys.readouterr().out
