"""Per-rule behaviour over the fixture tree: positive, suppressed, clean."""

from pathlib import Path

from repro.analyze import Analyzer, all_rules

FIXTURES = Path(__file__).parent / "fixtures"


def codes_for(relpath: str) -> list[str]:
    return [f.code for f in Analyzer().check_paths([FIXTURES / relpath])]


class TestDet001:
    def test_flags_every_nondeterminism_form(self):
        findings = Analyzer().check_paths([FIXTURES / "sim" / "det_violations.py"])
        assert {f.code for f in findings} == {"DET001"}
        messages = "\n".join(f.message for f in findings)
        assert "random.randrange" in messages
        assert "numpy" in messages
        assert "wall clock" in messages
        assert "uuid.uuid4" in messages
        assert "sorted(" in messages
        # 6 calls + 3 set iterations
        assert len(findings) == 9

    def test_line_suppressions(self):
        assert codes_for("sim/det_suppressed.py") == []

    def test_file_suppression(self):
        assert codes_for("sim/det_file_suppressed.py") == []

    def test_clean_idioms(self):
        assert codes_for("sim/det_clean.py") == []

    def test_out_of_scope_directory(self):
        # The same source outside sim/core/prefetchers/memory/workloads
        # is not DET001's business.
        src = (FIXTURES / "sim" / "det_violations.py").read_text()
        findings = Analyzer().check_source(src, "src/repro/stats/whatever.py")
        assert all(f.code != "DET001" for f in findings)


class TestPickle001:
    def test_flags_lambda_registries_and_submissions(self):
        findings = Analyzer().check_paths(
            [FIXTURES / "runner" / "pickle_violations.py"])
        assert [f.code for f in findings] == ["PICKLE001"] * 4

    def test_suppressed(self):
        assert codes_for("runner/pickle_suppressed.py") == []

    def test_clean(self):
        assert codes_for("runner/pickle_clean.py") == []


class TestErr001:
    def test_flags_raises_and_asserts(self):
        findings = Analyzer().check_paths(
            [FIXTURES / "stats" / "err_violations.py"])
        assert [f.code for f in findings] == ["ERR001"] * 3

    def test_suppressed(self):
        assert codes_for("stats/err_suppressed.py") == []

    def test_clean(self):
        assert codes_for("stats/err_clean.py") == []

    def test_test_files_exempt(self):
        src = "def test_x():\n    assert 1 == 1\n"
        findings = Analyzer().check_source(src, "tests/stats/test_x.py")
        assert findings == []


class TestObs001:
    def test_flags_unregistered_and_computed_names(self):
        findings = Analyzer().check_paths(
            [FIXTURES / "experiments" / "obs_violations.py"])
        assert [f.code for f in findings] == ["OBS001"] * 4
        messages = "\n".join(f.message for f in findings)
        assert "not registered" in messages
        assert "not a string constant" in messages  # the f-string
        assert "EVT_DOES_NOT_EXIST" in messages

    def test_suppressed(self):
        assert codes_for("experiments/obs_suppressed.py") == []

    def test_clean(self):
        assert codes_for("experiments/obs_clean.py") == []

    def test_obs_package_itself_exempt(self):
        src = ('from repro import obs\n_OBS = obs.scope("x")\n'
               'def f():\n    _OBS.info("anything.goes")\n')
        findings = Analyzer().check_source(src, "src/repro/obs/runtime.py")
        assert findings == []


class TestObs002:
    def test_flags_bare_calls_and_unregistered_names(self):
        findings = Analyzer().check_paths(
            [FIXTURES / "experiments" / "span_violations.py"])
        assert [f.code for f in findings] == ["OBS002"] * 6
        messages = "\n".join(f.message for f in findings)
        assert "not registered" in messages
        assert "bare span() call" in messages
        assert "not a string constant" in messages  # the f-string
        assert "SPAN_DOES_NOT_EXIST" in messages
        # An event name is not a span name.
        assert "'cell.finished' is not registered" in messages

    def test_suppressed(self):
        assert codes_for("experiments/span_suppressed.py") == []

    def test_clean(self):
        assert codes_for("experiments/span_clean.py") == []

    def test_obs_package_itself_exempt(self):
        src = ("from repro.obs.trace import span\n"
               "def f(name):\n    return span(name)\n")
        findings = Analyzer().check_source(src, "src/repro/obs/summary.py")
        assert findings == []

    def test_lifecycle_vocabulary_is_registered(self):
        # The serve-tier lifecycle names (cancel events, terminal
        # counters, watchdog span) all resolve against the registry.
        assert codes_for("serve/lifecycle_clean.py") == []

    def test_attribute_form_resolves_module_aliases(self):
        src = ("from repro import obs\n"
               "def f():\n    obs.span('bogus.span')\n")
        findings = Analyzer().check_source(src, "src/repro/serve/whatever.py")
        assert [f.code for f in findings] == ["OBS002"] * 2  # bare + name

    def test_files_without_span_imports_skip_cheaply(self):
        src = "def span(x):\n    return x\ndef f():\n    return span(1)\n"
        findings = Analyzer().check_source(src, "src/repro/sim/whatever.py")
        assert all(f.code != "OBS002" for f in findings)


class TestIo001:
    def test_flags_fsyncless_write_only(self):
        findings = Analyzer().check_paths([FIXTURES / "runner" / "store.py"])
        assert [f.code for f in findings] == ["IO001"]
        assert "put_without_fsync" in findings[0].message

    def test_scope_is_persistence_modules_only(self):
        src = "def f(fh):\n    fh.write('x')\n"
        findings = Analyzer().check_source(src, "src/repro/runner/cells.py")
        assert findings == []


class TestRegistry:
    def test_expected_rule_set(self):
        assert set(all_rules()) == {"DET001", "PICKLE001", "ERR001",
                                    "OBS001", "OBS002", "IO001",
                                    "CONC001", "CONC002", "CONC003",
                                    "CONC004", "CONC005"}

    def test_rules_carry_metadata(self):
        for cls in all_rules().values():
            assert cls.title and cls.rationale
            assert cls.severity in ("warning", "error")
