"""System configuration (Table I) tests."""

import pytest

from repro.config import (BLOCK_SIZE, CacheConfig, SystemConfig,
                          small_test_config, timing_config)
from repro.errors import ConfigError


class TestTable1Defaults:
    def test_paper_values(self):
        config = SystemConfig()
        assert config.n_cores == 4
        assert config.clock_ghz == 4.0
        assert config.l1d.size_bytes == 64 * 1024
        assert config.l1d.ways == 2
        assert config.llc.size_bytes == 4 * 1024 * 1024
        assert config.llc.ways == 16
        assert config.memory_latency_ns == 45.0
        assert config.peak_bandwidth_gbps == 37.5
        assert config.prefetch_buffer_blocks == 32
        assert config.prefetch_degree == 4
        assert config.active_streams == 4
        assert config.sampling_probability == 0.125
        assert config.ht_entries == 16 * 1024 * 1024
        assert config.eit_rows == 2 * 1024 * 1024
        assert config.eit_entries_per_super == 3

    def test_derived_latencies(self):
        config = SystemConfig()
        assert config.memory_latency_cycles == 180  # 45 ns at 4 GHz
        assert config.llc_latency_cycles == 18
        assert config.bytes_per_cycle == pytest.approx(9.375)
        assert config.cycles_per_block_transfer == pytest.approx(BLOCK_SIZE / 9.375)

    def test_ht_deployed_size_is_85mb_equivalent(self):
        # 16M entries at ~5 B/entry is the paper's "85 MB"; we check the
        # row structure instead: 12 entries per 64 B row.
        config = SystemConfig()
        assert config.ht_row_entries == 12


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"n_cores": 0},
        {"sampling_probability": 1.5},
        {"prefetch_degree": 0},
        {"active_streams": 0},
        {"ht_entries": 0},
        {"eit_rows": -1},
        {"memory_latency_ns": 0},
        {"ht_row_entries": 0},
    ])
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            SystemConfig(**kwargs)

    def test_scaled_copy(self):
        config = SystemConfig().scaled(prefetch_degree=1)
        assert config.prefetch_degree == 1
        assert SystemConfig().prefetch_degree == 4


class TestDerivedConfigs:
    def test_small_test_config_is_smaller(self):
        small = small_test_config()
        assert small.l1d.size_bytes < SystemConfig().l1d.size_bytes
        assert small.ht_entries < SystemConfig().ht_entries

    def test_small_test_config_overrides(self):
        small = small_test_config(prefetch_degree=2)
        assert small.prefetch_degree == 2

    def test_timing_config_scales_llc_only(self):
        timing = timing_config()
        assert timing.llc.size_bytes == 256 * 1024
        assert timing.l1d.size_bytes == SystemConfig().l1d.size_bytes
        assert timing.memory_latency_cycles == 180

    def test_cache_config_geometry(self):
        cache = CacheConfig(64 * 1024, 2)
        assert cache.n_sets == 512
        assert cache.n_blocks == 1024
