"""Zero-denominator guards: every ratio metric reports 0.0, never raises."""

import pytest

from repro.sequitur.analysis import SequiturAnalysis
from repro.stats import (BandwidthBreakdown, CoverageMetrics,
                         StreamLengthStats, safe_div)


class TestSafeDiv:
    def test_normal_division(self):
        assert safe_div(3, 4) == 0.75

    def test_zero_denominator_returns_zero(self):
        assert safe_div(5, 0) == 0.0
        assert safe_div(0, 0) == 0.0
        assert safe_div(5, 0.0) == 0.0

    def test_zero_numerator(self):
        assert safe_div(0, 7) == 0.0

    def test_negative_values_pass_through(self):
        assert safe_div(-1, 2) == -0.5


class TestEmptyRunMetrics:
    def test_coverage_metrics_all_ratios_zero(self):
        empty = CoverageMetrics()
        assert empty.coverage == 0.0
        assert empty.overprediction_ratio == 0.0
        assert empty.accuracy == 0.0
        assert empty.miss_rate_reduction == 0.0

    def test_accuracy_guard_independent_of_coverage_guard(self):
        # Hits recorded but nothing issued (degenerate merge artifact):
        # accuracy's denominator is prefetches_issued, not triggering events.
        metrics = CoverageMetrics(misses=10, prefetch_hits=5,
                                  prefetches_issued=0)
        assert metrics.coverage == pytest.approx(1 / 3)
        assert metrics.accuracy == 0.0

    def test_bandwidth_with_zero_baseline(self):
        breakdown = BandwidthBreakdown(
            baseline_blocks=0, incorrect_prefetch_blocks=4,
            metadata_read_blocks=2, metadata_write_blocks=1)
        assert breakdown.incorrect_prefetch_overhead == 0.0
        assert breakdown.total_overhead == 0.0

    def test_stream_stats_empty(self):
        stats = StreamLengthStats()
        assert stats.mean_length == 0.0
        assert stats.mean_length_all == 0.0

    def test_stream_stats_no_productive_streams(self):
        stats = StreamLengthStats()
        stats.add(0)   # allocated but never produced a correct prefetch
        assert stats.mean_length == 0.0
        assert stats.mean_length_all == 0.0

    def test_sequitur_analysis_empty(self):
        analysis = SequiturAnalysis(total_misses=0, covered_misses=0,
                                    grammar_size=0)
        assert analysis.opportunity == 0.0
        assert analysis.compression_ratio == 0.0
        assert analysis.mean_stream_length == 0.0
