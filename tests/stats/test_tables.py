"""ASCII table formatting."""

import pytest

from repro.stats.tables import format_percent, format_table


def test_format_percent():
    assert format_percent(0.163) == "16.3%"
    assert format_percent(0.5, digits=0) == "50%"


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1], ["longer", 2]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4  # header, rule, two rows


def test_format_table_title_and_floats():
    text = format_table(["x"], [[0.123456]], title="T")
    assert text.splitlines()[0] == "T"
    assert "0.123" in text


def test_row_width_mismatch_rejected():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only one"]])
