"""Fig. 15 bandwidth decomposition."""

import pytest

from repro.memory.metadata import MetadataTraffic
from repro.stats.bandwidth import BandwidthBreakdown


def test_from_run_decomposition():
    metadata = MetadataTraffic(index_reads=30, index_writes=10,
                               history_reads=20, history_writes=5)
    breakdown = BandwidthBreakdown.from_run(baseline_misses=100,
                                            overpredictions=40,
                                            metadata=metadata)
    assert breakdown.incorrect_prefetch_overhead == pytest.approx(0.4)
    assert breakdown.metadata_read_overhead == pytest.approx(0.5)
    assert breakdown.metadata_write_overhead == pytest.approx(0.15)
    assert breakdown.total_overhead == pytest.approx(1.05)


def test_zero_baseline_is_safe():
    breakdown = BandwidthBreakdown(0, 5, 5, 5)
    assert breakdown.total_overhead == 0.0
