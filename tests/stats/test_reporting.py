"""Markdown/CSV exporters and ASCII bar charts."""

import csv
import io

import pytest

from repro.stats.reporting import bar_chart, to_csv, to_markdown


class TestMarkdown:
    def test_structure(self):
        text = to_markdown(["a", "b"], [["x", 1.23456]], title="T")
        lines = text.splitlines()
        assert lines[0] == "### T"
        assert lines[2] == "| a | b |"
        assert lines[3] == "|---|---|"
        assert "1.235" in lines[4]

    def test_pipe_escaping(self):
        text = to_markdown(["a"], [["x|y"]])
        assert "x\\|y" in text

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            to_markdown(["a", "b"], [["only"]])


class TestCsv:
    def test_roundtrip(self):
        text = to_csv(["name", "value"], [["a", 1], ["b, with comma", 2]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["name", "value"]
        assert rows[2] == ["b, with comma", "2"]

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            to_csv(["a", "b"], [["only"]])


class TestBarChart:
    def test_peak_bar_is_full_width(self):
        text = bar_chart(["x", "y"], [1.0, 0.5], width=10)
        lines = text.splitlines()
        assert "█" * 10 in lines[0]
        assert "█" * 5 in lines[1]
        assert "█" * 6 not in lines[1]

    def test_title_first(self):
        text = bar_chart(["x"], [1.0], title="Coverage")
        assert text.splitlines()[0] == "Coverage"

    def test_empty_input(self):
        assert bar_chart([], [], title="t") == "t"

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1.0])

    def test_zero_values_ok(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.000" in text
