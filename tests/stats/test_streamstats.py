"""Stream length statistics and Fig. 12 binning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.streamstats import StreamLengthStats, histogram_bins, length_cdf


class TestStreamLengthStats:
    def test_mean_over_productive_streams(self):
        stats = StreamLengthStats([0, 0, 4, 6])
        assert stats.mean_length == pytest.approx(5.0)
        assert stats.mean_length_all == pytest.approx(2.5)

    def test_empty(self):
        stats = StreamLengthStats()
        assert stats.mean_length == 0.0
        assert stats.count == 0

    def test_negative_rejected(self):
        stats = StreamLengthStats()
        with pytest.raises(ValueError):
            stats.add(-1)

    def test_histogram_binning(self):
        stats = StreamLengthStats([0, 1, 2, 3, 5, 9, 200])
        hist = stats.histogram()
        assert hist["<=0"] == 1
        assert hist["<=2"] == 2   # lengths 1, 2
        assert hist["<=4"] == 1   # length 3
        assert hist["<=8"] == 1   # length 5
        assert hist["<=16"] == 1  # length 9
        assert hist["128+"] == 1  # length 200


class TestCdf:
    def test_cdf_reaches_one(self):
        cdf = length_cdf([1, 2, 3, 100, 300])
        assert cdf["128+"] == 1.0
        assert cdf["<=4"] == pytest.approx(3 / 5)

    def test_empty_cdf(self):
        cdf = length_cdf([])
        assert all(v == 0.0 for v in cdf.values())


@given(lengths=st.lists(st.integers(0, 500), max_size=100))
def test_histogram_conserves_counts(lengths):
    hist = histogram_bins(lengths)
    assert sum(hist.values()) == len(lengths)


@given(lengths=st.lists(st.integers(0, 500), min_size=1, max_size=100))
def test_cdf_monotone(lengths):
    cdf = length_cdf(lengths)
    values = list(cdf.values())
    assert all(a <= b + 1e-9 for a, b in zip(values, values[1:], strict=False))
