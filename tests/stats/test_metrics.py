"""Coverage metrics arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.metrics import CoverageMetrics


def test_coverage_definition():
    m = CoverageMetrics(misses=60, prefetch_hits=40)
    assert m.triggering_events == 100
    assert m.coverage == pytest.approx(0.4)


def test_overprediction_can_exceed_one():
    m = CoverageMetrics(misses=10, prefetch_hits=0, overpredictions=25)
    assert m.overprediction_ratio == pytest.approx(2.5)


def test_accuracy():
    m = CoverageMetrics(prefetch_hits=30, prefetches_issued=120)
    assert m.accuracy == pytest.approx(0.25)


def test_idle_metrics_are_zero():
    m = CoverageMetrics()
    assert m.coverage == 0.0
    assert m.overprediction_ratio == 0.0
    assert m.accuracy == 0.0


def test_merge():
    a = CoverageMetrics(misses=10, prefetch_hits=5, prefetches_issued=8)
    b = CoverageMetrics(misses=20, prefetch_hits=15, overpredictions=3)
    a.merge(b)
    assert a.misses == 30
    assert a.prefetch_hits == 20
    assert a.overpredictions == 3


@given(misses=st.integers(0, 10**6), hits=st.integers(0, 10**6),
       issued=st.integers(0, 10**6))
def test_ratios_always_bounded(misses, hits, issued):
    m = CoverageMetrics(misses=misses, prefetch_hits=hits,
                        prefetches_issued=max(issued, hits))
    assert 0.0 <= m.coverage <= 1.0
    assert 0.0 <= m.accuracy <= 1.0
