"""The shared deterministic backoff helper (repro.backoff)."""

import pytest

from repro.backoff import backoff_delay, jittered, next_delays
from repro.errors import ConfigError, ReproError


class TestBackoffDelay:
    def test_deterministic(self):
        a = [backoff_delay("key", n, base_s=0.1, max_s=2.0) for n in range(6)]
        b = [backoff_delay("key", n, base_s=0.1, max_s=2.0) for n in range(6)]
        assert a == b

    def test_exponential_envelope(self):
        for attempt in range(8):
            delay = backoff_delay("cell", attempt, base_s=0.05, max_s=100.0)
            base = 0.05 * (2 ** attempt)
            assert 0.5 * base <= delay < 1.5 * base

    def test_cap_applies_before_jitter(self):
        # Worst case is 1.5 * max_s, never 1.5 * (uncapped base).
        for attempt in range(20):
            delay = backoff_delay("cell", attempt, base_s=1.0, max_s=2.0)
            assert delay < 1.5 * 2.0

    def test_zero_base_is_zero_delay(self):
        assert backoff_delay("k", 3, base_s=0.0, max_s=5.0) == 0.0

    def test_huge_attempt_does_not_overflow(self):
        delay = backoff_delay("k", 10_000, base_s=0.1, max_s=2.0)
        assert 1.0 <= delay < 3.0  # capped at max_s, jittered [0.5, 1.5)

    def test_distinct_keys_decorrelate(self):
        delays = {backoff_delay(f"key{i}", 0, base_s=1.0, max_s=10.0)
                  for i in range(16)}
        assert len(delays) == 16

    def test_salt_decorrelates_consumers(self):
        retry = backoff_delay("tenant-a", 2, base_s=0.1, max_s=2.0)
        shed = backoff_delay("tenant-a", 2, base_s=0.1, max_s=2.0,
                             salt="serve.shed")
        assert retry != shed

    @pytest.mark.parametrize("kwargs", [
        dict(base_s=-0.1, max_s=1.0),
        dict(base_s=0.1, max_s=-1.0),
    ])
    def test_negative_delays_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            backoff_delay("k", 0, **kwargs)

    def test_negative_attempt_rejected(self):
        with pytest.raises(ReproError):
            backoff_delay("k", -1, base_s=0.1, max_s=1.0)


class TestHelpers:
    def test_jittered_range(self):
        for attempt in range(32):
            value = jittered(2.0, "key", attempt)
            assert 1.0 <= value < 3.0

    def test_next_delays_matches_pointwise(self):
        schedule = next_delays("cell", 5, base_s=0.05, max_s=2.0)
        assert schedule == [backoff_delay("cell", n, base_s=0.05, max_s=2.0)
                            for n in range(5)]

    def test_zero_retries_is_an_empty_schedule(self):
        assert next_delays("cell", 0, base_s=0.05, max_s=2.0) == []

    def test_zero_max_caps_everything_to_zero(self):
        assert backoff_delay("k", 5, base_s=1.0, max_s=0.0) == 0.0

    def test_jitter_is_identical_across_processes(self):
        """The jitter must be a pure function of its inputs — not of
        PYTHONHASHSEED, RNG state, or anything else process-local."""
        import pathlib
        import subprocess
        import sys

        src = str(pathlib.Path(__file__).resolve().parents[1] / "src")
        script = ("from repro.backoff import backoff_delay; "
                  "print(repr(backoff_delay('tenant-a', 3, "
                  "base_s=0.1, max_s=2.0, salt='serve.shed')))")
        outputs = set()
        for hash_seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script], capture_output=True,
                text=True, check=True,
                env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed})
            outputs.add(proc.stdout.strip())
        local = repr(backoff_delay("tenant-a", 3, base_s=0.1, max_s=2.0,
                                   salt="serve.shed"))
        assert outputs == {local}


class TestRunnerCompatibility:
    def test_scheduler_delegates_to_shared_helper(self):
        """The runner's retry spacing is the shared formula, unchanged."""
        from repro.faults import stable_fraction
        from repro.runner import ExecutionPolicy
        from repro.runner.scheduler import _backoff_delay

        policy = ExecutionPolicy(retries=5, backoff_s=0.1, backoff_max_s=1.0)
        for attempt in range(5):
            legacy = (min(policy.backoff_max_s, policy.backoff_s * 2 ** attempt)
                      * (0.5 + stable_fraction("backoff", "somekey", attempt)))
            assert _backoff_delay(policy, "somekey", attempt) == legacy
