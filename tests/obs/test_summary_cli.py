"""End-to-end CLI: --trace-events / --profile write JSONL, obs summary reads it."""

import json

from repro.cli import main
from repro.obs import read_jsonl

RUN_TINY = ["run", "fig11", "--quick", "--n", "8000", "--workloads", "oltp",
            "--no-cache"]


class TestTraceEvents:
    def test_run_writes_parseable_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(RUN_TINY + ["--trace-events", str(trace)]) == 0
        out = capsys.readouterr().out
        assert f"wrote" in out and "t.jsonl" in out

        events = read_jsonl(trace)
        assert events, "trace file must not be empty"
        components = {e.get("component") for e in events}
        assert {"sim.engine", "core.domino", "runner.scheduler",
                "cli.run"} <= components
        kinds = {e.get("event") for e in events}
        assert {"trigger", "eit_lookup", "cell_executed", "run_summary",
                "metrics_snapshot"} <= kinds

    def test_table_identical_with_and_without_tracing(self, tmp_path, capsys):
        def table_of(argv):
            assert main(argv) == 0
            return [line for line in capsys.readouterr().out.splitlines()
                    if not line.startswith(("[runner]", "[obs]", "("))]

        plain = table_of(list(RUN_TINY))
        traced = table_of(RUN_TINY
                          + ["--trace-events", str(tmp_path / "t.jsonl")])
        assert traced == plain

    def test_log_level_info_drops_debug_events(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(RUN_TINY + ["--trace-events", str(trace),
                                "--log-level", "info"]) == 0
        events = read_jsonl(trace)
        assert events
        assert all(e.get("level") != "debug" for e in events
                   if e.get("event") not in ("trace_info", "metrics_snapshot"))

    def test_profile_prints_hotspots(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(RUN_TINY + ["--trace-events", str(trace),
                                "--jobs", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "[profile]" in out
        assert any(e.get("event") == "cell_profile"
                   for e in read_jsonl(trace))


class TestObsSummary:
    def _write_trace(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        assert main(RUN_TINY + ["--trace-events", str(trace)]) == 0
        capsys.readouterr()
        return trace

    def test_summary_renders_sections(self, tmp_path, capsys):
        trace = self._write_trace(tmp_path, capsys)
        assert main(["obs", "summary", str(trace), "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "events" in out
        assert "trigger" in out            # event-count table
        assert "cell" in out               # per-cell timings
        assert "sim.engine.trigger_miss" in out
        assert "p50" in out and "p99" in out

    def test_summary_missing_file_fails(self, tmp_path, capsys):
        assert main(["obs", "summary", str(tmp_path / "nope.jsonl")]) == 1
        assert "error" in capsys.readouterr().err

    def test_summary_malformed_jsonl_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ok": 1}\n{broken\n')
        assert main(["obs", "summary", str(bad)]) == 1
        assert "bad.jsonl:2" in capsys.readouterr().err

    def test_summary_empty_trace_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "summary", str(empty)]) == 1
        assert "no events" in capsys.readouterr().err

    def test_summary_of_handwritten_trace(self, tmp_path, capsys):
        """Summary works on any well-formed trace, not just our writer's."""
        trace = tmp_path / "hand.jsonl"
        events = [{"seq": i, "level": "debug", "component": "c",
                   "event": "tick", "i": i} for i in range(4)]
        trace.write_text("".join(json.dumps(e) + "\n" for e in events))
        assert main(["obs", "summary", str(trace)]) == 0
        assert "tick" in capsys.readouterr().out
