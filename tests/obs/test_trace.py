"""Span tracing: context-locality, forest soundness, converters."""

import threading

import pytest

from repro import obs
from repro.errors import ObsError
from repro.obs import names
from repro.obs.trace import (Span, SpanSink, chrome_trace, critical_path,
                             current_span, read_spans, render_span_tree,
                             reparent, span, span_to_record, validate_forest)


def make_record(name="runner.cell", span_id="1-1", trace_id="1-1",
                parent=None, start=0.0, end=1.0, **attrs):
    record = {"component": "obs.span", "event": names.EVT_SPAN,
              "name": name, "span": span_id, "trace": trace_id,
              "parent": parent, "start_s": start, "end_s": end,
              "status": "ok"}
    if attrs:
        record["attrs"] = attrs
    return record


class TestSpanContextManager:
    def test_noop_when_disabled(self):
        with span(names.SPAN_CELL) as sp:
            assert sp is None
        assert current_span() is None

    def test_records_on_exit_with_both_endpoints(self, telemetry):
        with span(names.SPAN_CELL, cell="a") as sp:
            assert current_span() is sp
        assert current_span() is None
        (record,) = telemetry.spans.spans()
        assert record["name"] == names.SPAN_CELL
        assert record["attrs"] == {"cell": "a"}
        assert record["end_s"] >= record["start_s"]
        assert "level" not in record  # structural, not leveled

    def test_nesting_builds_parent_links_and_one_trace(self, telemetry):
        with span(names.SPAN_RUN_CELLS) as outer:
            with span(names.SPAN_CELL) as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
        forest = telemetry.spans.spans()
        assert validate_forest(forest) == []
        assert {r["name"] for r in forest} == {names.SPAN_RUN_CELLS,
                                               names.SPAN_CELL}

    def test_explicit_parent_overrides_context(self, telemetry):
        with span(names.SPAN_CONNECTION) as conn:
            pass
        with span(names.SPAN_JOB, parent=conn) as job:
            assert job.parent_id == conn.span_id
            assert job.trace_id == conn.trace_id

    def test_error_status_on_raise(self, telemetry):
        with pytest.raises(KeyError):
            with span(names.SPAN_CELL):
                raise KeyError("boom")
        (record,) = telemetry.spans.spans()
        assert record["status"] == "error"
        assert current_span() is None  # context restored on the raise path

    def test_unregistered_name_rejected(self, telemetry):
        with pytest.raises(ObsError, match="not registered"):
            with span("made.up.name"):
                pass

    def test_annotate_after_open(self, telemetry):
        with span(names.SPAN_JOB) as sp:
            sp.annotate(tenant="alice")
        (record,) = telemetry.spans.spans()
        assert record["attrs"]["tenant"] == "alice"

    def test_threads_have_independent_span_stacks(self, telemetry):
        """Two threads nest concurrently without cross-wiring parents."""
        ready = threading.Barrier(2)
        errors = []

        def worker():
            try:
                with span(names.SPAN_CELL) as mine:
                    ready.wait(timeout=5)
                    assert current_span() is mine
                    with span(names.SPAN_SIMULATE) as child:
                        assert child.parent_id == mine.span_id
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        forest = telemetry.spans.spans()
        assert validate_forest(forest) == []
        assert len({r["trace"] for r in forest}) == 2


class TestCaptureIsolation:
    def test_capture_collects_its_own_spans(self, telemetry):
        with span(names.SPAN_RUN_CELLS):
            with obs.capture(obs.current_config()) as cap:
                with span(names.SPAN_CELL):
                    pass
        assert [r["name"] for r in cap.spans] == [names.SPAN_CELL]
        # The outer span recorded into the base state, not the capture.
        assert [r["name"] for r in telemetry.spans.spans()] \
            == [names.SPAN_RUN_CELLS]

    def test_absorb_reparents_under_given_span(self, telemetry):
        with obs.capture(obs.current_config()) as cap:
            with span(names.SPAN_CELL):
                pass
        with span(names.SPAN_RUN_CELLS) as parent:
            obs.absorb(cap.events, cap.metrics, spans=cap.spans,
                       parent=parent)
        forest = telemetry.spans.spans()
        assert validate_forest(forest) == []
        cell = next(r for r in forest if r["name"] == names.SPAN_CELL)
        assert cell["parent"] == parent.span_id
        assert cell["trace"] == parent.trace_id

    def test_concurrent_captures_never_leak_spans(self, telemetry):
        """Capture contexts in sibling threads stay fully isolated."""
        ready = threading.Barrier(3)
        results: dict[str, list] = {}

        def worker(label):
            with obs.capture(obs.current_config()) as cap:
                with span(names.SPAN_CELL, cell=label):
                    ready.wait(timeout=5)
            results[label] = cap.spans

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for label, records in results.items():
            assert [r["attrs"]["cell"] for r in records] == [label]


class TestSpanSink:
    def test_ring_drop_accounting(self):
        sink = SpanSink(ring=3)
        for i in range(5):
            sink.add(make_record(span_id=f"1-{i}"))
        assert len(sink) == 3
        assert sink.dropped == 2
        assert [r["span"] for r in sink.spans()] == ["1-2", "1-3", "1-4"]

    def test_extend_counts_drops_too(self):
        sink = SpanSink(ring=2)
        sink.extend([make_record(span_id=f"1-{i}") for i in range(5)])
        assert sink.dropped == 3
        assert len(sink.spans()) == 2

    def test_drain_empties(self):
        sink = SpanSink()
        sink.add(make_record())
        assert len(sink.drain()) == 1
        assert sink.spans() == []

    def test_rejects_silly_ring(self):
        with pytest.raises(ValueError):
            SpanSink(ring=0)

    def test_concurrent_extend_loses_nothing_within_ring(self):
        sink = SpanSink(ring=10_000)
        per_thread = 500

        def writer(tag):
            sink.extend([make_record(span_id=f"{tag}-{i}")
                         for i in range(per_thread)])

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(sink.spans()) == 8 * per_thread
        assert sink.dropped == 0


class TestReparent:
    def test_none_parent_is_passthrough(self):
        records = [make_record()]
        assert reparent(records, None) is records

    def test_shipped_roots_attach_to_parent(self):
        parent = Span(name=names.SPAN_RUN_CELLS, span_id="p-1",
                      trace_id="p-1", parent_id=None, start_s=0.0, end_s=9.0)
        shipped = [
            make_record(span_id="2-1", trace_id="2-1", parent="2-99"),
            make_record(span_id="2-2", trace_id="2-1", parent="2-1",
                        name="sim.simulate"),
        ]
        out = reparent(shipped, parent)
        root = next(r for r in out if r["span"] == "2-1")
        child = next(r for r in out if r["span"] == "2-2")
        assert root["parent"] == "p-1"          # orphan root re-pointed
        assert child["parent"] == "2-1"         # internal edge kept
        assert {r["trace"] for r in out} == {"p-1"}
        # Input untouched (absorb may retry).
        assert shipped[0]["parent"] == "2-99"


class TestForestValidation:
    def test_sound_forest_is_clean(self):
        records = [make_record(span_id="1-1", parent=None),
                   make_record(span_id="1-2", parent="1-1")]
        assert validate_forest(records) == []

    def test_detects_each_problem_kind(self):
        dup = [make_record(span_id="1-1"), make_record(span_id="1-1")]
        assert any("duplicate" in p for p in validate_forest(dup))
        orphan = [make_record(span_id="1-1", parent=None),
                  make_record(span_id="1-2", parent="9-9")]
        assert any("orphan" in p for p in validate_forest(orphan))
        crossed = [make_record(span_id="1-1", parent=None, trace_id="a"),
                   make_record(span_id="1-2", parent="1-1", trace_id="b")]
        problems = validate_forest(crossed)
        assert any("crosses traces" in p for p in problems)
        negative = [make_record(span_id="1-1", start=5.0, end=1.0)]
        assert any("negative" in p for p in validate_forest(negative))
        two_roots = [make_record(span_id="1-1", parent=None),
                     make_record(span_id="1-2", parent=None)]
        assert any("2 roots" in p for p in validate_forest(two_roots))


class TestConverters:
    FOREST = [
        make_record(span_id="1-1", parent=None, start=0.0, end=10.0,
                    name="runner.run"),
        make_record(span_id="1-2", parent="1-1", start=1.0, end=4.0,
                    name="runner.cell", cell="a"),
        make_record(span_id="1-3", parent="1-1", start=1.0, end=9.0,
                    name="runner.cell", cell="b"),
        make_record(span_id="1-4", parent="1-3", start=2.0, end=8.0,
                    name="sim.simulate"),
    ]

    def test_critical_path_takes_slowest_children(self):
        (chain,) = critical_path(self.FOREST)
        assert [r["span"] for r in chain] == ["1-1", "1-3", "1-4"]

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self.FOREST)
        events = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert len(events) == 4
        for event in events:
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert event["args"]["trace"] == "1-1"
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert len(meta) == 1  # one thread row per trace

    def test_render_span_tree_indents_causality(self):
        text = render_span_tree(self.FOREST)
        lines = text.splitlines()
        assert "4 spans, 1 trace(s)" in lines[0]
        assert lines[1].startswith("runner.run")
        assert "    sim.simulate" in text
        assert render_span_tree([]) == "no spans in trace"

    def test_read_spans_filters_trace_events(self):
        events = [{"component": "sim", "event": "access"}, *self.FOREST]
        assert read_spans(events) == self.FOREST

    def test_span_to_record_round_trips_ids(self):
        sp = Span(name="runner.cell", span_id="a-1", trace_id="a-1",
                  parent_id=None, start_s=1.0, end_s=2.0)
        record = span_to_record(sp)
        assert record["span"] == "a-1"
        assert record["parent"] is None
        assert validate_forest([record]) == []
