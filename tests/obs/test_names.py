"""The central name registry: shape, uniqueness, and live coverage."""

from repro.config import small_test_config
from repro.core.domino import DominoPrefetcher
from repro.obs import names
from repro.sim.engine import simulate_trace


class TestRegistries:
    def test_overlap_is_intentional(self):
        # Events and metrics live in separate namespaces; the one shared
        # name is the overprediction event + counter pair.
        assert names.EVENT_NAMES & names.METRIC_NAMES == {"overprediction"}

    def test_every_constant_is_collected(self):
        for attr, value in vars(names).items():
            if attr.startswith("EVT_"):
                assert value in names.EVENT_NAMES
            elif attr.startswith("MET_"):
                assert value in names.METRIC_NAMES

    def test_no_duplicate_values(self):
        evt_attrs = [a for a in vars(names) if a.startswith("EVT_")]
        met_attrs = [a for a in vars(names) if a.startswith("MET_")]
        assert len(evt_attrs) == len(names.EVENT_NAMES)
        assert len(met_attrs) == len(names.METRIC_NAMES)

    def test_names_are_lower_snake_or_dotted(self):
        for value in names.EVENT_NAMES | names.METRIC_NAMES:
            assert value == value.lower()
            assert " " not in value


class TestLiveEmitSites:
    def test_simulation_emits_only_registered_names(self, tiny_trace, telemetry):
        """Every event and metric a real run produces is in the registry."""
        config = small_test_config()
        simulate_trace(tiny_trace, config, DominoPrefetcher(config, seed=7))
        for record in telemetry.trace.events():
            assert record["event"] in names.EVENT_NAMES, record
        for metric in telemetry.registry.snapshot()["counters"]:
            component, _, bare = metric.rpartition(".")
            assert bare in names.METRIC_NAMES, metric
