"""Obs test fixtures: enable telemetry for one test, always clean up."""

import pytest

from repro import obs
from repro.experiments.common import ExperimentOptions


@pytest.fixture
def telemetry():
    """Fresh debug-level telemetry state, disabled again afterwards."""
    state = obs.configure(level=obs.DEBUG)
    yield state
    obs.disable()


@pytest.fixture(autouse=True)
def _no_leaked_state():
    """No test may leave the process-global telemetry installed."""
    yield
    obs.disable()


@pytest.fixture
def tiny_options() -> ExperimentOptions:
    """A sweep small enough for sub-second cells."""
    return ExperimentOptions(n_accesses=6000, workloads=("oltp",), seed=7)
