"""Event trace: levels, sampling determinism, ring bound, JSONL I/O."""

import pytest

from repro import obs
from repro.obs import EventTrace, read_jsonl, write_jsonl


class TestLevels:
    def test_parse_level_names(self):
        assert obs.parse_level("debug") == obs.DEBUG
        assert obs.parse_level("WARNING") == obs.WARNING
        assert obs.parse_level(25) == 25

    def test_parse_level_rejects_unknown(self):
        with pytest.raises(ValueError):
            obs.parse_level("chatty")

    def test_below_threshold_not_collected(self):
        trace = EventTrace(level=obs.INFO)
        trace.emit("c", "quiet", obs.DEBUG)
        trace.emit("c", "loud", obs.INFO)
        assert [e["event"] for e in trace.events()] == ["loud"]


class TestSampling:
    def test_every_nth_per_event_kind_starting_with_first(self):
        trace = EventTrace(sample_every=3)
        for _ in range(7):
            trace.emit("c", "a")
        for _ in range(2):
            trace.emit("c", "b")
        events = [e["event"] for e in trace.events()]
        assert events == ["a", "a", "a", "b"]  # a: 1st,4th,7th; b: 1st
        assert trace.sampled_out == 5

    def test_sampling_is_deterministic(self):
        def run():
            trace = EventTrace(sample_every=5)
            for i in range(100):
                trace.emit("c", "x", i=i)
            return [e["i"] for e in trace.events()]

        assert run() == run() == list(range(0, 100, 5))


class TestRingBuffer:
    def test_keeps_most_recent_and_counts_drops(self):
        trace = EventTrace(ring=10)
        for i in range(25):
            trace.emit("c", "x", i=i)
        assert len(trace) == 10
        assert [e["i"] for e in trace.events()] == list(range(15, 25))
        assert trace.dropped == 15

    def test_extend_respects_ring(self):
        trace = EventTrace(ring=3)
        trace.extend([{"i": i} for i in range(5)])
        assert [e["i"] for e in trace.events()] == [2, 3, 4]
        assert trace.dropped == 2

    def test_drain_empties(self):
        trace = EventTrace()
        trace.emit("c", "x")
        assert len(trace.drain()) == 1
        assert trace.events() == []


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        trace = EventTrace()
        trace.emit("sim.engine", "trigger", obs.DEBUG, pc=1, block=2)
        trace.emit("runner", "cell_executed", wall_s=0.25)
        written = trace.events()
        assert write_jsonl(path, written) == 2
        assert read_jsonl(path) == written

    def test_malformed_line_reports_lineno(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_non_object_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ValueError, match="expected a JSON object"):
            read_jsonl(path)


class TestScopeAndRuntime:
    def test_scope_disabled_by_default(self):
        scope = obs.scope("anything")
        assert not scope.enabled
        scope.info("ignored", x=1)  # must not raise
        scope.counter("c").inc()    # null metric

    def test_scope_routes_to_active_state(self, telemetry):
        scope = obs.scope("mycomp")
        scope.info("hello", x=1)
        scope.counter("c").inc(2)
        (event,) = telemetry.trace.events()
        assert event["component"] == "mycomp" and event["x"] == 1
        assert telemetry.registry.counter("mycomp.c").value == 2

    def test_child_scope_dotted_name(self, telemetry):
        obs.scope("a").child("b").info("e")
        assert telemetry.trace.events()[0]["component"] == "a.b"

    def test_capture_shields_and_collects(self, telemetry):
        obs.scope("outer").info("before")
        with obs.capture(obs.ObsConfig(level=obs.DEBUG)) as cap:
            obs.scope("inner").info("during")
            obs.scope("inner").counter("n").inc()
        obs.scope("outer").info("after")
        assert [e["event"] for e in cap.events] == ["during"]
        assert cap.metrics["counters"] == {"inner.n": 1}
        outer_events = [e["event"] for e in telemetry.trace.events()]
        assert outer_events == ["before", "after"]

    def test_capture_none_is_passthrough(self, telemetry):
        with obs.capture(None) as cap:
            obs.scope("x").info("straight_through")
        assert cap.events == []
        assert [e["event"] for e in telemetry.trace.events()] == ["straight_through"]

    def test_absorb_tags_events(self, telemetry):
        obs.absorb([{"event": "e1"}], {"counters": {"k": 2}},
                   tag={"cell": "oltp"})
        (event,) = telemetry.trace.events()
        assert event == {"event": "e1", "cell": "oltp"}
        assert telemetry.registry.counter("k").value == 2

    def test_absorb_noop_when_disabled(self):
        obs.absorb([{"event": "e"}], {"counters": {"k": 1}})  # must not raise


class TestTimers:
    def test_timed_records_histograms(self, telemetry):
        with obs.timed("phase"):
            pass
        snap = telemetry.registry.snapshot()
        assert snap["histograms"]["time.phase_s"]["count"] == 1
        assert snap["histograms"]["time.phase_cpu_s"]["count"] == 1
        assert any(e["event"] == "section_end"
                   for e in telemetry.trace.events())

    def test_timed_noop_when_disabled(self):
        with obs.timed("phase"):
            pass  # no state, no error

    def test_profile_call_returns_result_and_rows(self):
        result, rows = obs.profile_call(sorted, [3, 1, 2], top=5)
        assert result == [1, 2, 3]
        assert len(rows) <= 5
        assert all("func" in r and "cumtime_s" in r for r in rows)
