"""Registry math: counters, gauges, histogram percentiles, merging."""

import pytest

from repro.obs import Histogram, NullRegistry, Registry


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = Registry()
        counter = registry.counter("hits")
        counter.inc()
        counter.inc(41)
        assert registry.counter("hits").value == 42

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Registry().counter("x").inc(-1)

    def test_same_name_same_object(self):
        registry = Registry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("h") is registry.histogram("h")

    def test_gauge_last_write_wins(self):
        registry = Registry()
        registry.gauge("depth").set(3)
        registry.gauge("depth").set(7)
        assert registry.gauge("depth").value == 7.0


class TestHistogram:
    def test_mean_min_max(self):
        hist = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 8.0):
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean == pytest.approx(3.25)
        assert hist.min == 0.5
        assert hist.max == 8.0

    def test_percentiles_report_bucket_upper_bounds(self):
        hist = Histogram("t", buckets=(1.0, 2.0, 4.0))
        for _ in range(90):
            hist.observe(0.5)      # bucket <=1.0
        for _ in range(10):
            hist.observe(3.0)      # bucket <=4.0
        assert hist.percentile(0.50) == 1.0
        assert hist.percentile(0.90) == 1.0
        assert hist.percentile(0.99) == 4.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("t", buckets=(1.0,))
        hist.observe(123.0)
        assert hist.percentile(0.99) == 123.0

    def test_empty_percentile_zero(self):
        assert Histogram("t").percentile(0.5) == 0.0

    def test_percentile_rank_validated(self):
        with pytest.raises(ValueError):
            Histogram("t").percentile(1.5)

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("t", buckets=(2.0, 1.0))


class TestSnapshotMerge:
    def test_round_trip_preserves_percentiles(self):
        a = Registry()
        for v in (0.1, 0.2, 5.0):
            a.histogram("h", (1.0, 10.0)).observe(v)
        a.counter("c").inc(3)
        a.gauge("g").set(2.5)

        b = Registry()
        b.merge_snapshot(a.snapshot())
        assert b.counter("c").value == 3
        assert b.gauge("g").value == 2.5
        merged = b.histogram("h", (1.0, 10.0))
        assert merged.count == 3
        assert merged.percentile(0.99) == 10.0

    def test_merge_adds_counts(self):
        a, b = Registry(), Registry()
        a.histogram("h", (1.0,)).observe(0.5)
        b.histogram("h", (1.0,)).observe(0.7)
        b.counter("c").inc(1)
        a.merge_snapshot(b.snapshot())
        assert a.histogram("h", (1.0,)).count == 2
        assert a.counter("c").value == 1

    def test_merge_rejects_bucket_mismatch(self):
        a, b = Registry(), Registry()
        a.histogram("h", (1.0, 2.0)).observe(0.5)
        b.histogram("h", (5.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_snapshot(b.snapshot())

    def test_snapshot_is_json_shaped(self):
        import json

        registry = Registry()
        registry.histogram("h").observe(0.01)
        registry.counter("c").inc()
        json.dumps(registry.snapshot())  # must not raise


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        registry = NullRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.5)
        assert registry.snapshot() == {"counters": {}, "gauges": {},
                                       "histograms": {}}
