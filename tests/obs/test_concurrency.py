"""Telemetry stores under concurrent writers (threads and processes).

The serve tier absorbs worker telemetry from several slots at once and
the runner ships registry snapshots across the process boundary; these
tests pin down that EventTrace drop accounting and
``Registry.merge_snapshot`` stay exact under that concurrency — and
that a malformed (bucket-mismatched) snapshot is rejected atomically.
"""

import concurrent.futures
import threading

import pytest

from repro.obs.events import EventTrace
from repro.obs.registry import Registry

N_THREADS = 8
PER_WRITER = 500


class TestEventTraceConcurrency:
    def test_concurrent_absorption_drop_accounting_is_exact(self):
        """kept + dropped == shipped under concurrent extend() calls.

        emit() is the recording context's own lock-free hot path;
        extend() is the cross-thread absorption path (serve slots,
        runner workers) and is the one that must account exactly.
        """
        ring = 1000
        shared = EventTrace(ring=ring)
        barrier = threading.Barrier(N_THREADS)

        def shipper(tag):
            # Each context records into its own trace (the capture
            # model), then ships the batch into the shared trace.
            local = EventTrace(ring=PER_WRITER)
            for i in range(PER_WRITER):
                local.emit("c", "x", tag=tag, i=i)
            barrier.wait(timeout=5)
            shared.extend(local.events())

        threads = [threading.Thread(target=shipper, args=(t,))
                   for t in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = N_THREADS * PER_WRITER
        assert len(shared) == ring
        assert shared.dropped == total - ring

    def test_concurrent_extend_interleaves_without_loss(self):
        trace = EventTrace(ring=N_THREADS * PER_WRITER)

        def shipper(tag):
            trace.extend([{"component": "c", "event": "x", "tag": tag}
                          for _ in range(PER_WRITER)])

        threads = [threading.Thread(target=shipper, args=(t,))
                   for t in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(trace.events()) == N_THREADS * PER_WRITER
        assert trace.dropped == 0


def _worker_snapshot(tag: int) -> dict:
    """One worker process's registry, as its JSON snapshot."""
    registry = Registry()
    registry.counter("runner.cells_executed").inc(PER_WRITER)
    for i in range(PER_WRITER):
        registry.histogram("runner.cell_s", (0.1, 1.0, 10.0)).observe(
            (tag + i) % 12)
    registry.gauge("runner.last_tag").set(float(tag))
    return registry.snapshot()


class TestRegistryMergeConcurrency:
    def test_threaded_merges_into_shared_registry_add_up(self):
        shared = Registry()
        barrier = threading.Barrier(N_THREADS)

        def merger(tag):
            snapshot = _worker_snapshot(tag)
            barrier.wait(timeout=5)
            shared.merge_snapshot(snapshot)

        threads = [threading.Thread(target=merger, args=(t,))
                   for t in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = N_THREADS * PER_WRITER
        assert shared.counter("runner.cells_executed").value == total
        assert shared.histogram("runner.cell_s", (0.1, 1.0, 10.0)).count \
            == total

    def test_merges_racing_direct_writers(self):
        """Snapshot merges interleaved with live inc() lose nothing."""
        shared = Registry()
        barrier = threading.Barrier(2 * N_THREADS)

        def merger(tag):
            snapshot = _worker_snapshot(tag)
            barrier.wait(timeout=5)
            shared.merge_snapshot(snapshot)

        def incrementer(_tag):
            counter = shared.counter("runner.cells_executed")
            barrier.wait(timeout=5)
            for _ in range(PER_WRITER):
                counter.inc()

        threads = ([threading.Thread(target=merger, args=(t,))
                    for t in range(N_THREADS)]
                   + [threading.Thread(target=incrementer, args=(t,))
                      for t in range(N_THREADS)])
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert shared.counter("runner.cells_executed").value \
            == 2 * N_THREADS * PER_WRITER

    def test_process_snapshots_merge_exactly(self):
        """Snapshots made in real worker processes merge losslessly."""
        shared = Registry()
        with concurrent.futures.ProcessPoolExecutor(max_workers=4) as pool:
            for snapshot in pool.map(_worker_snapshot, range(4)):
                shared.merge_snapshot(snapshot)
        assert shared.counter("runner.cells_executed").value \
            == 4 * PER_WRITER
        merged = shared.histogram("runner.cell_s", (0.1, 1.0, 10.0))
        assert merged.count == 4 * PER_WRITER

    def test_bucket_mismatch_rejected_atomically(self):
        """A bad snapshot mutates nothing — not even its valid parts."""
        shared = Registry()
        shared.histogram("runner.cell_s", (0.1, 1.0)).observe(0.05)
        shared.counter("runner.cells_executed").inc()

        bad = Registry()
        bad.counter("runner.cells_executed").inc(100)
        bad.histogram("runner.other_s", (1.0,)).observe(0.5)     # valid part
        bad.histogram("runner.cell_s", (5.0,)).observe(0.5)      # mismatch
        with pytest.raises(ValueError, match="bucket layout mismatch"):
            shared.merge_snapshot(bad.snapshot())
        assert shared.counter("runner.cells_executed").value == 1
        assert shared.snapshot()["histograms"].get("runner.other_s") is None
        assert shared.histogram("runner.cell_s", (0.1, 1.0)).count == 1
