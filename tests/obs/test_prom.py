"""Prometheus exposition: name filtering, tenant labels, histograms."""

from repro.obs.prom import CONTENT_TYPE, render_prometheus
from repro.obs.registry import Registry


def test_content_type_is_version_0_0_4():
    assert "version=0.0.4" in CONTENT_TYPE


class TestFiltering:
    def test_unregistered_names_never_exported(self):
        snapshot = {"counters": {"serve.server.jobs_admitted": 3,
                                 "totally.adhoc.name": 9},
                    "gauges": {"another.fake": 1.0},
                    "histograms": {}}
        text = render_prometheus(snapshot)
        assert "domino_serve_server_jobs_admitted 3" in text
        assert "adhoc" not in text
        assert "fake" not in text

    def test_extra_gauges_pass_same_filter(self):
        text = render_prometheus(
            {"counters": {}, "gauges": {}, "histograms": {}},
            extra_gauges={"serve.server.queue_depth_now": 2.0,
                          "sneaky.unregistered": 7.0})
        assert "domino_serve_server_queue_depth_now 2" in text
        assert "sneaky" not in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({"counters": {}, "gauges": {},
                                  "histograms": {}}) == ""


class TestTenantLabels:
    def test_tenant_metrics_collapse_into_one_family(self):
        snapshot = {"counters": {"serve.tenant.alice.jobs_admitted": 2,
                                 "serve.tenant.bob.jobs_admitted": 5},
                    "gauges": {}, "histograms": {}}
        text = render_prometheus(snapshot)
        assert text.count("# TYPE domino_serve_tenant_jobs_admitted") == 1
        assert ('domino_serve_tenant_jobs_admitted{tenant="alice"} 2'
                in text)
        assert ('domino_serve_tenant_jobs_admitted{tenant="bob"} 5'
                in text)

    def test_label_values_escaped(self):
        snapshot = {"counters": {'serve.tenant.a"b.jobs_admitted': 1},
                    "gauges": {}, "histograms": {}}
        text = render_prometheus(snapshot)
        assert 'tenant="a\\"b"' in text


class TestHistograms:
    def test_cumulative_buckets_sum_count(self):
        registry = Registry()
        h = registry.histogram("serve.server.job_wait_s", (0.1, 1.0))
        for v in (0.05, 0.5, 0.5, 5.0):
            h.observe(v)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE domino_serve_server_job_wait_s histogram" in text
        assert 'domino_serve_server_job_wait_s_bucket{le="0.1"} 1' in text
        assert 'domino_serve_server_job_wait_s_bucket{le="1"} 3' in text
        assert 'domino_serve_server_job_wait_s_bucket{le="+Inf"} 4' in text
        assert "domino_serve_server_job_wait_s_count 4" in text
        assert "domino_serve_server_job_wait_s_sum" in text

    def test_tenant_histograms_carry_both_labels(self):
        registry = Registry()
        registry.histogram("serve.tenant.alice.job_service_s", (1.0,)).observe(0.5)
        text = render_prometheus(registry.snapshot())
        assert ('domino_serve_tenant_job_service_s_bucket'
                '{tenant="alice",le="1"} 1') in text
        assert 'domino_serve_tenant_job_service_s_count{tenant="alice"} 1' in text


def test_output_is_deterministic():
    snapshot = {"counters": {"serve.server.jobs_admitted": 1,
                             "serve.server.jobs_shed": 2},
                "gauges": {"serve.server.uptime_s": 3.5},
                "histograms": {}}
    assert render_prometheus(snapshot) == render_prometheus(snapshot)
    lines = render_prometheus(snapshot).splitlines()
    type_lines = [l for l in lines if l.startswith("# TYPE")]
    assert type_lines == sorted(type_lines)
