"""Instrumented layers: events flow, and telemetry never perturbs results.

The load-bearing regression here is byte-identical equality of
simulation results with telemetry on vs off — the obs layer observes
the simulator, it must never feed back into it.
"""

import dataclasses

from repro import obs
from repro.config import small_test_config
from repro.core.domino import DominoPrefetcher
from repro.runner import Cell, ExecutionPolicy, run_cells
from repro.sim.engine import simulate_trace


def _run(config, trace, seed=7):
    return simulate_trace(trace, config, DominoPrefetcher(config, seed=seed))


def _result_fields(result):
    return (dataclasses.asdict(result.metrics),
            dataclasses.asdict(result.metadata),
            sorted(result.stream_lengths.lengths),
            result.extras)


class TestNoPerturbation:
    def test_instrumented_equals_uninstrumented(self, config, tiny_trace):
        baseline = _result_fields(_run(config, tiny_trace))
        obs.configure(level=obs.DEBUG)
        try:
            instrumented = _result_fields(_run(config, tiny_trace))
        finally:
            obs.disable()
        after = _result_fields(_run(config, tiny_trace))
        assert instrumented == baseline
        assert after == baseline

    def test_sampled_tracing_equal_too(self, config, tiny_trace):
        baseline = _result_fields(_run(config, tiny_trace))
        obs.configure(level=obs.DEBUG, sample_every=10, ring=50)
        try:
            instrumented = _result_fields(_run(config, tiny_trace))
        finally:
            obs.disable()
        assert instrumented == baseline


class TestEngineEvents:
    def test_engine_emits_taxonomy(self, config, tiny_trace, telemetry):
        _run(config, tiny_trace)
        events = {e["event"] for e in telemetry.trace.events()
                  if e["component"] == "sim.engine"}
        assert {"trigger", "run_complete"} <= events
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["sim.engine.trigger_miss"] > 0

    def test_run_complete_matches_metrics(self, config, tiny_trace, telemetry):
        result = _run(config, tiny_trace)
        (done,) = [e for e in telemetry.trace.events()
                   if e["event"] == "run_complete"]
        assert done["misses"] == result.metrics.misses
        assert done["prefetch_hits"] == result.metrics.prefetch_hits
        assert done["overpredictions"] == result.metrics.overpredictions

    def test_simulate_timing_histogram_recorded(self, config, tiny_trace, telemetry):
        _run(config, tiny_trace)
        hists = telemetry.registry.snapshot()["histograms"]
        assert hists["time.simulate_s"]["count"] == 1


class TestDominoEitEvents:
    def test_eit_lookup_outcomes_counted(self, config, tiny_trace, telemetry):
        _run(config, tiny_trace)
        counters = telemetry.registry.snapshot()["counters"]
        one_addr = (counters.get("core.domino.eit_one_addr_hit", 0)
                    + counters.get("core.domino.eit_one_addr_miss", 0))
        assert one_addr > 0
        modes = {e.get("mode") for e in telemetry.trace.events()
                 if e["event"] == "eit_lookup"}
        assert "one_addr" in modes

    def test_two_addr_outcomes_on_repetition(self, config, telemetry, trace_factory):
        # The loop must not fit in L1 (128 blocks), or the repeats hit the
        # cache and the EIT never sees a recurring miss to confirm.
        pattern = list(range(1000, 1600))
        trace = trace_factory(pattern * 5, name="loop")
        simulate_trace(trace, config, DominoPrefetcher(config, seed=7))
        counters = telemetry.registry.snapshot()["counters"]
        two_addr = (counters.get("core.domino.eit_two_addr_match", 0)
                    + counters.get("core.domino.eit_two_addr_discard", 0))
        assert two_addr > 0


class TestRunnerTelemetry:
    def test_manifest_gets_cpu_time(self, tiny_options):
        cells = [Cell(kind="trace", workload="oltp", prefetcher="domino",
                      degree=1)]
        _, manifest = run_cells(cells, tiny_options,
                                ExecutionPolicy(use_cache=False))
        (record,) = manifest.cells
        assert record.wall_s > 0
        assert record.cpu_s >= 0

    def test_scheduler_events_and_absorbed_engine_events(self, tiny_options, telemetry):
        cells = [Cell(kind="trace", workload="oltp", prefetcher="domino",
                      degree=1)]
        run_cells(cells, tiny_options, ExecutionPolicy(use_cache=False))
        events = telemetry.trace.events()
        kinds = {e["event"] for e in events}
        assert {"cell_executed", "run_summary"} <= kinds
        engine = [e for e in events if e["component"] == "sim.engine"]
        assert engine and all(e.get("cell") for e in engine)

    def test_parallel_trace_matches_serial(self, tiny_options):
        cells = [Cell(kind="trace", workload="oltp", prefetcher=p, degree=1)
                 for p in ("stms", "domino")]

        def collect(jobs):
            obs.configure(level=obs.DEBUG)
            try:
                payloads, _ = run_cells(cells, tiny_options,
                                        ExecutionPolicy(jobs=jobs, use_cache=False))
                events = [{k: v for k, v in e.items()
                           if k not in ("seq", "wall_s", "cpu_s", "key")}
                          for e in obs.state().trace.events()
                          if e["event"] not in ("run_summary", "pool_start",
                                                "trace_shm_published",
                                                "trace_shm_reaped")]
            finally:
                obs.disable()
            return payloads, events

        serial_payloads, serial_events = collect(1)
        pool_payloads, pool_events = collect(2)
        assert pool_payloads == serial_payloads
        assert pool_events == serial_events

    def test_profile_rows_ride_back(self, tiny_options, telemetry):
        obs.configure(level=obs.DEBUG, profile=True)
        cells = [Cell(kind="trace", workload="oltp", prefetcher="domino",
                      degree=1)]
        run_cells(cells, tiny_options, ExecutionPolicy(use_cache=False))
        profiles = [e for e in obs.state().trace.events()
                    if e["event"] == "cell_profile"]
        assert profiles and profiles[0]["rows"]
