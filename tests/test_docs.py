"""Documentation consistency: the docs must track the code."""

from pathlib import Path

import pytest

from repro.experiments import experiment_ids
from repro.workloads import workload_names

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def design_md():
    return (ROOT / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def readme_md():
    return (ROOT / "README.md").read_text()


@pytest.fixture(scope="module")
def experiments_md():
    return (ROOT / "EXPERIMENTS.md").read_text()


def test_core_docs_exist():
    for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md"):
        assert (ROOT / name).exists(), f"{name} missing"


def test_design_confirms_paper_identity(design_md):
    assert "Domino Temporal Data Prefetcher" in design_md
    assert "HPCA 2018" in design_md
    assert "10.1109/HPCA.2018.00021" in design_md


def test_design_indexes_every_paper_experiment(design_md):
    for fig in ("Fig 1", "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6",
                "Fig 9", "Fig 10", "Fig 11", "Fig 12", "Fig 13",
                "Fig 14", "Fig 15", "Fig 16", "Table I", "Table II"):
        assert fig in design_md, f"DESIGN.md missing {fig}"


def test_experiments_md_covers_all_registered_ids(experiments_md):
    for experiment_id in experiment_ids():
        assert experiment_id in experiments_md, (
            f"EXPERIMENTS.md missing row for {experiment_id}")


def test_experiments_md_documents_deviations(experiments_md):
    assert "deviation" in experiments_md.lower()


def test_readme_names_the_paper_and_quickstart(readme_md):
    assert "HPCA 2018" in readme_md
    assert "pip install -e ." in readme_md
    assert "simulate_trace" in readme_md


def test_design_lists_every_workload(design_md, readme_md):
    # The workload catalogue lives in code; the docs reference the suite.
    assert "nine" in design_md.lower() or "nine" in readme_md.lower()
    corpus = (design_md + readme_md).lower()
    for workload in workload_names():
        variants = (workload, workload.replace("_", " "),
                    workload.replace("_", "-"))
        assert any(v in corpus for v in variants), f"docs missing {workload}"
