"""Load-generator math, determinism, and a small closed-loop run."""

import asyncio
import random

import pytest

from repro.errors import ProtocolError
from repro.serve import LoadGenConfig, jain_index
from repro.serve.loadgen import percentile, run_loadgen_async

from .conftest import TINY_SPEC, serving


class TestJainIndex:
    def test_perfectly_even(self):
        assert jain_index([3.0, 3.0, 3.0, 3.0]) == 1.0

    def test_single_hog(self):
        assert jain_index([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_mild_skew_is_between(self):
        value = jain_index([4.0, 3.0, 3.0, 2.0])
        assert 0.9 < value < 1.0


class TestPercentile:
    def test_empty(self):
        assert percentile([], 50) == 0.0

    def test_nearest_rank(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0


class TestConfig:
    def test_validation(self):
        with pytest.raises(ProtocolError):
            LoadGenConfig(address="x:1", tenants=0)
        with pytest.raises(ProtocolError):
            LoadGenConfig(address="x:1", rate_hz=0.0)

    def test_seed_variation_is_deterministic_and_distinct(self):
        config = LoadGenConfig(address="x:1", tenants=2, jobs_per_tenant=3)
        specs = [config.job_spec(t, j) for t in range(2) for j in range(3)]
        seeds = [s["seed"] for s in specs]
        assert len(set(seeds)) == len(seeds)  # every job is real work
        again = [config.job_spec(t, j) for t in range(2) for j in range(3)]
        assert specs == again

    def test_arrival_schedule_is_seeded(self):
        """The Poisson gaps a tenant source draws are reproducible."""
        def gaps(seed):
            rng = random.Random(f"{seed}:t0")
            return [rng.expovariate(2.0) for _ in range(5)]

        assert gaps(7) == gaps(7)
        assert gaps(7) != gaps(8)


class TestAgainstRealServer:
    def test_underload_completes_everything_fairly(self):
        async def scenario():
            async with serving(slots=2) as server:
                config = LoadGenConfig(
                    address=server.address, tenants=2, jobs_per_tenant=3,
                    rate_hz=20.0, spec=dict(TINY_SPEC), seed=11,
                    job_timeout_s=60.0)
                return await run_loadgen_async(config)

        report = asyncio.run(scenario())
        assert report["submitted"] == 6
        assert report["completed"] == 6
        assert report["shed"] == 0
        assert report["errors"] == 0
        assert report["fairness_jain"] == 1.0
        assert report["latency_s"]["p99"] >= report["latency_s"]["p50"] > 0
        assert report["throughput_jobs_per_s"] > 0
        assert set(report["per_tenant"]) == {"t0", "t1"}

    def test_overload_sheds_at_admission_only(self):
        """4x-ish saturation: everything is either served or shed —
        nothing errors, nothing is dropped mid-run."""
        async def scenario():
            from repro.serve import AdmissionConfig
            admission = AdmissionConfig(max_queued_total=2,
                                        max_queued_per_tenant=1)
            async with serving(slots=1, admission=admission) as server:
                config = LoadGenConfig(
                    address=server.address, tenants=3, jobs_per_tenant=4,
                    rate_hz=50.0, spec={**TINY_SPEC, "n_accesses": 20_000},
                    seed=3, job_timeout_s=120.0)
                return await run_loadgen_async(config)

        report = asyncio.run(scenario())
        assert report["submitted"] == 12
        assert report["errors"] == 0
        assert report["failed"] == 0
        assert report["shed"] > 0  # the bounds actually bit
        assert report["completed"] + report["shed"] == 12
        for tenant in report["per_tenant"].values():
            assert tenant["completed"] >= 1  # nobody starved outright


class TestLifecycleMix:
    def test_mix_validation(self):
        with pytest.raises(ProtocolError):
            LoadGenConfig(address="x:1", cancel_p=1.5)
        with pytest.raises(ProtocolError):
            LoadGenConfig(address="x:1", deadline_p=-0.1)
        with pytest.raises(ProtocolError):
            LoadGenConfig(address="x:1", deadline_s=0.0)
        with pytest.raises(ProtocolError):
            LoadGenConfig(address="x:1", cancel_after_s=-1.0)

    def test_mix_rolls_are_seeded(self):
        config = LoadGenConfig(address="x:1", cancel_p=0.5, deadline_p=0.5,
                               seed=3)
        again = LoadGenConfig(address="x:1", cancel_p=0.5, deadline_p=0.5,
                              seed=3)
        rolls = [(config.should_cancel("t0", i), config.should_deadline("t0", i))
                 for i in range(64)]
        assert rolls == [(again.should_cancel("t0", i),
                          again.should_deadline("t0", i)) for i in range(64)]
        assert any(c for c, _ in rolls) and any(d for _, d in rolls)
        assert any(c != d for c, d in rolls)  # independent dice

    def test_cancel_mix_lands_as_structured_terminals(self):
        """Every accepted job is cancelled mid-stream; the report counts
        them as `cancelled`, not errors, and the server drains clean."""
        slow = {**TINY_SPEC, "n_accesses": 100_000}

        async def scenario():
            async with serving(slots=2, cancel_check_every=1024) as server:
                config = LoadGenConfig(
                    address=server.address, tenants=2, jobs_per_tenant=2,
                    rate_hz=20.0, spec=slow, seed=11, job_timeout_s=60.0,
                    cancel_p=1.0, cancel_after_s=0.05)
                report = await run_loadgen_async(config)
                return report, server.scheduler.stats()

        report, stats = asyncio.run(scenario())
        assert report["submitted"] == 4
        assert report["errors"] == 0 and report["failed"] == 0
        assert report["cancelled"] + report["shed"] == 4
        assert report["cancelled"] > 0
        assert stats["in_flight"] == 0 and stats["queue_depth"] == 0

    def test_deadline_mix_lands_as_structured_terminals(self):
        slow = {**TINY_SPEC, "n_accesses": 100_000}

        async def scenario():
            async with serving(slots=2, cancel_check_every=1024) as server:
                config = LoadGenConfig(
                    address=server.address, tenants=2, jobs_per_tenant=2,
                    rate_hz=20.0, spec=slow, seed=11, job_timeout_s=60.0,
                    deadline_p=1.0, deadline_s=0.05)
                return await run_loadgen_async(config)

        report = asyncio.run(scenario())
        assert report["errors"] == 0 and report["failed"] == 0
        assert report["deadline_exceeded"] + report["shed"] == 4
        assert report["deadline_exceeded"] > 0
