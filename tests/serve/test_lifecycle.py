"""Job lifecycle over real sockets: cancel frames, deadlines, status
polls, quotas, disconnect reaping, and hard shutdown.

These are the tentpole's end-to-end guarantees: a cancel/deadline
observably stops the simulation mid-run (no cell ever streams back),
the terminal ``done`` frame carries a structured status + reason, and
tenant isolation holds (no cross-tenant cancel, no existence oracle).
"""

import asyncio

from repro.serve import AdmissionConfig, ServeClient, protocol

from .conftest import TINY_SPEC, serving

#: One cell, big enough to run for seconds — a cancellation target.
LONG_SPEC = {**TINY_SPEC, "degrees": [1], "n_accesses": 200_000}


async def _wait_for(predicate, timeout_s=10.0, poll_s=0.02):
    """Poll ``predicate`` until truthy (returns it) or time out."""
    for _ in range(int(timeout_s / poll_s)):
        value = predicate()
        if value:
            return value
        await asyncio.sleep(poll_s)
    raise AssertionError("condition not reached before timeout")


class TestCancelFrame:
    def test_cancel_stops_a_running_job(self):
        async def scenario():
            async with serving(cancel_check_every=1024) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.submit(LONG_SPEC, "r1")
                    accepted = await client.recv()
                    assert accepted["type"] == protocol.ACCEPTED
                    job_id = accepted["job"]
                    await asyncio.sleep(0.1)  # let the slot pick it up
                    await client.cancel(job_id, "r1")
                    result = await client.stream("r1", job_id)
                    stats = await _wait_for(
                        lambda: (server.scheduler.stats()
                                 if not server.scheduler.in_flight
                                 else None))
                    return result, stats

        result, stats = asyncio.run(scenario())
        assert result.status == protocol.STATUS_CANCELLED
        assert result.reason == protocol.REASON_CLIENT_CANCEL
        # The single cell never completed: the engine stopped mid-run.
        assert result.cells == []
        assert stats["cancelled"] == 1
        assert stats["completed"] == 0

    def test_cancel_removes_a_queued_job(self):
        async def scenario():
            async with serving(slots=1) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    # Fill the only slot, then queue a second job.
                    await client.submit(LONG_SPEC, "r1")
                    first = await client.recv()
                    await client.submit(TINY_SPEC, "r2")
                    second = await client.recv()
                    assert second["type"] == protocol.ACCEPTED
                    await client.cancel(second["job"], "r2")
                    ack = await client.recv()
                    assert ack["type"] == protocol.CANCELLING
                    done = await client.recv()
                    # Unblock the slot so teardown is quick.
                    await client.cancel(first["job"], "r1")
                    return done

        done = asyncio.run(scenario())
        assert done["type"] == protocol.DONE
        assert done["status"] == protocol.STATUS_CANCELLED
        assert done["reason"] == protocol.REASON_CLIENT_CANCEL
        assert done["service_s"] == 0.0  # never reached a worker slot

    def test_cancel_unknown_job_is_an_error_not_a_strike(self):
        async def scenario():
            async with serving() as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.send(protocol.cancel("no-such-job"))
                    reply = await client.recv()
                    # The connection must survive: racing a cancel
                    # against normal completion is not misbehaviour.
                    result = await client.run_job(TINY_SPEC, "r1")
                    return reply, result

        reply, result = asyncio.run(scenario())
        assert reply["type"] == protocol.ERROR
        assert result.status == "ok"

    def test_cancel_is_tenant_scoped(self):
        async def scenario():
            async with serving(cancel_check_every=1024) as server:
                alice = await ServeClient.connect(server.address, "alice")
                mallory = await ServeClient.connect(server.address, "mallory")
                try:
                    await alice.submit(LONG_SPEC, "r1")
                    accepted = await alice.recv()
                    job_id = accepted["job"]
                    # Another tenant's cancel must look exactly like a
                    # cancel of a job that does not exist.
                    await mallory.send(protocol.cancel(job_id))
                    refusal = await mallory.recv()
                    await mallory.send(protocol.job_status_request(job_id))
                    peek = await mallory.recv()
                    # The victim's job is still running and cancellable
                    # by its owner.
                    await alice.cancel(job_id, "r1")
                    result = await alice.stream("r1", job_id)
                    return refusal, peek, result
                finally:
                    await alice.close()
                    await mallory.close()

        refusal, peek, result = asyncio.run(scenario())
        assert refusal["type"] == protocol.ERROR
        assert peek["type"] == protocol.ERROR
        assert result.status == protocol.STATUS_CANCELLED


class TestDeadline:
    def test_submit_deadline_exceeded(self):
        async def scenario():
            async with serving(cancel_check_every=1024) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.submit(LONG_SPEC, "r1", deadline_s=0.05)
                    return await client.collect("r1")

        result = asyncio.run(scenario())
        assert result.status == protocol.STATUS_DEADLINE
        assert result.reason == protocol.STATUS_DEADLINE
        assert result.cells == []

    def test_server_default_deadline_applies(self):
        async def scenario():
            async with serving(cancel_check_every=1024,
                               default_deadline_s=0.05) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    return await client.run_job(LONG_SPEC, "r1")

        result = asyncio.run(scenario())
        assert result.status == protocol.STATUS_DEADLINE

    def test_generous_deadline_does_not_fire(self):
        async def scenario():
            async with serving() as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.submit(TINY_SPEC, "r1", deadline_s=60.0)
                    return await client.collect("r1")

        result = asyncio.run(scenario())
        assert result.status == "ok"


class TestJobStatus:
    def test_status_poll_shows_live_progress(self):
        async def scenario():
            async with serving(cancel_check_every=1024) as server:
                submitter = await ServeClient.connect(server.address, "alice")
                poller = await ServeClient.connect(server.address, "alice")
                try:
                    await submitter.submit(LONG_SPEC, "r1")
                    accepted = await submitter.recv()
                    job_id = accepted["job"]

                    async def running_status():
                        reply = await poller.job_status(job_id)
                        return (reply if reply["state"] ==
                                protocol.STATE_RUNNING and
                                reply["accesses_done"] > 0 else None)

                    status = None
                    for _ in range(200):
                        status = await running_status()
                        if status:
                            break
                        await asyncio.sleep(0.02)
                    await submitter.cancel(job_id, "r1")
                    await submitter.stream("r1", job_id)
                    return status
                finally:
                    await submitter.close()
                    await poller.close()

        status = asyncio.run(scenario())
        assert status is not None
        assert status["state"] == protocol.STATE_RUNNING
        assert 0 < status["accesses_done"] < LONG_SPEC["n_accesses"]
        assert status["of"] == 1

    def test_status_of_queued_job(self):
        async def scenario():
            async with serving(slots=1) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.submit(LONG_SPEC, "r1")
                    first = await client.recv()
                    await client.submit(TINY_SPEC, "r2")
                    second = await client.recv()
                    await client.send(
                        protocol.job_status_request(second["job"]))
                    status = await client.recv()
                    await client.cancel(second["job"], "r2")
                    await client.cancel(first["job"], "r1")
                    return status

        status = asyncio.run(scenario())
        assert status["type"] == protocol.JOB_STATUS
        assert status["state"] == protocol.STATE_QUEUED
        assert status["accesses_done"] == 0


class TestQuota:
    QUOTA = AdmissionConfig(quota_accesses=2_000, quota_window_s=3600.0)

    def test_quota_sheds_after_balance_spent(self):
        async def scenario():
            async with serving(admission=self.QUOTA) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    spec = {**TINY_SPEC, "degrees": [1, 2]}  # 2000 accesses
                    first = await client.run_job(spec, "r1")
                    second = await client.run_job(spec, "r2")
                    stats = await client.status()
                    return first, second, stats

        first, second, stats = asyncio.run(scenario())
        assert first.status == "ok"
        assert second.status == "shed"
        assert second.reason == "quota_exhausted"
        assert second.retry_after_s > 0.0
        tenant = stats["tenants"]["alice"]
        assert tenant["accesses_charged"] == 2_000
        assert tenant["quota_balance"] <= 0.0

    def test_oversized_job_is_cancelled_mid_run_by_quota(self):
        """A job whose estimate exceeds the whole quota is admitted
        (reservation capped at capacity) but live-metered: the watchdog
        cancels it once actual accesses overrun the balance."""
        async def scenario():
            quota = AdmissionConfig(quota_accesses=10_000,
                                    quota_window_s=3600.0)
            async with serving(admission=quota,
                               cancel_check_every=1024) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    result = await client.run_job(LONG_SPEC, "r1")
                    stats = await client.status()
                    return result, stats

        result, stats = asyncio.run(scenario())
        assert result.status == protocol.STATUS_QUOTA
        assert result.reason == protocol.STATUS_QUOTA
        assert result.cells == []
        tenant = stats["tenants"]["alice"]
        # Billed what actually ran — far less than the full trace —
        # and the balance is clamped, not infinitely negative.
        assert 0 < tenant["accesses_charged"] < LONG_SPEC["n_accesses"]
        assert tenant["quota_balance"] >= -10_000.0


class TestDisconnect:
    def test_cancel_on_disconnect_reaps_running_job(self):
        async def scenario():
            async with serving(cancel_check_every=1024,
                               cancel_on_disconnect=True) as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.submit(LONG_SPEC, "r1")
                accepted = await client.recv()
                assert accepted["type"] == protocol.ACCEPTED
                await asyncio.sleep(0.1)
                await client.close(polite=False)
                return await _wait_for(
                    lambda: (server.scheduler.stats()
                             if server.scheduler.stats()["cancelled"]
                             else None))

        stats = asyncio.run(scenario())
        assert stats["cancelled"] == 1
        assert stats["completed"] == 0

    def test_disconnect_without_optin_lets_job_finish(self):
        async def scenario():
            async with serving() as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.submit(TINY_SPEC, "r1")
                accepted = await client.recv()
                assert accepted["type"] == protocol.ACCEPTED
                await client.close(polite=False)
                return await _wait_for(
                    lambda: (server.scheduler.stats()
                             if server.scheduler.stats()["completed"]
                             else None))

        stats = asyncio.run(scenario())
        assert stats["completed"] == 1
        assert stats["cancelled"] == 0


class TestHardShutdown:
    def test_shutdown_now_sends_terminal_frames(self):
        """SIGTERM-style hard drain: running jobs get a terminal
        ``cancelled`` (reason ``server_shutdown``) frame, queued jobs
        too, and nothing is left in flight."""
        async def scenario():
            async with serving(slots=1, cancel_check_every=1024) as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.submit(LONG_SPEC, "r1")
                    running = await client.recv()
                    assert running["type"] == protocol.ACCEPTED
                    await client.submit(TINY_SPEC, "r2")
                    queued = await client.recv()
                    assert queued["type"] == protocol.ACCEPTED
                    await asyncio.sleep(0.1)
                    await server.shutdown_now()
                    frames = [await client.recv(), await client.recv()]
                    await _wait_for(
                        lambda: server.scheduler.in_flight == 0)
                    return frames, server.scheduler.stats()

        frames, stats = asyncio.run(scenario())
        by_job = {f["job"]: f for f in frames}
        assert len(by_job) == 2
        for frame in by_job.values():
            assert frame["type"] == protocol.DONE
            assert frame["status"] == protocol.STATUS_CANCELLED
            assert frame["reason"] == protocol.REASON_SERVER_SHUTDOWN
        assert stats["cancelled"] == 2
        assert stats["in_flight"] == 0
