"""Wire framing and JobSpec validation/lowering."""

import pytest

from repro.errors import ProtocolError
from repro.runner import Cell
from repro.runner.cells import cell_key
from repro.serve import JobSpec
from repro.serve import protocol


class TestFraming:
    def test_round_trip(self):
        msg = {"type": "submit", "id": "r1", "spec": {"workload": "oltp"}}
        assert protocol.decode_line(protocol.encode_message(msg)) == msg

    def test_decode_accepts_str(self):
        assert protocol.decode_line('{"type":"bye"}')["type"] == "bye"

    def test_oversize_frame_rejected(self):
        frame = b'{"type":"x","pad":"' + b"a" * protocol.MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_line(frame)

    @pytest.mark.parametrize("frame", [
        b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"just a string"\n',
        b'{"no_type": 1}\n', b'{"type": 7}\n', b"\xff\xfe\n",
    ])
    def test_bad_frames_rejected(self, frame):
        with pytest.raises(ProtocolError):
            protocol.decode_line(frame)

    def test_unserialisable_message_rejected(self):
        with pytest.raises(ProtocolError, match="unserialisable"):
            protocol.encode_message({"type": "x", "bad": object()})


class TestHandshake:
    def test_parse_hello_returns_tenant(self):
        assert protocol.parse_hello(protocol.hello("team-a")) == "team-a"

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="hello"):
            protocol.parse_hello({"type": "submit"})

    def test_version_mismatch_rejected(self):
        msg = protocol.hello("a", proto=protocol.PROTO_VERSION + 1)
        with pytest.raises(ProtocolError, match="version"):
            protocol.parse_hello(msg)

    @pytest.mark.parametrize("tenant", [
        "", "UPPER", "spa ce", "-leading", "x" * 65, 42, None,
    ])
    def test_bad_tenants_rejected(self, tenant):
        with pytest.raises(ProtocolError, match="tenant"):
            protocol.parse_hello({"type": "hello", "tenant": tenant,
                                  "proto": protocol.PROTO_VERSION})


class TestJobSpecValidation:
    def test_minimal_spec(self):
        spec = JobSpec.from_dict({"workload": "oltp"})
        assert spec.prefetcher == "domino"
        assert spec.degrees == (4,)

    def test_round_trip(self):
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [1, 8],
                                  "n_accesses": 2000, "seed": 9,
                                  "overrides": {"eit_assoc": 8}})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_degree_singular_alias(self):
        assert JobSpec.from_dict({"workload": "oltp", "degree": 2}).degrees == (2,)

    def test_degree_and_degrees_conflict(self):
        with pytest.raises(ProtocolError, match="both"):
            JobSpec.from_dict({"workload": "oltp", "degree": 2, "degrees": [2]})

    @pytest.mark.parametrize("patch", [
        {"workload": "no_such"},
        {"prefetcher": "no_such"},
        {"kind": "table1"},
        {"degrees": []},
        {"degrees": [0]},
        {"degrees": [65]},
        {"degrees": list(range(1, protocol.MAX_CELLS_PER_JOB + 2))},
        {"degrees": "4"},
        {"n_accesses": 10},
        {"n_accesses": 10**9},
        {"n_accesses": True},
        {"warmup_frac": 0.95},
        {"seed": -1},
        {"seed": 2**32},
        {"config_name": "huge"},
        {"overrides": {"not_a_field": 1}},
        {"overrides": {"eit_assoc": "8"}},
        {"overrides": [1, 2]},
        {"mystery_knob": 1},
    ])
    def test_invalid_specs_rejected(self, patch):
        with pytest.raises(ProtocolError):
            JobSpec.from_dict({"workload": "oltp", **patch})

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            JobSpec.from_dict(["workload"])

    def test_baseline_accepted_for_multicore(self):
        spec = JobSpec.from_dict({"workload": "oltp", "kind": "multicore",
                                  "prefetcher": "baseline"})
        assert spec.prefetcher == "baseline"


class TestCompile:
    def test_trace_spec_fans_one_cell_per_degree(self):
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [1, 4, 8],
                                  "n_accesses": 2000})
        cells, options = spec.compile()
        assert [c.degree for c in cells] == [1, 4, 8]
        assert all(c.kind == "trace" and c.workload == "oltp" for c in cells)
        assert options.n_accesses == 2000

    def test_compiled_cell_matches_hand_built_batch_cell(self):
        """Cache-key identity with the batch path, field for field."""
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [4],
                                  "n_accesses": 2000, "seed": 7})
        cells, options = spec.compile()
        batch = Cell(kind="trace", workload="oltp", prefetcher="domino",
                     degree=4, config_name="default", overrides=())
        assert cells[0] == batch
        assert cell_key(cells[0], options) == cell_key(batch, options)

    def test_explicit_degree_decouples_key_from_options_default(self):
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [4]})
        cells, options = spec.compile()
        assert cell_key(cells[0], options) == cell_key(
            cells[0], options.scaled(degree=13))

    def test_opportunity_single_cell(self):
        cells, _ = JobSpec.from_dict(
            {"workload": "oltp", "kind": "opportunity"}).compile()
        assert len(cells) == 1
        assert cells[0].kind == "opportunity"

    def test_multicore_defaults_to_timing_config(self):
        cells, _ = JobSpec.from_dict(
            {"workload": "oltp", "kind": "multicore"}).compile()
        assert cells[0].config_name == "timing"


class TestLifecycleFrames:
    def test_cancel_and_ack_builders(self):
        frame = protocol.cancel("j1", "r1")
        assert frame["type"] == protocol.CANCEL
        assert frame["job"] == "j1" and frame["id"] == "r1"
        ack = protocol.cancelling("j1", protocol.REASON_CLIENT_CANCEL, "r1")
        assert ack["type"] == protocol.CANCELLING
        assert ack["reason"] == protocol.REASON_CLIENT_CANCEL

    def test_job_status_round_trip(self):
        request = protocol.job_status_request("j1")
        assert request["type"] == protocol.JOB_STATUS
        reply = protocol.job_status("j1", protocol.STATE_RUNNING,
                                    accesses_done=4096, cells_done=1,
                                    n_cells=4)
        assert reply["state"] == protocol.STATE_RUNNING
        assert reply["accesses_done"] == 4096
        assert reply["cells_done"] == 1 and reply["of"] == 4

    def test_new_client_types_are_dispatchable(self):
        assert protocol.CANCEL in protocol.CLIENT_TYPES
        assert protocol.JOB_STATUS in protocol.CLIENT_TYPES

    def test_terminal_statuses(self):
        assert protocol.TERMINAL_STATUSES == {
            "ok", "failed", "cancelled", "deadline_exceeded",
            "quota_exhausted"}

    def test_submit_carries_lifecycle_options(self):
        spec = {"workload": "oltp"}
        plain = protocol.submit("r1", spec)
        assert "deadline_s" not in plain
        assert "cancel_on_disconnect" not in plain
        rich = protocol.submit("r1", spec, deadline_s=2.5,
                               cancel_on_disconnect=True)
        assert rich["deadline_s"] == 2.5
        assert rich["cancel_on_disconnect"] is True

    def test_parse_submit_deadline(self):
        assert protocol.parse_submit_deadline({"type": "submit"}) is None
        assert protocol.parse_submit_deadline(
            {"type": "submit", "deadline_s": 1.5}) == 1.5
        for bad in (0, -1.0, "soon", True):
            with pytest.raises(ProtocolError):
                protocol.parse_submit_deadline(
                    {"type": "submit", "deadline_s": bad})

    def test_parse_submit_cancel_on_disconnect(self):
        assert protocol.parse_submit_cancel_on_disconnect(
            {"type": "submit"}) is None
        assert protocol.parse_submit_cancel_on_disconnect(
            {"type": "submit", "cancel_on_disconnect": False}) is False
        for bad in (1, "yes", 0):
            with pytest.raises(ProtocolError):
                protocol.parse_submit_cancel_on_disconnect(
                    {"type": "submit", "cancel_on_disconnect": bad})

    def test_done_reason_is_optional(self):
        plain = protocol.done("r1", "j1", "ok", 1, 0, 0.1, 0.2)
        assert "reason" not in plain
        cancelled = protocol.done("r1", "j1", protocol.STATUS_CANCELLED,
                                  0, 0, 0.1, 0.2,
                                  reason=protocol.REASON_CLIENT_CANCEL)
        assert cancelled["reason"] == protocol.REASON_CLIENT_CANCEL

    def test_estimated_accesses(self):
        trace = JobSpec(workload="oltp", n_accesses=2_000, degrees=[1, 2, 4])
        assert trace.estimated_accesses == 6_000
        opportunity = JobSpec(workload="oltp", kind="opportunity",
                              n_accesses=2_000)
        assert opportunity.estimated_accesses == 2_000
