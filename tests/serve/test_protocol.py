"""Wire framing and JobSpec validation/lowering."""

import pytest

from repro.errors import ProtocolError
from repro.runner import Cell
from repro.runner.cells import cell_key
from repro.serve import JobSpec
from repro.serve import protocol


class TestFraming:
    def test_round_trip(self):
        msg = {"type": "submit", "id": "r1", "spec": {"workload": "oltp"}}
        assert protocol.decode_line(protocol.encode_message(msg)) == msg

    def test_decode_accepts_str(self):
        assert protocol.decode_line('{"type":"bye"}')["type"] == "bye"

    def test_oversize_frame_rejected(self):
        frame = b'{"type":"x","pad":"' + b"a" * protocol.MAX_LINE_BYTES + b'"}'
        with pytest.raises(ProtocolError, match="exceeds"):
            protocol.decode_line(frame)

    @pytest.mark.parametrize("frame", [
        b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"just a string"\n',
        b'{"no_type": 1}\n', b'{"type": 7}\n', b"\xff\xfe\n",
    ])
    def test_bad_frames_rejected(self, frame):
        with pytest.raises(ProtocolError):
            protocol.decode_line(frame)

    def test_unserialisable_message_rejected(self):
        with pytest.raises(ProtocolError, match="unserialisable"):
            protocol.encode_message({"type": "x", "bad": object()})


class TestHandshake:
    def test_parse_hello_returns_tenant(self):
        assert protocol.parse_hello(protocol.hello("team-a")) == "team-a"

    def test_wrong_type_rejected(self):
        with pytest.raises(ProtocolError, match="hello"):
            protocol.parse_hello({"type": "submit"})

    def test_version_mismatch_rejected(self):
        msg = protocol.hello("a", proto=protocol.PROTO_VERSION + 1)
        with pytest.raises(ProtocolError, match="version"):
            protocol.parse_hello(msg)

    @pytest.mark.parametrize("tenant", [
        "", "UPPER", "spa ce", "-leading", "x" * 65, 42, None,
    ])
    def test_bad_tenants_rejected(self, tenant):
        with pytest.raises(ProtocolError, match="tenant"):
            protocol.parse_hello({"type": "hello", "tenant": tenant,
                                  "proto": protocol.PROTO_VERSION})


class TestJobSpecValidation:
    def test_minimal_spec(self):
        spec = JobSpec.from_dict({"workload": "oltp"})
        assert spec.prefetcher == "domino"
        assert spec.degrees == (4,)

    def test_round_trip(self):
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [1, 8],
                                  "n_accesses": 2000, "seed": 9,
                                  "overrides": {"eit_assoc": 8}})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_degree_singular_alias(self):
        assert JobSpec.from_dict({"workload": "oltp", "degree": 2}).degrees == (2,)

    def test_degree_and_degrees_conflict(self):
        with pytest.raises(ProtocolError, match="both"):
            JobSpec.from_dict({"workload": "oltp", "degree": 2, "degrees": [2]})

    @pytest.mark.parametrize("patch", [
        {"workload": "no_such"},
        {"prefetcher": "no_such"},
        {"kind": "table1"},
        {"degrees": []},
        {"degrees": [0]},
        {"degrees": [65]},
        {"degrees": list(range(1, protocol.MAX_CELLS_PER_JOB + 2))},
        {"degrees": "4"},
        {"n_accesses": 10},
        {"n_accesses": 10**9},
        {"n_accesses": True},
        {"warmup_frac": 0.95},
        {"seed": -1},
        {"seed": 2**32},
        {"config_name": "huge"},
        {"overrides": {"not_a_field": 1}},
        {"overrides": {"eit_assoc": "8"}},
        {"overrides": [1, 2]},
        {"mystery_knob": 1},
    ])
    def test_invalid_specs_rejected(self, patch):
        with pytest.raises(ProtocolError):
            JobSpec.from_dict({"workload": "oltp", **patch})

    def test_non_dict_rejected(self):
        with pytest.raises(ProtocolError, match="object"):
            JobSpec.from_dict(["workload"])

    def test_baseline_accepted_for_multicore(self):
        spec = JobSpec.from_dict({"workload": "oltp", "kind": "multicore",
                                  "prefetcher": "baseline"})
        assert spec.prefetcher == "baseline"


class TestCompile:
    def test_trace_spec_fans_one_cell_per_degree(self):
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [1, 4, 8],
                                  "n_accesses": 2000})
        cells, options = spec.compile()
        assert [c.degree for c in cells] == [1, 4, 8]
        assert all(c.kind == "trace" and c.workload == "oltp" for c in cells)
        assert options.n_accesses == 2000

    def test_compiled_cell_matches_hand_built_batch_cell(self):
        """Cache-key identity with the batch path, field for field."""
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [4],
                                  "n_accesses": 2000, "seed": 7})
        cells, options = spec.compile()
        batch = Cell(kind="trace", workload="oltp", prefetcher="domino",
                     degree=4, config_name="default", overrides=())
        assert cells[0] == batch
        assert cell_key(cells[0], options) == cell_key(batch, options)

    def test_explicit_degree_decouples_key_from_options_default(self):
        spec = JobSpec.from_dict({"workload": "oltp", "degrees": [4]})
        cells, options = spec.compile()
        assert cell_key(cells[0], options) == cell_key(
            cells[0], options.scaled(degree=13))

    def test_opportunity_single_cell(self):
        cells, _ = JobSpec.from_dict(
            {"workload": "oltp", "kind": "opportunity"}).compile()
        assert len(cells) == 1
        assert cells[0].kind == "opportunity"

    def test_multicore_defaults_to_timing_config(self):
        cells, _ = JobSpec.from_dict(
            {"workload": "oltp", "kind": "multicore"}).compile()
        assert cells[0].config_name == "timing"
