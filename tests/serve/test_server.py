"""End-to-end server behaviour over real sockets.

Includes the PR's headline guarantee: a served job's payloads are
bit-identical to what the batch path computes for the same spec, and
serving warms the same artifact store the batch CLI reads.
"""

import asyncio

import pytest

from repro import obs
from repro.errors import ProtocolError
from repro.obs.names import EVENT_NAMES, METRIC_NAMES
from repro.runner import ExecutionPolicy, run_cells
from repro.serve import AdmissionConfig, JobSpec, ServeClient
from repro.serve import protocol
from repro.serve.client import parse_address

from .conftest import TINY_SPEC, serving

#: A job slow enough (4 small cells) to hold a worker slot while the
#: test piles more submits behind it.
SLOW_SPEC = {**TINY_SPEC, "degrees": [1, 2, 3, 4], "n_accesses": 20_000}


def test_parse_address_forms():
    assert parse_address("unix:/tmp/x.sock") == ("/tmp/x.sock", "", 0)
    assert parse_address("127.0.0.1:8000") == (None, "127.0.0.1", 8000)
    assert parse_address("[::1]:9000") == (None, "::1", 9000)
    assert parse_address("[fe80::1%eth0]:9000") == (None, "fe80::1%eth0", 9000)
    for bad in ("unix:", "nohost", "host:notaport", "host:", ":8000",
                "[::1]", "[::1]:", "[::1:9000", "[]:9000", "::1:9000",
                "host:-1", "host:0", "host:70000", "host:80_0", "host: 80"):
        with pytest.raises(ProtocolError):
            parse_address(bad)


class TestRoundTrip:
    def test_single_job_streams_cells_then_done(self):
        async def scenario():
            async with serving() as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    spec = {**TINY_SPEC, "degrees": [1, 2]}
                    return await client.run_job(spec, "r1")

        result = asyncio.run(scenario())
        assert result.accepted and result.status == "ok"
        assert [c.seq for c in result.cells] == [0, 1]
        assert all(c.status == "ok" for c in result.cells)
        assert all(p and "accuracy" in p or p for p in result.payloads)

    def test_unix_socket_transport(self, tmp_path):
        async def scenario():
            path = str(tmp_path / "d.sock")
            async with serving(path=path) as server:
                assert server.address == f"unix:{path}"
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    return await client.run_job(TINY_SPEC, "r1")

        assert asyncio.run(scenario()).status == "ok"

    def test_status_counts_and_stats_shape(self):
        async def scenario():
            async with serving() as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    await client.run_job(TINY_SPEC, "r1")
                    return await client.status()

        stats = asyncio.run(scenario())
        assert stats["admitted"] == 1
        assert stats["completed"] == 1
        assert stats["tenants"]["alice"]["completed"] == 1
        assert "uptime_s" in stats


class TestBitIdentity:
    def test_served_equals_batch_payloads(self):
        """Same spec through the wire == run_cells in-process, exactly."""
        spec = {**TINY_SPEC, "degrees": [1, 4], "n_accesses": 2000}

        async def scenario():
            async with serving() as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    return await client.run_job(spec, "r1")

        served = asyncio.run(scenario())
        cells, options = JobSpec.from_dict(spec).compile()
        batch_payloads, manifest = run_cells(
            cells, options, ExecutionPolicy(jobs=1, use_cache=False))
        assert manifest.failed == 0
        assert served.payloads == batch_payloads

    def test_serving_warms_the_shared_store(self):
        """A served job's artifacts are cache hits for the batch path."""
        spec = {**TINY_SPEC, "degrees": [2], "n_accesses": 2000}

        async def scenario():
            async with serving() as server:
                async with await ServeClient.connect(
                        server.address, "alice") as client:
                    return await client.run_job(spec, "r1")

        served = asyncio.run(scenario())
        assert served.status == "ok"
        cells, options = JobSpec.from_dict(spec).compile()
        payloads, manifest = run_cells(
            cells, options, ExecutionPolicy(jobs=1, use_cache=True))
        assert manifest.hits == len(cells)
        assert payloads == served.payloads


class TestProtocolErrors:
    def test_malformed_frame_keeps_connection_usable(self):
        async def scenario():
            async with serving() as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.send_raw(b"}{ definitely not json\n")
                error = await client.recv()
                result = await client.run_job(TINY_SPEC, "r1")
                await client.close()
                return error, result

        error, result = asyncio.run(scenario())
        assert error["type"] == protocol.ERROR
        assert result.status == "ok"

    def test_invalid_spec_is_answered_not_fatal(self):
        async def scenario():
            async with serving() as server:
                client = await ServeClient.connect(server.address, "alice")
                bad = await client.run_job({"workload": "no_such"}, "r1")
                good = await client.run_job(TINY_SPEC, "r2")
                await client.close()
                return bad, good

        bad, good = asyncio.run(scenario())
        assert bad.status == "error" and "no_such" in bad.reason
        assert good.status == "ok"

    def test_server_only_type_from_client_is_error(self):
        async def scenario():
            async with serving() as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.send({"type": protocol.ACCEPTED})
                reply = await client.recv()
                await client.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["type"] == protocol.ERROR
        assert "unexpected" in reply["error"]

    def test_submit_without_id_is_error(self):
        async def scenario():
            async with serving() as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.send({"type": protocol.SUBMIT,
                                   "spec": dict(TINY_SPEC)})
                reply = await client.recv()
                await client.close()
                return reply

        assert "id" in asyncio.run(scenario())["error"]

    def test_handshake_rejects_wrong_proto(self):
        async def scenario():
            async with serving() as server:
                _, host, port = parse_address(server.address)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(protocol.encode_message(
                    protocol.hello("alice", proto=99)))
                await writer.drain()
                reply = protocol.decode_line(await reader.readline())
                writer.close()
                return reply

        reply = asyncio.run(scenario())
        assert reply["type"] == protocol.ERROR
        assert "version" in reply["error"]

    def test_oversized_job_is_rejected_at_submit(self):
        async def scenario():
            async with serving(max_cells_per_job=2) as server:
                client = await ServeClient.connect(server.address, "alice")
                result = await client.run_job(
                    {**TINY_SPEC, "degrees": [1, 2, 3]}, "r1")
                await client.close()
                return result

        result = asyncio.run(scenario())
        assert result.status == "error" and "caps" in result.reason


class TestAdmissionOverSockets:
    def test_saturation_sheds_with_retry_hint_and_admitted_complete(self):
        """Sheds happen at admission only; admitted jobs always finish."""
        async def scenario():
            admission = AdmissionConfig(max_queued_per_tenant=1)
            async with serving(slots=1, admission=admission) as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.submit(SLOW_SPEC, "r1")   # occupies the slot
                first = await client.recv()
                await client.submit(TINY_SPEC, "r2")   # fills the queue
                second = await client.recv()
                await client.submit(TINY_SPEC, "r3")   # over the bound
                third = await client.recv()
                done1 = await client.stream("r1")
                done2 = await client.stream("r2")
                await client.close()
                return first, second, third, done1, done2

        first, second, third, done1, done2 = asyncio.run(scenario())
        assert first["type"] == protocol.ACCEPTED
        assert second["type"] == protocol.ACCEPTED
        assert third["type"] == protocol.SHED
        assert third["reason"] == "tenant_queue_full"
        assert third["retry_after_s"] > 0
        assert done1.status == "ok" and len(done1.cells) == 4
        assert done2.status == "ok"

    def test_client_surfaces_deterministic_escalating_retry_hints(self):
        """Consecutive sheds walk the deterministic backoff curve, and
        the client hands the hint through unchanged."""
        from repro.backoff import backoff_delay
        from repro.serve.scheduler import SHED_SALT

        async def scenario():
            admission = AdmissionConfig(max_queued_per_tenant=1)
            async with serving(slots=1, admission=admission) as server:
                client = await ServeClient.connect(server.address, "alice")
                probe = await ServeClient.connect(server.address, "alice")
                await client.submit(SLOW_SPEC, "r1")   # occupies the slot
                await client.recv()
                await client.submit(TINY_SPEC, "r2")   # fills the queue
                await client.recv()
                sheds = [await probe.run_job(TINY_SPEC, f"s{i}")
                         for i in range(3)]
                await probe.close()
                await client.stream("r1")
                await client.stream("r2")
                await client.close()
                return sheds, server.config.admission

        sheds, admission = asyncio.run(scenario())
        assert all(not s.accepted and s.status == "shed" for s in sheds)
        expected = [backoff_delay("alice", streak,
                                  base_s=admission.shed_base_s,
                                  max_s=admission.shed_max_s, salt=SHED_SALT)
                    for streak in range(3)]
        # The wire format rounds the hint; the curve must still match.
        assert [s.retry_after_s for s in sheds] == pytest.approx(
            expected, abs=1e-4)

    def test_drain_completes_running_jobs_and_sheds_new_ones(self):
        async def scenario():
            async with serving(slots=1) as server:
                client = await ServeClient.connect(server.address, "alice")
                await client.submit(SLOW_SPEC, "r1")
                accepted = await client.recv()
                admin = await ServeClient.connect(server.address, "admin")
                await admin.shutdown()
                shed = await client.run_job(TINY_SPEC, "r2")
                result = await client.stream("r1")
                await client.close()
                await admin.close()
                await asyncio.wait_for(server.serve_forever(), timeout=30)
                return accepted, shed, result

        accepted, shed, result = asyncio.run(scenario())
        assert accepted["type"] == protocol.ACCEPTED
        assert shed.status == "shed" and shed.reason == "stopping"
        assert result.status == "ok" and len(result.cells) == 4

    def test_remote_shutdown_can_be_disabled(self):
        async def scenario():
            async with serving(allow_remote_shutdown=False) as server:
                client = await ServeClient.connect(server.address, "admin")
                try:
                    await client.shutdown()
                except ProtocolError as exc:
                    return str(exc)
                finally:
                    await client.close()
                return None

        assert "disabled" in asyncio.run(scenario())


class TestObsInstrumentation:
    def test_serve_events_and_metrics_are_registered(self):
        """Every name the server emits exists in the obs registry."""
        # info level: the engine's per-access debug events would
        # overflow the trace ring and evict the serve events under test.
        obs.configure(level=obs.parse_level("info"))
        try:
            async def scenario():
                admission = AdmissionConfig(max_queued_per_tenant=1)
                async with serving(slots=1, admission=admission) as server:
                    client = await ServeClient.connect(server.address, "alice")
                    await client.submit(SLOW_SPEC, "r1")
                    await client.recv()
                    await client.submit(TINY_SPEC, "r2")
                    await client.recv()
                    await client.submit(TINY_SPEC, "r3")  # shed
                    await client.recv()
                    await client.send_raw(b"garbage\n")   # malformed
                    await client.recv()
                    await client.stream("r1")
                    await client.stream("r2")
                    await client.close()

            asyncio.run(scenario())
            state = obs.state()
            events = [e for e in state.trace.events()
                      if str(e.get("component", "")).startswith("serve.")]
            names = {e["event"] for e in events}
            assert names <= EVENT_NAMES
            for expected in ("server_start", "client_connect", "job_admitted",
                             "job_shed", "job_started", "job_completed",
                             "request_malformed", "client_disconnect",
                             "server_stop"):
                assert expected in names, expected
            metrics = state.registry.snapshot()
            counters = metrics.get("counters", metrics)
            for name, want in (("serve.server.jobs_admitted", 2),
                               ("serve.server.jobs_completed", 2),
                               ("serve.server.jobs_shed", 1),
                               ("serve.server.requests_malformed", 1)):
                assert counters.get(name) == want, (name, counters)
            histograms = metrics.get("histograms", {})
            assert any(k.startswith("serve.tenant.alice.") for k in histograms)
            bare = {k.rpartition(".")[2]
                    for k in list(counters) + list(histograms)
                    if k.startswith("serve.")}
            assert bare <= METRIC_NAMES
        finally:
            obs.disable()
