"""Pure WFQ + admission-control semantics (no server, no sockets)."""

import pytest

from repro.errors import ServeError
from repro.serve import AdmissionConfig, FairScheduler, JobSpec
from repro.serve.scheduler import (
    REASON_SERVER_SATURATED,
    REASON_STOPPING,
    REASON_TENANT_QUEUE_FULL,
    Job,
)

SPEC = JobSpec(workload="oltp")


def job(tenant: str, n: int = 0) -> Job:
    return Job(job_id=f"{tenant}-{n}", request_id=f"r{n}", tenant=tenant,
               spec=SPEC, cells=[], options=None)


def drain_order(sched: FairScheduler, service_s=1.0) -> list[str]:
    """Run the queue serially, returning the tenant dispatch order."""
    order = []
    while sched.has_work():
        picked = sched.next_job()
        order.append(picked.tenant)
        sched.finish(picked, service_s=service_s)
    return order


class TestAdmissionBounds:
    def test_global_cap_sheds(self):
        sched = FairScheduler(AdmissionConfig(max_queued_total=2,
                                              max_queued_per_tenant=8))
        assert sched.submit(job("a", 0)).accepted
        assert sched.submit(job("b", 1)).accepted
        result = sched.submit(job("c", 2))
        assert not result.accepted
        assert result.reason == REASON_SERVER_SATURATED
        assert result.retry_after_s > 0

    def test_tenant_cap_sheds_before_global(self):
        sched = FairScheduler(AdmissionConfig(max_queued_total=64,
                                              max_queued_per_tenant=1))
        assert sched.submit(job("a", 0)).accepted
        result = sched.submit(job("a", 1))
        assert result.reason == REASON_TENANT_QUEUE_FULL
        assert sched.submit(job("b", 2)).accepted  # other tenants unaffected

    def test_draining_sheds_everything(self):
        sched = FairScheduler()
        sched.draining = True
        assert sched.submit(job("a")).reason == REASON_STOPPING

    def test_retry_after_is_deterministic_and_escalates(self):
        def shed_twice():
            sched = FairScheduler(AdmissionConfig(max_queued_per_tenant=1))
            sched.submit(job("a", 0))
            return [sched.submit(job("a", i)).retry_after_s
                    for i in (1, 2, 3, 4)]

        first, second = shed_twice(), shed_twice()
        assert first == second  # same streak -> same hints
        assert first[-1] > first[0]  # exponential escalation wins out

    def test_admit_resets_shed_streak(self):
        sched = FairScheduler(AdmissionConfig(max_queued_per_tenant=1))
        sched.submit(job("a", 0))
        hint_before = sched.submit(job("a", 1)).retry_after_s
        picked = sched.next_job()
        sched.finish(picked, service_s=1.0)
        sched.submit(job("a", 2))  # admitted: streak resets
        hint_after = sched.submit(job("a", 3)).retry_after_s
        assert hint_after == hint_before

    def test_config_validation(self):
        with pytest.raises(ServeError):
            AdmissionConfig(max_queued_total=0)
        with pytest.raises(ServeError):
            AdmissionConfig(shed_base_s=-1)
        with pytest.raises(ServeError):
            FairScheduler(weights={"a": 0.0})
        with pytest.raises(ServeError):
            FairScheduler(default_weight=-1)


class TestFairQueueing:
    def test_equal_weights_alternate(self):
        sched = FairScheduler()
        for i in range(3):
            sched.submit(job("a", i))
            sched.submit(job("b", i))
        assert drain_order(sched) == ["a", "b", "a", "b", "a", "b"]

    def test_weighted_tenant_gets_proportional_share(self):
        sched = FairScheduler(weights={"heavy": 2.0})
        for i in range(8):
            sched.submit(job("heavy", i))
            sched.submit(job("light", i + 100))
        order = drain_order(sched)[:6]
        # weight 2 earns two dispatches per one of weight 1
        assert order.count("heavy") == 4
        assert order.count("light") == 2

    def test_ties_break_on_name_deterministically(self):
        sched = FairScheduler()
        sched.submit(job("zeta", 0))
        sched.submit(job("alpha", 1))
        assert drain_order(sched) == ["alpha", "zeta"]

    def test_idle_return_does_not_bank_credit(self):
        sched = FairScheduler()
        # "a" works alone for a long while...
        for i in range(5):
            sched.submit(job("a", i))
        drain_order(sched, service_s=10.0)
        # ...then "b" arrives. Without the idle-return clamp, b's vtime
        # of 0 would let it monopolise the next 50 service-seconds.
        sched.submit(job("b", 0))
        sched.submit(job("a", 5))
        sched.submit(job("b", 1))
        sched.submit(job("a", 6))
        assert drain_order(sched) == ["a", "b", "a", "b"]

    def test_in_flight_cap_yields_to_other_tenants(self):
        sched = FairScheduler(AdmissionConfig(max_in_flight_per_tenant=1))
        sched.submit(job("a", 0))
        sched.submit(job("a", 1))
        sched.submit(job("b", 0))
        first = sched.next_job()
        assert first.tenant == "a"
        # "a" is at its in-flight cap: the next slot must go to "b",
        # and with "b" also busy there is nothing eligible at all.
        second = sched.next_job()
        assert second.tenant == "b"
        assert sched.next_job() is None
        sched.finish(first, service_s=1.0)
        assert sched.next_job().tenant == "a"

    def test_finish_without_in_flight_raises(self):
        sched = FairScheduler()
        with pytest.raises(ServeError, match="nothing in flight"):
            sched.finish(job("a"), service_s=1.0)


class TestStats:
    def test_totals_and_per_tenant_counters(self):
        sched = FairScheduler(AdmissionConfig(max_queued_per_tenant=1))
        sched.submit(job("a", 0))
        sched.submit(job("a", 1))  # shed
        picked = sched.next_job()
        sched.finish(picked, service_s=2.0, wait_s=0.5, ok=False)
        stats = sched.stats()
        assert stats["admitted"] == 1
        assert stats["shed"] == 1
        assert stats["failed"] == 1
        assert stats["completed"] == 0
        assert stats["queue_depth"] == 0
        tenant = stats["tenants"]["a"]
        assert tenant["served_s"] == 2.0
        assert tenant["waited_s"] == 0.5


class TestQuota:
    """Token-bucket quota metered in simulated accesses, pure clock-in."""

    SMALL = JobSpec(workload="oltp", n_accesses=1_000, degrees=[1])

    def quota_job(self, tenant, n=0, spec=None):
        spec = spec or self.SMALL
        return Job(job_id=f"{tenant}-{n}", request_id=f"r{n}", tenant=tenant,
                   spec=spec, cells=[], options=None)

    def sched(self, capacity=1_000, window_s=10.0, **kwargs):
        return FairScheduler(AdmissionConfig(
            quota_accesses=capacity, quota_window_s=window_s, **kwargs))

    def test_disabled_by_default(self):
        sched = FairScheduler()
        assert not sched.quota_enabled
        assert not sched.overdrawn(job("a"), accesses_done=10**9)

    def test_config_validation(self):
        with pytest.raises(ServeError):
            AdmissionConfig(quota_accesses=-1)
        with pytest.raises(ServeError):
            AdmissionConfig(quota_window_s=0.0)

    def test_reservation_tracks_estimate(self):
        sched = self.sched(capacity=5_000)
        first = self.quota_job("a", 0)
        assert sched.submit(first, now=0.0).accepted
        assert first.reserved_accesses == 1_000
        assert sched.tenant("a").reserved_accesses == 1_000

    def test_oversized_estimate_reserves_at_most_capacity(self):
        sched = self.sched(capacity=1_000)
        big = self.quota_job(
            "a", 0, JobSpec(workload="oltp", n_accesses=500_000, degrees=[1]))
        assert sched.submit(big, now=0.0).accepted
        assert big.reserved_accesses == 1_000

    def test_spent_balance_sheds_with_honest_hint(self):
        sched = self.sched(capacity=1_000, window_s=10.0)
        first = self.quota_job("a", 0)
        sched.submit(first, now=0.0)
        picked = sched.next_job()
        sched.finish(picked, service_s=0.1, accesses_done=1_000, now=0.0)
        shed = sched.submit(self.quota_job("a", 1), now=0.0)
        assert not shed.accepted
        assert shed.reason == "quota_exhausted"
        # Deficit is the full 1000-access reservation at 100/s refill.
        assert shed.retry_after_s == pytest.approx(10.0)

    def test_quota_sheds_do_not_escalate_backoff(self):
        sched = self.sched(capacity=1_000, window_s=10.0)
        sched.submit(self.quota_job("a", 0), now=0.0)
        picked = sched.next_job()
        sched.finish(picked, service_s=0.1, accesses_done=1_000, now=0.0)
        hints = [sched.submit(self.quota_job("a", n), now=0.0).retry_after_s
                 for n in range(1, 4)]
        assert hints[0] == hints[1] == hints[2]
        assert sched.tenant("a").shed_streak == 0

    def test_refill_restores_admission(self):
        sched = self.sched(capacity=1_000, window_s=10.0)
        sched.submit(self.quota_job("a", 0), now=0.0)
        sched.finish(sched.next_job(), service_s=0.1, accesses_done=1_000,
                     now=0.0)
        assert not sched.submit(self.quota_job("a", 1), now=0.0).accepted
        # One full window later the bucket is back at capacity.
        assert sched.submit(self.quota_job("a", 2), now=10.0).accepted

    def test_overdrawn_tolerates_overrun_within_balance(self):
        sched = self.sched(capacity=5_000)
        first = self.quota_job("a", 0)
        sched.submit(first, now=0.0)
        picked = sched.next_job()
        # Reservation is 1000; balance holds 5000 with 1000 reserved, so
        # up to 4000 of uncommitted balance absorbs overrun.
        assert not sched.overdrawn(picked, accesses_done=1_000, now=0.0)
        assert not sched.overdrawn(picked, accesses_done=4_900, now=0.0)
        assert sched.overdrawn(picked, accesses_done=5_100, now=0.0)

    def test_finish_charges_actuals_and_clamps(self):
        sched = self.sched(capacity=1_000)
        big = self.quota_job(
            "a", 0, JobSpec(workload="oltp", n_accesses=500_000, degrees=[1]))
        sched.submit(big, now=0.0)
        picked = sched.next_job()
        sched.finish(picked, service_s=0.5, cancelled=True,
                     accesses_done=9_000, now=0.0)
        tenant = sched.tenant("a")
        assert tenant.reserved_accesses == 0
        assert tenant.accesses_charged == 9_000
        assert tenant.quota_balance == -1_000.0  # clamped at -capacity
        assert tenant.cancelled == 1
        assert tenant.completed == 0

    def test_cancel_queued_releases_reservation(self):
        sched = self.sched(capacity=5_000)
        first = self.quota_job("a", 0)
        second = self.quota_job("a", 1)
        sched.submit(first, now=0.0)
        sched.submit(second, now=0.0)
        assert sched.tenant("a").reserved_accesses == 2_000
        removed = sched.cancel_queued(second.job_id)
        assert removed is second
        assert sched.tenant("a").reserved_accesses == 1_000
        assert sched.tenant("a").cancelled == 1
        assert sched.cancel_queued("nope") is None

    def test_cancelled_jobs_count_separately_in_stats(self):
        sched = FairScheduler()
        sched.submit(job("a", 0))
        picked = sched.next_job()
        sched.finish(picked, service_s=0.1, cancelled=True)
        stats = sched.stats()
        assert stats["cancelled"] == 1
        assert stats["completed"] == 0 and stats["failed"] == 0
