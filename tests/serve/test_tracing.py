"""Concurrent serving under full tracing: isolation, spans, stats.

PR 6 shipped the server with a caveat: telemetry was process-global,
so ``--slots`` beyond one could interleave tenants' events.  These
tests pin the retirement of that caveat — four slots, four tenants,
tracing on, and every absorbed event/span attributable to exactly one
tenant — plus the live stats plane (``status`` body and the Prometheus
``metrics`` frame).
"""

import asyncio

from repro import obs
from repro.obs.names import METRIC_NAMES
from repro.obs.trace import read_spans, validate_forest
from repro.runner import ExecutionPolicy, run_cells
from repro.serve import JobSpec, ServeClient

from .conftest import TINY_SPEC, serving

TENANTS = ("alice", "bob", "carol", "dave")


def tenant_spec(i: int) -> dict:
    """A spec distinguishable per tenant (different degree sweep)."""
    return {**TINY_SPEC, "degrees": [i + 1]}


async def _serve_four_concurrent(server):
    """All four tenants submit at once; returns tenant -> JobResult."""
    async def one(i, tenant):
        async with await ServeClient.connect(server.address,
                                             tenant) as client:
            return tenant, await client.run_job(tenant_spec(i), f"r-{tenant}")

    pairs = await asyncio.gather(*(one(i, t) for i, t in enumerate(TENANTS)))
    return dict(pairs)


class TestConcurrentTracingIsolation:
    def test_four_slots_traced_no_cross_tenant_leakage(self):
        obs.configure(level=obs.parse_level("debug"))
        try:
            async def scenario():
                async with serving(slots=4) as server:
                    return await _serve_four_concurrent(server)

            results = asyncio.run(scenario())
            assert all(r.status == "ok" for r in results.values())
            job_owner = {r.job_id: tenant
                         for tenant, r in results.items()}

            state = obs.state()
            events = state.trace.events()
            # Every absorbed event that names a job names its owner's
            # tenant — zero cross-tenant leakage.
            tagged = [e for e in events if "job" in e and "tenant" in e]
            assert tagged, "no tenant-tagged events absorbed"
            for event in tagged:
                assert job_owner[event["job"]] == event["tenant"], event
            # Every tenant's work actually produced events.
            assert {e["tenant"] for e in tagged} == set(TENANTS)

            # The span forest is sound: one trace per connection, each
            # tenant's cells under its own job span.
            spans = state.spans.spans()
            assert validate_forest(spans) == []
            conn_spans = [s for s in spans if s["name"] == "serve.connection"]
            assert len(conn_spans) == len(TENANTS)
            assert len({s["trace"] for s in conn_spans}) == len(TENANTS)
            by_id = {s["span"]: s for s in spans}

            def owning_trace_tenant(record):
                node = record
                while node.get("parent") is not None:
                    node = by_id[node["parent"]]
                return node["attrs"]["tenant"]

            for cell_span in (s for s in spans if s["name"] == "serve.cell"):
                job = by_id[cell_span["parent"]]
                assert job["name"] == "serve.job"
                assert owning_trace_tenant(cell_span) \
                    == job["attrs"]["tenant"]
            # Worker-side spans were reparented into the tenants' traces.
            cell_spans = [s for s in spans if s["name"] == "runner.cell"]
            assert cell_spans
            assert {owning_trace_tenant(s) for s in cell_spans} \
                == set(TENANTS)
        finally:
            obs.disable()

    def test_traced_results_bit_identical_to_untraced_batch(self):
        obs.configure(level=obs.parse_level("info"))
        try:
            async def scenario():
                async with serving(slots=4) as server:
                    return await _serve_four_concurrent(server)

            results = asyncio.run(scenario())
        finally:
            obs.disable()
        policy = ExecutionPolicy(jobs=1, use_cache=False)
        for i, tenant in enumerate(TENANTS):
            cells, options = JobSpec.from_dict(tenant_spec(i)).compile()
            batch_payloads, manifest = run_cells(cells, options, policy)
            assert manifest.failed == 0
            assert results[tenant].payloads == batch_payloads, tenant


class TestStatsPlane:
    def test_status_body_and_metrics_frame(self):
        obs.configure(level=obs.parse_level("info"))
        try:
            async def scenario():
                async with serving(slots=2) as server:
                    client = await ServeClient.connect(server.address,
                                                       "alice")
                    await client.run_job(TINY_SPEC, "r1")
                    stats = await client.status()
                    metrics = await client.metrics()
                    await client.close()
                    return stats, metrics

            stats, metrics = asyncio.run(scenario())
        finally:
            obs.disable()

        assert stats["uptime_s"] >= 0
        assert stats["in_flight_jobs"] == []
        assert "alice" in stats["tenants"]
        # Registry metrics ride along, registered names only.
        for kind in ("counters", "gauges"):
            for name in stats["metrics"][kind]:
                assert name.rpartition(".")[2] in METRIC_NAMES, name
        assert stats["metrics"]["counters"]["serve.server.jobs_admitted"] == 1

        assert metrics["content_type"].startswith("text/plain")
        text = metrics["text"]
        assert "# TYPE domino_serve_server_jobs_admitted counter" in text
        assert "domino_serve_server_uptime_s" in text
        assert 'domino_serve_tenant_vtime{tenant="alice"}' in text
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            assert line.startswith("domino_"), line

    def test_metrics_frame_works_untraced(self):
        """The exposition degrades gracefully with telemetry off:
        live scheduler gauges only, no registry families."""
        async def scenario():
            async with serving(slots=1) as server:
                client = await ServeClient.connect(server.address, "alice")
                metrics = await client.metrics()
                await client.close()
                return metrics

        metrics = asyncio.run(scenario())
        text = metrics["text"]
        assert "domino_serve_server_queue_depth_now 0" in text
        assert "domino_serve_server_in_flight_now 0" in text
        assert "jobs_admitted" not in text
