"""Chaos: misbehaving tenants must not stall or starve the rest.

Two layers: hand-scripted misbehaviour (vanish after acceptance,
garbage frames, glacial reads) racing a well-behaved tenant, and a
seeded loadgen run with mixed fault probabilities that must still
produce a clean report and a drainable server.
"""

import asyncio

import pytest

from repro.errors import ConfigError
from repro.faults import FaultPlan, parse_fault_spec
from repro.serve import AdmissionConfig, LoadGenConfig, ServeClient
from repro.serve.loadgen import run_loadgen_async

from .conftest import TINY_SPEC, serving


class TestServeFaultSpec:
    def test_parse_serve_modes(self):
        plan = parse_fault_spec(
            "slow_client:0.2,disconnect:0.1,malformed:0.3,slow_client_s:0.05")
        assert plan.slow_client_p == 0.2
        assert plan.disconnect_p == 0.1
        assert plan.malformed_p == 0.3
        assert plan.slow_client_s == 0.05
        assert plan.serve_active

    def test_zeroed_plan_is_inactive(self):
        assert not FaultPlan().serve_active
        assert not parse_fault_spec("crash:0.5").serve_active

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(disconnect_p=1.5)

    def test_rolls_are_deterministic_and_independent(self):
        plan = FaultPlan(disconnect_p=0.5, malformed_p=0.5, seed=9)
        again = FaultPlan(disconnect_p=0.5, malformed_p=0.5, seed=9)
        rolls = [(plan.should_disconnect("a", i), plan.should_malform("a", i))
                 for i in range(64)]
        assert rolls == [(again.should_disconnect("a", i),
                          again.should_malform("a", i)) for i in range(64)]
        # Both faults fire somewhere, and not always together: the
        # modes roll independently rather than sharing one dice throw.
        assert any(d for d, _ in rolls) and any(m for _, m in rolls)
        assert any(d != m for d, m in rolls)

    def test_rolls_vary_by_tenant(self):
        plan = FaultPlan(disconnect_p=0.5)
        a = [plan.should_disconnect("a", i) for i in range(64)]
        b = [plan.should_disconnect("b", i) for i in range(64)]
        assert a != b


class TestMisbehavingTenantContainment:
    def test_good_tenant_unaffected_by_evil_one(self):
        """Three flavours of misbehaviour at once; 'good' still lands
        every job.  The in-flight cap of 1 is the containment bound:
        evil can hold at most one of the two slots no matter what."""
        admission = AdmissionConfig(max_in_flight_per_tenant=1,
                                    max_queued_per_tenant=4)

        async def evil_abandoner(server):
            # Vanish the instant the job is accepted, three times over.
            for i in range(3):
                client = await ServeClient.connect(server.address, "evil")
                await client.submit(TINY_SPEC, f"e{i}")
                await client.recv()  # accepted or shed — either way, bail
                await client.close(polite=False)

        async def evil_garbler(server):
            client = await ServeClient.connect(server.address, "evil")
            for _ in range(8):
                await client.send_raw(b"\x7b not json at all\n")
                await client.recv()  # the error reply
            await client.close(polite=False)

        async def evil_sloth(server):
            # Submit, then read nothing for a while before draining.
            client = await ServeClient.connect(server.address, "evil")
            await client.submit(TINY_SPEC, "sloth")
            await asyncio.sleep(0.5)
            await client.collect("sloth")
            await client.close()

        async def good(server):
            results = []
            for i in range(4):
                async with await ServeClient.connect(
                        server.address, "good") as client:
                    results.append(await client.run_job(TINY_SPEC, f"g{i}"))
            return results

        async def scenario():
            async with serving(slots=2, admission=admission) as server:
                evil = [asyncio.create_task(fn(server), name=fn.__name__)
                        for fn in (evil_abandoner, evil_garbler, evil_sloth)]
                results = await asyncio.wait_for(good(server), timeout=60)
                await asyncio.gather(*evil, return_exceptions=True)
                async with await ServeClient.connect(
                        server.address, "probe") as probe:
                    stats = await probe.status()
                return results, stats

        results, stats = asyncio.run(scenario())
        assert [r.status for r in results] == ["ok"] * 4
        assert stats["tenants"]["good"]["completed"] == 4
        # Abandoned-but-admitted jobs still ran to completion: admitted
        # work is never dropped, its results are simply unread.
        assert stats["failed"] == 0
        assert stats["completed"] == stats["admitted"]
        assert stats["queue_depth"] == 0 and stats["in_flight"] == 0


class TestChaosLoadgen:
    def test_mixed_faults_clean_report_and_drain(self):
        faults = FaultPlan(disconnect_p=0.3, malformed_p=0.2,
                           slow_client_p=0.3, slow_client_s=0.05)

        async def scenario():
            async with serving(slots=2) as server:
                config = LoadGenConfig(
                    address=server.address, tenants=3, jobs_per_tenant=4,
                    rate_hz=20.0, spec=dict(TINY_SPEC), seed=5,
                    faults=faults, job_timeout_s=60.0)
                report = await run_loadgen_async(config)
                # The server survived the abuse: a fresh client still
                # gets served, and the context-manager drain completes.
                async with await ServeClient.connect(
                        server.address, "after") as client:
                    sane = await client.run_job(TINY_SPEC, "after-1")
                return report, sane

        report, sane = asyncio.run(scenario())
        assert report["faults_active"]
        assert report["submitted"] == 12
        assert report["errors"] == 0
        assert report["failed"] == 0
        # The plan's probabilities guarantee some arrivals misbehaved
        # (deterministic rolls — this is not a flaky expectation).
        assert report["by_status"].get("abandoned", 0) > 0
        assert report["completed"] > 0
        assert sane.status == "ok"
