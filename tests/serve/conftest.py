"""Serve test helpers: an in-loop server context and tiny job specs.

There is no pytest-asyncio in the toolchain, so tests are plain sync
functions that drive one event loop each via ``asyncio.run`` — which
also guarantees every test tears its server, workers, and sockets down
completely.
"""

import contextlib

from repro.serve import ExperimentServer, ServeConfig

#: The smallest spec admission allows (~tens of ms of simulation).
TINY_SPEC = {"workload": "sat_solver", "prefetcher": "domino",
             "kind": "trace", "degrees": [1], "n_accesses": 1000}


@contextlib.asynccontextmanager
async def serving(**kwargs):
    """A started :class:`ExperimentServer` on an ephemeral TCP port."""
    kwargs.setdefault("slots", 2)
    server = ExperimentServer(ServeConfig(**kwargs))
    await server.start()
    try:
        yield server
    finally:
        await server.aclose()
