"""Network chaos at the server's write boundary: partitions, resets,
blackholes, slow links — all seeded, all tenant-targetable.

The headline drill: one tenant is fully partitioned while three
healthy tenants drive the server past saturation.  The victim's jobs
must be reaped (cancel-on-disconnect), the healthy tenants must see
bit-identical-to-batch results and fair throughput, and the server
must drain with nothing orphaned in flight.
"""

import asyncio
import time

import pytest

from repro.errors import ConfigError, ProtocolError
from repro.faults import FaultPlan, parse_fault_spec
from repro.runner import ExecutionPolicy, run_cells
from repro.serve import JobSpec, ServeClient, jain_index, protocol

from .conftest import TINY_SPEC, serving

LONG_SPEC = {**TINY_SPEC, "degrees": [1], "n_accesses": 200_000}


class TestNetFaultSpec:
    def test_parse_net_modes(self):
        plan = parse_fault_spec(
            "partition:0.5,reset:0.25,blackhole:0.125,slow_write:1.0,"
            "net_after_writes:3,slow_write_s:0.01,net_tenants:t0+t2")
        assert plan.partition_p == 0.5
        assert plan.reset_p == 0.25
        assert plan.blackhole_p == 0.125
        assert plan.slow_write_p == 1.0
        assert plan.net_after_writes == 3
        assert plan.slow_write_s == 0.01
        assert plan.net_tenants == ("t0", "t2")
        assert plan.net_active

    def test_zeroed_plan_has_no_net_fates(self):
        plan = FaultPlan()
        assert not plan.net_active
        assert plan.net_fate("anyone", 0) == ""

    def test_bad_net_config_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(partition_p=1.5)
        with pytest.raises(ConfigError):
            FaultPlan(net_after_writes=0)
        with pytest.raises(ConfigError):
            FaultPlan(slow_write_s=-0.1)
        with pytest.raises(ConfigError):
            parse_fault_spec("net_tenants:")

    def test_fates_are_deterministic_and_tenant_scoped(self):
        plan = FaultPlan(partition_p=0.5, blackhole_p=0.5, seed=11,
                         net_tenants=("victim",))
        again = FaultPlan(partition_p=0.5, blackhole_p=0.5, seed=11,
                          net_tenants=("victim",))
        fates = [plan.net_fate("victim", i) for i in range(64)]
        assert fates == [again.net_fate("victim", i) for i in range(64)]
        assert "partition" in fates and "blackhole" in fates
        # Tenants outside net_tenants never draw a fate.
        assert all(plan.net_fate("healthy", i) == "" for i in range(64))

    def test_certain_partition_always_lands(self):
        plan = FaultPlan(partition_p=1.0)
        assert all(plan.net_fate("t", i) == "partition" for i in range(16))

    def test_reset_takes_precedence(self):
        plan = FaultPlan(reset_p=1.0, partition_p=1.0, slow_write_p=1.0)
        assert plan.net_fate("t", 0) == "reset"


class TestSingleFates:
    def test_reset_drops_connection_before_first_reply(self):
        async def scenario():
            faults = FaultPlan(reset_p=1.0)
            async with serving(faults=faults) as server:
                client = await ServeClient.connect(server.address, "alice")
                try:
                    await client.submit(TINY_SPEC, "r1")
                    with pytest.raises(ProtocolError):
                        await client.recv()
                finally:
                    await client.close(polite=False)

        asyncio.run(scenario())

    def test_blackhole_starves_the_client_silently(self):
        async def scenario():
            faults = FaultPlan(blackhole_p=1.0)
            async with serving(faults=faults) as server:
                client = await ServeClient.connect(server.address, "alice")
                try:
                    await client.submit(TINY_SPEC, "r1")
                    accepted = await client.recv()  # write #2: delivered
                    assert accepted["type"] == protocol.ACCEPTED
                    # Everything after net_after_writes vanishes: the
                    # job runs, its frames never arrive.
                    with pytest.raises(asyncio.TimeoutError):
                        await asyncio.wait_for(client.recv(), timeout=1.0)
                finally:
                    await client.close(polite=False)
                for _ in range(200):
                    if server.scheduler.stats()["completed"]:
                        break
                    await asyncio.sleep(0.02)
                return server.scheduler.stats()

        stats = asyncio.run(scenario())
        assert stats["completed"] == 1  # server-side work was unaffected

    def test_slow_write_delays_every_frame(self):
        async def scenario():
            faults = FaultPlan(slow_write_p=1.0, slow_write_s=0.05)
            async with serving(faults=faults) as server:
                started = time.perf_counter()
                client = await ServeClient.connect(server.address, "alice")
                handshake_s = time.perf_counter() - started
                await client.close(polite=False)
                return handshake_s

        assert asyncio.run(scenario()) >= 0.05


class TestPartitionDrill:
    def test_partitioned_tenant_reaped_healthy_tenants_bit_identical(self):
        """The acceptance drill: full partition of one tenant under
        ~4x saturation from three healthy tenants."""
        healthy_spec = {**TINY_SPEC, "degrees": [1, 2], "n_accesses": 2000}
        faults = FaultPlan(partition_p=1.0, net_tenants=("victim",))

        async def victim(server):
            # The partition fires after the accepted frame is delivered;
            # every later interaction dies with the connection.
            client = await ServeClient.connect(server.address, "victim")
            try:
                await client.submit(LONG_SPEC, "v1")
                accepted = await client.recv()
                assert accepted["type"] == protocol.ACCEPTED
                with pytest.raises(ProtocolError):
                    while True:
                        await client.recv()
            finally:
                await client.close(polite=False)

        async def healthy(server, tenant, results):
            for i in range(4):
                async with await ServeClient.connect(
                        server.address, tenant) as client:
                    results[tenant].append(
                        await client.run_job(healthy_spec, f"{tenant}-{i}"))

        async def scenario():
            async with serving(slots=2, cancel_on_disconnect=True,
                               cancel_check_every=1024,
                               faults=faults) as server:
                results = {t: [] for t in ("t0", "t1", "t2")}
                tasks = [asyncio.create_task(victim(server))]
                tasks += [asyncio.create_task(healthy(server, t, results))
                          for t in results]
                await asyncio.wait_for(asyncio.gather(*tasks), timeout=120)
                for _ in range(500):
                    stats = server.scheduler.stats()
                    if stats["cancelled"] and not stats["in_flight"]:
                        break
                    await asyncio.sleep(0.02)
                return results, server.scheduler.stats()

        results, stats = asyncio.run(scenario())

        # 1. The victim's job was reaped, not left running or orphaned.
        assert stats["tenants"]["victim"]["cancelled"] == 1
        assert stats["tenants"]["victim"]["completed"] == 0
        assert stats["in_flight"] == 0 and stats["queue_depth"] == 0

        # 2. Healthy tenants landed every job, bit-identical to batch.
        cells, options = JobSpec.from_dict(healthy_spec).compile()
        batch, manifest = run_cells(
            cells, options, ExecutionPolicy(jobs=1, use_cache=False))
        assert manifest.failed == 0
        for tenant, jobs in results.items():
            assert [r.status for r in jobs] == ["ok"] * 4, tenant
            for r in jobs:
                assert r.payloads == batch

        # 3. Fair service across the healthy tenants.
        fairness = jain_index(
            [float(stats["tenants"][t]["completed"]) for t in results])
        assert fairness >= 0.9
