"""Exception hierarchy: one base, catchable layers, no surprises."""

import pytest

from repro import errors
from repro.errors import (CellFailedError, CheckpointError, ConfigError,
                          ReproError, RunnerError, RunnerTimeoutError)


class TestHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        exported = [getattr(errors, name) for name in dir(errors)
                    if isinstance(getattr(errors, name), type)
                    and issubclass(getattr(errors, name), Exception)]
        assert all(issubclass(exc, ReproError) for exc in exported)

    def test_robustness_errors_are_runner_errors(self):
        for exc in (RunnerTimeoutError, CellFailedError, CheckpointError):
            assert issubclass(exc, RunnerError)
            assert issubclass(exc, ReproError)

    def test_robustness_errors_are_distinct(self):
        """A timeout must be distinguishable from exhaustion from a bad
        journal — callers branch on these."""
        assert not issubclass(RunnerTimeoutError, CellFailedError)
        assert not issubclass(CellFailedError, RunnerTimeoutError)
        assert not issubclass(CheckpointError, CellFailedError)

    def test_injected_fault_is_a_runner_error(self):
        from repro.faults import InjectedFault
        assert issubclass(InjectedFault, RunnerError)
        assert not issubclass(InjectedFault, ConfigError)

    def test_single_except_clause_catches_all(self):
        for exc in (RunnerTimeoutError("t"), CellFailedError("c"),
                    CheckpointError("j")):
            with pytest.raises(ReproError):
                raise exc
