"""Small-surface tests that close coverage gaps across modules."""

import pytest

from repro.memory.cache import CacheStats
from repro.memory.hierarchy import HierarchyStats
from repro.sim.multicore import MulticoreResult
from repro.sim.timing import TimingResult


class TestCacheStats:
    def test_merge_accumulates(self):
        a = CacheStats(accesses=10, hits=6, misses=4, evictions=1, fills=4)
        b = CacheStats(accesses=5, hits=1, misses=4, evictions=2, fills=4)
        a.merge(b)
        assert a.accesses == 15
        assert a.hits == 7
        assert a.evictions == 3

    def test_rates_idle(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        assert stats.miss_rate == 0.0

    def test_rates(self):
        stats = CacheStats(accesses=10, hits=7, misses=3)
        assert stats.hit_rate == pytest.approx(0.7)
        assert stats.miss_rate == pytest.approx(0.3)


class TestHierarchyStats:
    def test_accesses_totalises(self):
        stats = HierarchyStats(l1_hits=5, llc_hits=3, memory_accesses=2)
        assert stats.accesses == 10


class TestTimingResult:
    def test_ipc_and_timeliness(self):
        result = TimingResult(workload="w", prefetcher="p", cycles=100.0,
                              instructions=250, prefetch_hits=10,
                              late_prefetch_hits=4)
        assert result.ipc == pytest.approx(2.5)
        assert result.timeliness == pytest.approx(0.6)

    def test_idle_result(self):
        result = TimingResult(workload="w", prefetcher="p")
        assert result.ipc == 0.0
        assert result.timeliness == 0.0


class TestMulticoreResult:
    def test_aggregates_over_cores(self):
        cores = [TimingResult(workload="w", prefetcher="p", cycles=100.0,
                              instructions=200, misses=10, prefetch_hits=10),
                 TimingResult(workload="w", prefetcher="p", cycles=150.0,
                              instructions=300, misses=30, prefetch_hits=10)]
        result = MulticoreResult(workload="w", prefetcher="p", per_core=cores)
        assert result.cycles == 150.0
        assert result.instructions == 500
        assert result.ipc == pytest.approx(500 / 150)
        assert result.coverage == pytest.approx(20 / 60)

    def test_empty(self):
        result = MulticoreResult(workload="w", prefetcher="p")
        assert result.cycles == 0.0
        assert result.ipc == 0.0
        assert result.coverage == 0.0
