"""Shared fixtures: small configs and tiny deterministic traces."""

import numpy as np
import pytest

from repro.config import SystemConfig, small_test_config
from repro.sim.trace import MemoryTrace
from repro.workloads.base import WorkloadConfig
from repro.workloads.synthetic import SyntheticWorkload


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Keep the runner's artifact store out of the repo during tests.

    CLI invocations cache by default; pointing DOMINO_CACHE_DIR at a
    per-test tmp dir makes every test hermetic (no cross-test hits, no
    ``.domino-cache/`` appearing in the working directory).
    """
    monkeypatch.setenv("DOMINO_CACHE_DIR", str(tmp_path / "domino-cache"))


@pytest.fixture
def config() -> SystemConfig:
    """Small, fast configuration exercising capacity pressure."""
    return small_test_config()


@pytest.fixture
def paper_config() -> SystemConfig:
    """Full Table I configuration."""
    return SystemConfig()


@pytest.fixture
def tiny_workload() -> WorkloadConfig:
    """A miniature workload with strong temporal repetition."""
    return WorkloadConfig(
        name="tiny",
        n_documents=60,
        doc_length_mean=8.0,
        doc_length_min=4,
        zipf_alpha=0.6,
        shared_frac=0.6,
        spatial_doc_frac=0.1,
        hot_pool_blocks=512,
        family_size=3,
        truncation_prob=0.05,
        mutation_rate=0.01,
        noise_rate=0.03,
        dependent_frac=0.3,
        pc_pool=32,
        pcs_per_doc=4,
        work_mean=5.0,
    )


@pytest.fixture
def tiny_trace(tiny_workload) -> MemoryTrace:
    return SyntheticWorkload(tiny_workload, seed=42).generate(6000)


def make_trace(blocks, pcs=None, deps=None, works=None, name="manual"):
    """Hand-build a trace from plain lists (test helper)."""
    n = len(blocks)
    return MemoryTrace(
        pcs=np.asarray(pcs if pcs is not None else [0] * n, dtype=np.int64),
        blocks=np.asarray(blocks, dtype=np.int64),
        deps=np.asarray(deps if deps is not None else [0] * n, dtype=np.int8),
        works=np.asarray(works if works is not None else [0] * n, dtype=np.int32),
        name=name,
    )


@pytest.fixture
def trace_factory():
    return make_trace
