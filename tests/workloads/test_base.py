"""WorkloadConfig validation."""

import pytest

from repro.errors import ConfigError
from repro.workloads.base import WorkloadConfig


def test_defaults_validate():
    WorkloadConfig(name="ok")


@pytest.mark.parametrize("field,value", [
    ("dataset_blocks", 0),
    ("n_documents", 0),
    ("shared_frac", 1.5),
    ("noise_rate", -0.1),
    ("mutation_rate", 2.0),
    ("truncation_prob", -1.0),
    ("dependent_frac", 1.1),
    ("pc_pool", 0),
    ("work_mean", -1.0),
    ("family_size", 0),
    ("interleave", 0),
    ("switch_prob", 0.0),
    ("mlp_cluster", 0.5),
])
def test_invalid_values_rejected(field, value):
    with pytest.raises(ConfigError):
        WorkloadConfig(name="bad", **{field: value})


def test_hot_pool_cannot_exceed_dataset():
    with pytest.raises(ConfigError):
        WorkloadConfig(name="bad", dataset_blocks=100, hot_pool_blocks=200)


def test_doc_length_mean_at_least_min():
    with pytest.raises(ConfigError):
        WorkloadConfig(name="bad", doc_length_mean=2.0, doc_length_min=5)


def test_family_prefix_shorter_than_min_length():
    with pytest.raises(ConfigError):
        WorkloadConfig(name="bad", doc_length_min=3, family_prefix=3)


def test_empty_name_rejected():
    with pytest.raises(ConfigError):
        WorkloadConfig(name="")


def test_scaled_returns_modified_copy():
    base = WorkloadConfig(name="a")
    derived = base.scaled(noise_rate=0.5)
    assert derived.noise_rate == 0.5
    assert base.noise_rate != 0.5
