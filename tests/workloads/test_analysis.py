"""Workload profiling: measured characteristics match the configs."""

import pytest

from repro.config import SystemConfig
from repro.workloads.analysis import profile_trace
from repro.workloads.suite import WorkloadSuite


@pytest.fixture(scope="module")
def suite():
    return WorkloadSuite(seed=11)


def test_profile_fields_consistent(tiny_trace, config):
    profile = profile_trace(tiny_trace, config)
    assert profile.accesses == len(tiny_trace)
    assert 0 < profile.misses <= profile.accesses
    assert profile.miss_footprint_blocks <= profile.footprint_blocks
    assert 0.0 <= profile.miss_repetitiveness <= 1.0
    assert profile.mpki > 0
    assert "tiny" in profile.summary()


def test_oltp_profile_is_dependent_and_repetitive(suite):
    config = SystemConfig()
    profile = profile_trace(suite.trace("oltp", 40_000), config)
    assert profile.dependent_frac > 0.4
    assert profile.miss_repetitiveness > 0.2


def test_media_is_more_page_local_than_oltp(suite):
    config = SystemConfig()
    media = profile_trace(suite.trace("media_streaming", 40_000), config)
    oltp = profile_trace(suite.trace("oltp", 40_000), config)
    assert media.page_locality > oltp.page_locality


def test_sat_solver_least_repetitive(suite):
    config = SystemConfig()
    sat = profile_trace(suite.trace("sat_solver", 40_000), config)
    oltp = profile_trace(suite.trace("oltp", 40_000), config)
    assert sat.miss_repetitiveness < oltp.miss_repetitiveness


def test_sequitur_cap_respected(tiny_trace, config):
    profile = profile_trace(tiny_trace, config, max_sequitur_misses=100)
    assert 0.0 <= profile.miss_repetitiveness <= 1.0
