"""WorkloadSuite caching and iteration."""

import numpy as np

from repro.workloads.suite import WorkloadSuite, default_suite


def test_default_suite_has_all_workloads():
    suite = default_suite()
    assert len(suite.names) == 9


def test_trace_memoisation(tiny_workload):
    suite = WorkloadSuite({"tiny": tiny_workload}, seed=1)
    a = suite.trace("tiny", 500)
    b = suite.trace("tiny", 500)
    assert a is b  # cached object
    c = suite.trace("tiny", 600)
    assert c is not a


def test_clear_cache(tiny_workload):
    suite = WorkloadSuite({"tiny": tiny_workload}, seed=1)
    a = suite.trace("tiny", 500)
    suite.clear_cache()
    assert suite.trace("tiny", 500) is not a


def test_core_traces_distinct_but_same_library(tiny_workload):
    suite = WorkloadSuite({"tiny": tiny_workload}, seed=1)
    traces = suite.core_traces("tiny", 800, n_cores=4)
    assert len(traces) == 4
    assert not np.array_equal(traces[0].blocks, traces[1].blocks)
    shared = set(traces[0].blocks.tolist()) & set(traces[1].blocks.tolist())
    assert len(shared) > 50  # same hot documents


def test_traces_iterates_all(tiny_workload):
    suite = WorkloadSuite({"tiny": tiny_workload}, seed=1)
    items = list(suite.traces(300))
    assert [name for name, _ in items] == ["tiny"]
    assert all(len(t) == 300 for _, t in items)


def test_falls_back_to_server_registry():
    suite = WorkloadSuite({}, seed=1)
    workload = suite.workload("oltp")
    assert workload.config.name == "oltp"
