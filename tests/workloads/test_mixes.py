"""Multiprogrammed mixes."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.mixes import (STANDARD_MIXES, WorkloadMix, get_mix,
                                   mix_names, mix_traces)


def test_standard_mixes_are_four_core():
    for mix in STANDARD_MIXES.values():
        assert len(mix.per_core) == 4


def test_mix_validation_rejects_unknown_workload():
    with pytest.raises(UnknownWorkloadError):
        WorkloadMix("bad", ("oltp", "quake3", "oltp", "oltp"))


def test_get_mix_and_names():
    assert "consolidated" in mix_names()
    assert get_mix("consolidated").per_core[0] == "oltp"
    with pytest.raises(UnknownWorkloadError):
        get_mix("nonexistent")


def test_mix_traces_builds_per_core_traces():
    traces = mix_traces("data_tier", 1500)
    assert len(traces) == 4
    assert [t.name for t in traces] == ["oltp", "data_serving",
                                        "oltp", "data_serving"]
    assert all(len(t) == 1500 for t in traces)


def test_same_workload_on_two_cores_gets_distinct_streams():
    import numpy as np

    traces = mix_traces("data_tier", 1500)
    assert not np.array_equal(traces[0].blocks, traces[2].blocks)


def test_mix_runs_on_multicore_sim(config):
    from repro.sim.multicore import simulate_multicore

    traces = mix_traces("consolidated", 1200)
    result = simulate_multicore(traces, config, "domino", warmup_frac=0.25)
    assert len(result.per_core) == 4
    assert result.ipc > 0
