"""The nine named server workloads."""

import pytest

from repro.errors import UnknownWorkloadError
from repro.workloads.server import (SERVER_WORKLOADS, get_workload,
                                    workload_names)

PAPER_WORKLOADS = {"data_serving", "mapreduce_c", "mapreduce_w",
                   "media_streaming", "oltp", "sat_solver", "web_apache",
                   "web_search", "web_zeus"}


def test_all_nine_paper_workloads_present():
    assert set(workload_names()) == PAPER_WORKLOADS


def test_lookup_by_name():
    assert get_workload("oltp").name == "oltp"


def test_unknown_workload_raises():
    with pytest.raises(UnknownWorkloadError):
        get_workload("quake3")


def test_configs_validate_and_name_matches_key():
    for key, config in SERVER_WORKLOADS.items():
        assert config.name == key


def test_qualitative_orderings_encoded():
    """The paper's workload characterisations, as config relations."""
    cfg = SERVER_WORKLOADS
    # SAT Solver builds its dataset on the fly: least repetitive.
    assert cfg["sat_solver"].mutation_rate == max(
        c.mutation_rate for c in cfg.values())
    # MapReduce-W has drastically short streams.
    assert cfg["mapreduce_w"].doc_length_mean == min(
        c.doc_length_mean for c in cfg.values())
    # OLTP is the pointer-chasing workload.
    assert cfg["oltp"].dependent_frac == max(
        c.dependent_frac for c in cfg.values())
    # Media Streaming is the most spatial and least dependent.
    assert cfg["media_streaming"].spatial_doc_frac == max(
        c.spatial_doc_frac for c in cfg.values())
    assert cfg["media_streaming"].dependent_frac == min(
        c.dependent_frac for c in cfg.values())
    # High-MLP workloads carry access clustering.
    assert cfg["web_search"].mlp_cluster > 1.0
    assert cfg["media_streaming"].mlp_cluster > 1.0
