"""Synthetic trace generator: determinism, structure, statistics."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sequitur.analysis import analyze_sequence
from repro.workloads.base import WorkloadConfig
from repro.workloads.synthetic import SyntheticWorkload, generate_trace


class TestDeterminism:
    def test_same_seed_same_trace(self, tiny_workload):
        a = SyntheticWorkload(tiny_workload, seed=9).generate(2000)
        b = SyntheticWorkload(tiny_workload, seed=9).generate(2000)
        assert np.array_equal(a.blocks, b.blocks)
        assert np.array_equal(a.pcs, b.pcs)

    def test_different_seed_different_trace(self, tiny_workload):
        a = SyntheticWorkload(tiny_workload, seed=9).generate(2000)
        b = SyntheticWorkload(tiny_workload, seed=10).generate(2000)
        assert not np.array_equal(a.blocks, b.blocks)

    def test_generation_seed_varies_replay_not_library(self, tiny_workload):
        workload = SyntheticWorkload(tiny_workload, seed=9)
        a = workload.generate(2000, seed=1)
        b = workload.generate(2000, seed=2)
        assert not np.array_equal(a.blocks, b.blocks)
        # Same document library: heavy address overlap.
        overlap = len(set(a.blocks.tolist()) & set(b.blocks.tolist()))
        assert overlap > 100


class TestStructure:
    def test_exact_length(self, tiny_workload):
        trace = generate_trace(tiny_workload, 1234, seed=1)
        assert len(trace) == 1234

    def test_trace_name_is_workload_name(self, tiny_workload):
        assert generate_trace(tiny_workload, 100).name == "tiny"

    def test_document_count_and_lengths(self, tiny_workload):
        workload = SyntheticWorkload(tiny_workload, seed=1)
        assert len(workload.documents) == tiny_workload.n_documents
        for doc in workload.documents:
            assert len(doc) >= tiny_workload.doc_length_min

    def test_family_heads_are_shared(self):
        config = WorkloadConfig(name="fam", n_documents=30, family_size=3,
                                family_prefix=2, doc_length_min=4,
                                doc_length_mean=6.0, spatial_doc_frac=0.0,
                                hot_pool_blocks=256)
        workload = SyntheticWorkload(config, seed=1)
        heads = [tuple(doc[:2]) for doc in workload.documents]
        # With families of 3, distinct heads are about a third of docs.
        assert len(set(heads)) <= 14

    def test_first_element_never_dependent(self, tiny_workload):
        workload = SyntheticWorkload(tiny_workload, seed=1)
        for deps in workload.doc_deps:
            assert deps[0] == 0

    def test_temporal_repetition_present(self, tiny_workload):
        trace = SyntheticWorkload(tiny_workload, seed=1).generate(8000)
        analysis = analyze_sequence(trace.blocks.tolist()[:4000])
        assert analysis.opportunity > 0.3

    def test_interleaving_preserves_length(self, tiny_workload):
        config = tiny_workload.scaled(interleave=3, switch_prob=0.3)
        trace = SyntheticWorkload(config, seed=1).generate(3000)
        assert len(trace) == 3000

    def test_bursty_works_distribution(self, tiny_workload):
        config = tiny_workload.scaled(mlp_cluster=5.0, work_mean=40.0)
        trace = SyntheticWorkload(config, seed=1).generate(5000)
        works = trace.works
        # Bimodal: many tiny gaps, some large ones; mean preserved-ish.
        assert (works <= 2).mean() > 0.5
        assert works.mean() == pytest.approx(40.0, rel=0.35)

    def test_invalid_n_accesses(self, tiny_workload):
        with pytest.raises(ConfigError):
            generate_trace(tiny_workload, 0)


class TestPerturbations:
    def test_zero_noise_zero_mutation_replays_exactly(self):
        config = WorkloadConfig(name="clean", n_documents=5,
                                doc_length_mean=6.0, doc_length_min=4,
                                truncation_prob=0.0, mutation_rate=0.0,
                                noise_rate=0.0, spatial_doc_frac=0.0,
                                hot_pool_blocks=64, family_size=1)
        workload = SyntheticWorkload(config, seed=1)
        trace = workload.generate(500)
        doc_blocks = {int(b) for doc in workload.documents for b in doc}
        assert set(trace.blocks.tolist()) <= doc_blocks

    def test_noise_injects_cold_addresses(self):
        config = WorkloadConfig(name="noisy", n_documents=5,
                                doc_length_mean=6.0, doc_length_min=4,
                                truncation_prob=0.0, mutation_rate=0.0,
                                noise_rate=0.5, spatial_doc_frac=0.0,
                                hot_pool_blocks=64, family_size=1)
        workload = SyntheticWorkload(config, seed=1)
        trace = workload.generate(500)
        doc_blocks = {int(b) for doc in workload.documents for b in doc}
        cold = [b for b in trace.blocks.tolist() if b not in doc_blocks]
        assert len(cold) > 50
