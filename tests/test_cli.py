"""CLI smoke tests (in-process main())."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "oltp" in out and "domino" in out and "fig11" in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    assert "Evaluation parameters" in capsys.readouterr().out


def test_run_experiment_with_overrides(capsys):
    assert main(["run", "fig02", "--quick", "--n", "8000",
                 "--workloads", "oltp"]) == 0
    out = capsys.readouterr().out
    assert "stms" in out and "sequitur" in out


def test_compare(capsys):
    assert main(["compare", "--workload", "oltp", "--quick",
                 "--n", "8000", "--degree", "2"]) == 0
    out = capsys.readouterr().out
    assert "domino" in out and "coverage" in out


def test_trace_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "t.npz"
    assert main(["trace", "--workload", "oltp", "--n", "2000",
                 "--out", str(out_file)]) == 0
    assert out_file.exists()

    from repro.sim.trace import load_trace
    assert len(load_trace(out_file)) == 2000


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "--workload", "doom"])


def test_version(capsys):
    with pytest.raises(SystemExit):
        main(["--version"])


def test_run_markdown_format(capsys):
    assert main(["run", "table2", "--format", "md"]) == 0
    out = capsys.readouterr().out
    assert out.lstrip().startswith("###")
    assert "|---|" in out


def test_run_csv_format(capsys):
    assert main(["run", "table2", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].startswith("workload,")


def test_run_with_chart(capsys):
    assert main(["run", "fig02", "--quick", "--n", "6000",
                 "--workloads", "oltp", "--chart", "stms"]) == 0
    out = capsys.readouterr().out
    assert "stms:" in out and "█" in out


def test_run_with_nonnumeric_chart_column(capsys):
    assert main(["run", "table2", "--chart", "models"]) == 0
    assert "not numeric" in capsys.readouterr().out
