"""CLI smoke tests (in-process main())."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "oltp" in out and "domino" in out and "fig11" in out


def test_run_table1(capsys):
    assert main(["run", "table1"]) == 0
    assert "Evaluation parameters" in capsys.readouterr().out


def test_run_experiment_with_overrides(capsys):
    assert main(["run", "fig02", "--quick", "--n", "8000",
                 "--workloads", "oltp"]) == 0
    out = capsys.readouterr().out
    assert "stms" in out and "sequitur" in out


def test_compare(capsys):
    assert main(["compare", "--workload", "oltp", "--quick",
                 "--n", "8000", "--degree", "2"]) == 0
    out = capsys.readouterr().out
    assert "domino" in out and "coverage" in out


def test_trace_roundtrip(tmp_path, capsys):
    out_file = tmp_path / "t.npz"
    assert main(["trace", "--workload", "oltp", "--n", "2000",
                 "--out", str(out_file)]) == 0
    assert out_file.exists()

    from repro.sim.trace import load_trace
    assert len(load_trace(out_file)) == 2000


def test_trace_seed_zero_respected(tmp_path, capsys):
    """--seed 0 is a valid seed, not a request for the default."""
    from repro.sim.trace import load_trace
    zero, default = tmp_path / "s0.npz", tmp_path / "s1234.npz"
    assert main(["trace", "--workload", "oltp", "--n", "2000",
                 "--seed", "0", "--out", str(zero)]) == 0
    assert main(["trace", "--workload", "oltp", "--n", "2000",
                 "--out", str(default)]) == 0
    assert (load_trace(zero).blocks.tolist()
            != load_trace(default).blocks.tolist())


def test_unknown_workload_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["compare", "--workload", "doom"])


def test_version(capsys):
    with pytest.raises(SystemExit):
        main(["--version"])


def test_run_markdown_format(capsys):
    assert main(["run", "table2", "--format", "md"]) == 0
    out = capsys.readouterr().out
    assert out.lstrip().startswith("###")
    assert "|---|" in out


def test_run_csv_format(capsys):
    assert main(["run", "table2", "--format", "csv"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()[0].startswith("workload,")


def test_run_with_chart(capsys):
    assert main(["run", "fig02", "--quick", "--n", "6000",
                 "--workloads", "oltp", "--chart", "stms"]) == 0
    out = capsys.readouterr().out
    assert "stms:" in out and "█" in out


def test_run_with_nonnumeric_chart_column(capsys):
    assert main(["run", "table2", "--chart", "models"]) == 0
    assert "not numeric" in capsys.readouterr().out


RUN_TINY = ["run", "fig11", "--quick", "--n", "8000", "--workloads", "oltp"]


def test_run_jobs_parallel_matches_serial(tmp_path, capsys):
    """`--jobs 4` must render byte-identical tables to `--jobs 1`."""
    def table_of(argv):
        assert main(argv) == 0
        return [line for line in capsys.readouterr().out.splitlines()
                if not line.startswith(("[runner]", "("))]

    cache = str(tmp_path / "c")
    serial = table_of(RUN_TINY + ["--jobs", "1", "--no-cache",
                                  "--cache-dir", cache])
    parallel = table_of(RUN_TINY + ["--jobs", "4", "--no-cache",
                                    "--cache-dir", cache])
    assert parallel == serial


def test_run_reports_cache_hits_on_rerun(tmp_path, capsys):
    cache = str(tmp_path / "c")
    assert main(RUN_TINY + ["--cache-dir", cache]) == 0
    cold = capsys.readouterr().out
    assert "0 cache hits" in cold
    assert main(RUN_TINY + ["--cache-dir", cache]) == 0
    warm = capsys.readouterr().out
    assert "6 cache hits, 0 executed" in warm  # 5 prefetchers + opportunity
    strip = lambda out: [l for l in out.splitlines()
                         if not l.startswith(("[runner]", "("))]
    assert strip(warm) == strip(cold)


def test_cache_stats_and_clear(tmp_path, capsys):
    cache = str(tmp_path / "c")
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "0 artifacts" in capsys.readouterr().out
    assert main(RUN_TINY + ["--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "6 artifacts" in capsys.readouterr().out
    assert main(["cache", "clear", "--cache-dir", cache]) == 0
    assert "removed 6" in capsys.readouterr().out
    assert main(["cache", "stats", "--cache-dir", cache]) == 0
    assert "0 artifacts" in capsys.readouterr().out


def test_cache_gc(tmp_path, capsys):
    cache = str(tmp_path / "c")
    assert main(RUN_TINY + ["--cache-dir", cache]) == 0
    capsys.readouterr()
    assert main(["cache", "gc", "--keep", "2", "--cache-dir", cache]) == 0
    assert "removed 4" in capsys.readouterr().out


class TestRobustness:
    """Fault-tolerance surface: exit codes, chaos flags, resume."""

    def test_injected_crashes_survive_on_retries(self, capsys):
        assert main(RUN_TINY + ["--no-cache", "--jobs", "2",
                                "--inject-faults", "crash@1",
                                "--retries", "2"]) == 0
        assert "6 retried, 0 FAILED" in capsys.readouterr().out

    def test_exhausted_retries_exit_partial(self, capsys):
        assert main(["run", "table1", "--no-cache",
                     "--inject-faults", "crash:1.0", "--retries", "0"]) == 3
        captured = capsys.readouterr()
        assert "partial" in captured.err
        assert "1 FAILED" in captured.out

    def test_chaos_run_matches_clean_run(self, capsys):
        def table_of(argv):
            assert main(argv) == 0
            return [line for line in capsys.readouterr().out.splitlines()
                    if not line.startswith(("[runner]", "("))]
        clean = table_of(RUN_TINY + ["--no-cache"])
        chaos = table_of(RUN_TINY + ["--no-cache", "--jobs", "2",
                                     "--inject-faults", "crash:0.3,seed:1",
                                     "--retries", "3"])
        assert chaos == clean

    def test_resume_serves_journaled_cells(self, tmp_path, capsys):
        cache = str(tmp_path / "c")
        assert main(RUN_TINY + ["--cache-dir", cache,
                                "--run-id", "cli-r1"]) == 0
        capsys.readouterr()
        assert main(RUN_TINY + ["--cache-dir", cache,
                                "--resume", "cli-r1"]) == 0
        assert "6 cache hits, 0 executed" in capsys.readouterr().out

    def test_resume_unknown_run_is_usage_error(self, tmp_path, capsys):
        assert main(RUN_TINY + ["--cache-dir", str(tmp_path / "c"),
                                "--resume", "ghost"]) == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_resume_conflicts_with_run_id(self, tmp_path, capsys):
        assert main(RUN_TINY + ["--cache-dir", str(tmp_path / "c"),
                                "--resume", "r1", "--run-id", "r2"]) == 2
        assert "drop --run-id" in capsys.readouterr().err

    def test_run_id_conflicts_with_no_cache(self, capsys):
        assert main(RUN_TINY + ["--no-cache", "--run-id", "r1"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_bad_fault_spec_is_usage_error(self, capsys):
        assert main(RUN_TINY + ["--no-cache",
                                "--inject-faults", "bogus:1"]) == 2
        assert "unknown fault mode" in capsys.readouterr().err
