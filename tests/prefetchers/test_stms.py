"""STMS behaviour on hand-crafted miss sequences (sampling forced to 1)."""

import pytest

from repro.config import small_test_config
from repro.prefetchers.stms import StmsPrefetcher


@pytest.fixture
def config():
    return small_test_config(sampling_probability=1.0, prefetch_degree=4)


def feed(prefetcher, blocks, pc=0):
    out = []
    for block in blocks:
        out = prefetcher.on_miss(pc, block)
    return out


class TestLookupAndReplay:
    def test_cold_misses_prefetch_nothing(self, config):
        stms = StmsPrefetcher(config)
        assert feed(stms, [1, 2, 3]) == []

    def test_replay_issues_degree_successors(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5, 6, 7])
        candidates = stms.on_miss(0, 1)
        assert [b for b, _ in candidates] == [2, 3, 4, 5]

    def test_single_address_lookup_picks_last_occurrence(self, config):
        stms = StmsPrefetcher(config)
        # Head 1 followed by 2.. then by 20..: STMS replays the LAST one.
        feed(stms, [1, 2, 3, 4, 5, 1, 20, 30, 40, 50])
        candidates = stms.on_miss(0, 1)
        assert [b for b, _ in candidates] == [20, 30, 40, 50]

    def test_prefetch_hit_advances_stream_by_one(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5, 6, 7, 8])
        candidates = stms.on_miss(0, 1)
        sid = candidates[0][1]
        more = stms.on_prefetch_hit(0, 2, sid)
        assert [b for b, _ in more] == [6]

    def test_stream_extends_across_ht_rows(self, config):
        stms = StmsPrefetcher(config)
        row = config.ht_row_entries
        seq = list(range(100, 100 + 2 * row + 4))
        feed(stms, seq)
        candidates = stms.on_miss(0, seq[0])
        sid = candidates[0][1]
        # Drain well past the first HT row.
        issued = [b for b, _ in candidates]
        for _ in range(row):
            more = stms.on_prefetch_hit(0, issued[-1], sid)
            if not more:
                break
            issued.extend(b for b, _ in more)
        assert len(issued) > row - 2

    def test_hit_on_dead_stream_is_ignored(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5])
        candidates = stms.on_miss(0, 1)
        sid = candidates[0][1]
        stms.streams.remove(sid)
        assert stms.on_prefetch_hit(0, 2, sid) == []


class TestMetadataTraffic:
    def test_index_read_per_miss(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3])
        assert stms.metadata.index_reads >= 3

    def test_sampled_updates_cost_read_modify_write(self):
        config = small_test_config(sampling_probability=0.0)
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 1])
        # No sampling: lookups read, but no index writes ever.
        assert stms.metadata.index_writes == 0
        # And the index never learns, so no stream is found.
        assert stms.on_miss(0, 2) == []

    def test_history_write_per_row(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, list(range(config.ht_row_entries * 2)))
        assert stms.metadata.history_writes == 2


class TestStreamEndDetection:
    def test_unused_evictions_kill_stream(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5, 6, 7])
        candidates = stms.on_miss(0, 1)
        sid = candidates[0][1]
        stms.on_buffer_eviction(2, sid, used=False)
        stms.on_buffer_eviction(3, sid, used=False)
        assert stms.streams.get(sid) is None

    def test_used_evictions_are_harmless(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5, 6, 7])
        sid = stms.on_miss(0, 1)[0][1]
        for _ in range(5):
            stms.on_buffer_eviction(2, sid, used=True)
        assert stms.streams.get(sid) is not None

    def test_detection_can_be_disabled(self):
        config = small_test_config(sampling_probability=1.0,
                                   stream_end_detection=False)
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5, 6, 7])
        sid = stms.on_miss(0, 1)[0][1]
        for _ in range(5):
            stms.on_buffer_eviction(2, sid, used=False)
        assert stms.streams.get(sid) is not None


class TestBoundedIndex:
    def test_stale_pointer_dropped_after_ht_wrap(self):
        config = small_test_config(sampling_probability=1.0, ht_entries=8,
                                   ht_row_entries=4)
        stms = StmsPrefetcher(config, unbounded=False)
        feed(stms, [1, 2, 3])
        feed(stms, list(range(100, 120)))  # wraps the 8-entry HT
        assert stms.on_miss(0, 1) == []

    def test_bounded_index_capacity(self):
        config = small_test_config(sampling_probability=1.0)
        stms = StmsPrefetcher(config, unbounded=False, it_entries=2)
        feed(stms, [1, 2, 3, 4, 5])
        assert len(stms._index) <= 2
