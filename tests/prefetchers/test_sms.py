"""Spatial Memory Streaming prefetcher."""

from repro.config import BLOCKS_PER_PAGE
from repro.memory.block import block_in_page
from repro.prefetchers.sms import SmsPrefetcher


class TestFootprintLearning:
    def test_replays_recorded_footprint(self, config):
        sms = SmsPrefetcher(config, degree=4, agt_entries=1)
        # Generation on page 1: trigger (pc=9, offset=0), touches 0,3,5.
        for off in (0, 3, 5):
            sms.on_miss(9, block_in_page(1, off))
        # Opening page 2 evicts page 1's generation -> PHT learns it.
        sms.on_miss(9, block_in_page(2, 0))
        # Same trigger on a fresh page replays offsets 3 and 5.
        candidates = sms.on_miss(9, block_in_page(7, 0))
        assert {b for b, _ in candidates} == {block_in_page(7, 3),
                                              block_in_page(7, 5)}

    def test_pattern_keyed_by_pc_and_offset(self, config):
        sms = SmsPrefetcher(config, degree=4, agt_entries=1)
        for off in (0, 3):
            sms.on_miss(9, block_in_page(1, off))
        sms.on_miss(9, block_in_page(2, 0))  # close generation
        # Different trigger PC: no prediction.
        assert sms.on_miss(8, block_in_page(7, 0)) == []
        # Different trigger offset: no prediction.
        assert sms.on_miss(9, block_in_page(8, 1)) == []

    def test_accesses_within_open_generation_do_not_prefetch(self, config):
        sms = SmsPrefetcher(config, degree=4)
        sms.on_miss(1, block_in_page(3, 0))
        assert sms.on_miss(1, block_in_page(3, 1)) == []

    def test_agt_eviction_closes_oldest_generation(self, config):
        sms = SmsPrefetcher(config, degree=4, agt_entries=2)
        sms.on_miss(1, block_in_page(1, 4))
        sms.on_miss(1, block_in_page(2, 4))
        sms.on_miss(1, block_in_page(3, 4))  # evicts page 1
        assert (1, 4) in sms._pht

    def test_footprint_within_page_bounds(self, config):
        sms = SmsPrefetcher(config, degree=16, agt_entries=1)
        for off in range(0, BLOCKS_PER_PAGE, 7):
            sms.on_miss(2, block_in_page(1, off))
        sms.on_miss(2, block_in_page(9, 0))  # close
        candidates = sms.on_miss(2, block_in_page(5, 0))
        for block, _ in candidates:
            assert block_in_page(5, 0) <= block < block_in_page(6, 0)

    def test_prefetch_hit_counts_as_region_touch(self, config):
        sms = SmsPrefetcher(config, degree=4, agt_entries=1)
        sms.on_miss(1, block_in_page(1, 0))
        sms.on_prefetch_hit(1, block_in_page(1, 2), 1)
        sms.on_miss(1, block_in_page(2, 0))  # close page 1
        candidates = sms.on_miss(1, block_in_page(6, 0))
        assert {b for b, _ in candidates} == {block_in_page(6, 2)}
