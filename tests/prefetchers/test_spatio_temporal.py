"""VLDP+Domino stack: routing, training policy, stream-id namespacing."""

import pytest

from repro.config import small_test_config
from repro.memory.block import block_in_page
from repro.prefetchers.spatio_temporal import SpatioTemporalPrefetcher


@pytest.fixture
def config():
    return small_test_config(sampling_probability=1.0, prefetch_degree=2)


class TestRouting:
    def test_miss_feeds_both_components(self, config):
        stack = SpatioTemporalPrefetcher(config)
        # Spatial pattern trains VLDP; repetition trains Domino.
        for block in [block_in_page(1, 0), block_in_page(1, 1),
                      block_in_page(1, 2)]:
            candidates = stack.on_miss(0, block)
        # VLDP contributes a next-line-ish candidate.
        assert any(sid % 2 == stack._VLDP for _, sid in candidates)

    def test_stream_ids_decode_to_owner(self, config):
        stack = SpatioTemporalPrefetcher(config)
        for block in [10, 20, 10]:
            candidates = stack.on_miss(0, block)
        owners = {stack._owner_of(sid) for _, sid in candidates}
        assert owners <= {stack._VLDP, stack._DOMINO}

    def test_vldp_hit_does_not_train_domino(self, config):
        stack = SpatioTemporalPrefetcher(config)
        events_before = stack.domino.history.next_position
        stack.on_prefetch_hit(0, block_in_page(2, 1),
                              stream_id=2 * 2 + stack._VLDP)
        assert stack.domino.history.next_position == events_before
        assert stack.component_hits["vldp"] == 1

    def test_domino_hit_trains_both(self, config):
        stack = SpatioTemporalPrefetcher(config)
        stack.on_miss(0, 100)
        events_before = stack.domino.history.next_position
        stack.on_prefetch_hit(0, 101, stream_id=0 * 2 + stack._DOMINO)
        assert stack.domino.history.next_position == events_before + 1
        assert stack.component_hits["domino"] == 1

    def test_buffer_eviction_routed_by_owner(self, config):
        stack = SpatioTemporalPrefetcher(config)
        # Build a live Domino stream, then push unused evictions at it.
        for block in [1, 2, 3, 4, 1, 2, 3, 4]:
            stack.on_miss(0, block)
        domino_streams = list(stack.domino.streams)
        if domino_streams:
            sid = domino_streams[-1].stream_id
            stack.on_buffer_eviction(5, sid * 2 + stack._DOMINO, used=False)
            assert domino_streams[-1].unused_evictions == 1

    def test_killed_streams_are_retagged(self, config):
        config = config.scaled(active_streams=1)
        stack = SpatioTemporalPrefetcher(config)
        for block in [1, 2, 3, 1, 2, 3, 4, 5, 4, 5]:
            stack.on_miss(0, block)
        killed = stack.take_killed_streams()
        for sid in killed:
            assert stack._owner_of(sid) in (stack._VLDP, stack._DOMINO)

    def test_metadata_is_dominos(self, config):
        stack = SpatioTemporalPrefetcher(config)
        stack.on_miss(0, 1)
        assert stack.metadata is stack.domino.metadata
        assert stack.metadata.index_reads >= 1
