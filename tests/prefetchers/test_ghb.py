"""GHB G/DC delta-correlation prefetcher."""

import pytest

from repro.prefetchers.ghb import GhbPrefetcher


def feed(pf, blocks):
    out = []
    for b in blocks:
        out = pf.on_miss(0, b)
    return out


class TestDeltaCorrelation:
    def test_learns_repeating_delta_pattern(self, config):
        ghb = GhbPrefetcher(config, degree=3)
        # Deltas +1 +2 +1 +2 ... pair (1,2) recurs.
        blocks = [0, 1, 3, 4, 6, 7, 9]
        candidates = feed(ghb, blocks)
        # After ...7,9 the pair is (+1,+2); its previous occurrence ended
        # at block 6, followed by +1 (the rest is not in history yet).
        assert [b for b, _ in candidates] == [10]

    def test_cold_deltas_prefetch_nothing(self, config):
        ghb = GhbPrefetcher(config, degree=2)
        assert feed(ghb, [10, 20, 40]) == []

    def test_fresh_pointer_chase_defeats_deltas(self, config):
        """A never-repeating pointer chase has no recurring delta pairs,
        so a delta correlator stays silent (repeated chains, by contrast,
        repeat their delta sequence and ARE captured)."""
        import random
        rng = random.Random(1)
        chain = [rng.randrange(10**6) for _ in range(120)]
        ghb = GhbPrefetcher(config, degree=2)
        total = sum(len(ghb.on_miss(0, b)) for b in chain)
        assert total <= 4

    def test_history_capacity_limits_matches(self, config):
        ghb = GhbPrefetcher(config, degree=1, ghb_entries=4)
        feed(ghb, [0, 1, 3, 100, 250, 470])  # pattern long gone
        assert feed(ghb, [1000, 1001, 1003]) == []

    def test_min_entries_enforced(self, config):
        with pytest.raises(ValueError):
            GhbPrefetcher(config, ghb_entries=2)

    def test_prefetch_hit_trains_like_miss(self, config):
        ghb = GhbPrefetcher(config, degree=1)
        for b in [0, 1, 3, 4, 6]:
            ghb.on_miss(0, b)
        candidates = ghb.on_prefetch_hit(0, 7, 0)
        assert [b for b, _ in candidates] == [9]
