"""VLDP: delta-history tables, OPT, page boundaries, degree chaining."""

from repro.config import BLOCKS_PER_PAGE
from repro.memory.block import block_in_page
from repro.prefetchers.vldp import VldpPrefetcher


def page_seq(page, offsets):
    return [block_in_page(page, off) for off in offsets]


class TestDeltaPrediction:
    def test_learns_constant_stride_in_page(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        for block in page_seq(5, [0, 1, 2, 3]):
            candidates = vldp.on_miss(0, block)
        assert [b for b, _ in candidates] == [block_in_page(5, 4)]

    def test_cross_page_training_shares_dpt(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        for block in page_seq(1, [0, 2, 4, 6]):
            vldp.on_miss(0, block)
        # A different page with the same delta pattern predicts +2.
        vldp.on_miss(0, block_in_page(9, 10))
        candidates = vldp.on_miss(0, block_in_page(9, 12))
        assert [b for b, _ in candidates] == [block_in_page(9, 14)]

    def test_deeper_history_overrides_shallow(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        # Pattern: +1 +2 +1 +2 — after (1,2) the next delta is 1, after
        # (2,1) it is 2; a one-delta table alone would be ambiguous.
        offsets = [0, 1, 3, 4, 6, 7, 9, 10, 12]
        for block in page_seq(3, offsets):
            candidates = vldp.on_miss(0, block)
        # last deltas ...(2,1)? offsets end ...10,12 -> delta 2; history (1,2)
        assert [b for b, _ in candidates] == [block_in_page(3, 13)]

    def test_never_crosses_page_boundary(self, config):
        vldp = VldpPrefetcher(config, degree=4)
        last = BLOCKS_PER_PAGE - 1
        for block in page_seq(2, [last - 3, last - 2, last - 1, last]):
            candidates = vldp.on_miss(0, block)
        for block, _ in candidates:
            assert block_in_page(2, 0) <= block <= block_in_page(2, last)

    def test_degree_chains_predictions(self, config):
        vldp = VldpPrefetcher(config, degree=3)
        for block in page_seq(4, [0, 1, 2, 3]):
            candidates = vldp.on_miss(0, block)
        assert [b for b, _ in candidates] == page_seq(4, [4, 5, 6])


class TestOpt:
    def test_first_access_predicted_by_opt(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        # Train: pages starting at offset 5 continue at +3.
        for page in range(3):
            vldp.on_miss(0, block_in_page(page, 5))
            vldp.on_miss(0, block_in_page(page, 8))
        candidates = vldp.on_miss(0, block_in_page(99, 5))
        assert [b for b, _ in candidates][0] == block_in_page(99, 8)

    def test_unknown_first_offset_prefetches_nothing(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        assert vldp.on_miss(0, block_in_page(50, 17)) == []


class TestDhbCapacity:
    def test_dhb_evicts_lru_page(self, config):
        vldp = VldpPrefetcher(config, degree=1, dhb_entries=2)
        vldp.on_miss(0, block_in_page(1, 0))
        vldp.on_miss(0, block_in_page(2, 0))
        vldp.on_miss(0, block_in_page(3, 0))  # evicts page 1
        assert 1 not in vldp._dhb
        assert 2 in vldp._dhb and 3 in vldp._dhb

    def test_same_offset_repeat_ignored(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        block = block_in_page(1, 7)
        vldp.on_miss(0, block)
        vldp.on_miss(0, block)  # zero delta: no DPT update
        assert vldp._dhb[1].deltas == []

    def test_prefetch_hit_treated_as_trigger(self, config):
        vldp = VldpPrefetcher(config, degree=1)
        for block in page_seq(6, [0, 1, 2]):
            vldp.on_miss(0, block)
        candidates = vldp.on_prefetch_hit(0, block_in_page(6, 3), 6)
        assert [b for b, _ in candidates] == [block_in_page(6, 4)]
