"""GlobalHistoryPrefetcher shared machinery (via STMS as the concrete)."""

import pytest

from repro.config import small_test_config
from repro.prefetchers.stms import StmsPrefetcher


@pytest.fixture
def config():
    return small_test_config(sampling_probability=1.0, prefetch_degree=4)


def feed(pf, blocks):
    for b in blocks:
        pf.on_miss(0, b)


class TestRowGranularReads:
    def test_first_fill_stops_at_row_boundary(self, config):
        config = config.scaled(ht_row_entries=4)
        stms = StmsPrefetcher(config)
        feed(stms, list(range(100, 112)))
        candidates = stms.on_miss(0, 100)
        sid = candidates[0][1]
        stream = stms.streams.get(sid)
        # Replay starts at position 1; the first row covers 1..3, so
        # after issuing degree-4 the engine must have crossed into the
        # second row (one extra history read).
        assert stms.metadata.history_reads >= 2

    def test_extension_reads_whole_rows(self, config):
        config = config.scaled(ht_row_entries=4)
        stms = StmsPrefetcher(config)
        feed(stms, list(range(100, 124)))
        candidates = stms.on_miss(0, 100)
        sid = candidates[0][1]
        reads_before = stms.metadata.history_reads
        # Drain eight more addresses: two more rows.
        last = candidates[-1][0]
        for _ in range(8):
            more = stms.on_prefetch_hit(0, last, sid)
            if more:
                last = more[-1][0]
        assert stms.metadata.history_reads > reads_before

    def test_stream_cursor_exhausts_at_history_end(self, config):
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3])
        candidates = stms.on_miss(0, 2)  # successors: only 3 (+ recorded 2)
        sid = candidates[0][1]
        # Drain until dry: issue returns empty once history is exhausted.
        for _ in range(10):
            out = stms.on_prefetch_hit(0, 3, sid)
        assert out == [] or len(out) <= 1


class TestRecordKeeping:
    def test_prefetch_hits_are_recorded_in_history(self, config):
        stms = StmsPrefetcher(config)
        stms.on_miss(0, 10)
        stms.on_prefetch_hit(0, 20, stream_id=999)
        assert stms.history.read_at(0) == 10
        assert stms.history.read_at(1) == 20

    def test_killed_stream_reported_once(self, config):
        config = config.scaled(active_streams=1)
        stms = StmsPrefetcher(config)
        feed(stms, [1, 2, 3, 4, 5, 6])
        stms.on_miss(0, 1)   # stream A
        stms.on_miss(0, 2)   # stream B replaces A
        killed = stms.take_killed_streams()
        assert len(killed) == 1
        assert stms.take_killed_streams() == []

    def test_lookup_without_match_allocates_no_stream_prefetches(self, config):
        stms = StmsPrefetcher(config)
        assert stms.on_miss(0, 42) == []
