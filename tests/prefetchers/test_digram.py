"""Digram (pair-lookup) behaviour tests."""

import pytest

from repro.config import small_test_config
from repro.prefetchers.digram import DigramPrefetcher


@pytest.fixture
def config():
    return small_test_config(sampling_probability=1.0, prefetch_degree=4)


def feed(prefetcher, blocks, pc=0):
    out = []
    for block in blocks:
        out = prefetcher.on_miss(pc, block)
    return out


class TestPairLookup:
    def test_first_miss_of_stream_cannot_prefetch(self, config):
        digram = DigramPrefetcher(config)
        feed(digram, [1, 2, 3, 4, 5, 6])
        # Pair (prev=6, cur=1) was never seen.
        assert digram.on_miss(0, 1) == []

    def test_second_miss_identifies_stream(self, config):
        digram = DigramPrefetcher(config)
        feed(digram, [1, 2, 3, 4, 5, 6, 99])
        digram.on_miss(0, 1)
        candidates = digram.on_miss(0, 2)
        assert [b for b, _ in candidates] == [3, 4, 5, 6]

    def test_pair_disambiguates_shared_head(self, config):
        digram = DigramPrefetcher(config)
        feed(digram, [1, 2, 3, 4, 5, 99])
        feed(digram, [1, 20, 30, 40, 50, 98])
        digram.on_miss(0, 1)
        # The pair (1, 2) selects the FIRST variant even though the
        # second ran more recently.
        candidates = digram.on_miss(0, 2)
        assert [b for b, _ in candidates] == [3, 4, 5, 99]

    def test_very_first_miss_has_no_pair(self, config):
        digram = DigramPrefetcher(config)
        assert digram.on_miss(0, 42) == []

    def test_pair_index_is_order_sensitive(self, config):
        digram = DigramPrefetcher(config)
        feed(digram, [1, 2, 3, 4, 5, 99])
        digram.on_miss(0, 2)
        # Pair (2, 1) was never observed — only (1, 2).
        assert digram.on_miss(0, 1) == []


class TestBoundedIndex:
    def test_stale_pair_dropped_after_wrap(self):
        config = small_test_config(sampling_probability=1.0, ht_entries=8)
        digram = DigramPrefetcher(config, unbounded=False)
        feed(digram, [1, 2, 3])
        feed(digram, list(range(100, 120)))
        digram.on_miss(0, 1)
        assert digram.on_miss(0, 2) == []

    def test_bounded_capacity(self):
        config = small_test_config(sampling_probability=1.0)
        digram = DigramPrefetcher(config, unbounded=False, it_entries=3)
        feed(digram, [1, 2, 3, 4, 5, 6, 7, 8])
        assert len(digram._index) <= 3
