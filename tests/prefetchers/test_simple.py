"""Next-line, stride, and Markov reference prefetchers."""

from repro.prefetchers.markov import MarkovPrefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.stride import StridePrefetcher


class TestNextLine:
    def test_prefetches_sequential_blocks(self, config):
        nl = NextLinePrefetcher(config, degree=3)
        assert [b for b, _ in nl.on_miss(0, 10)] == [11, 12, 13]

    def test_prefetch_hit_continues(self, config):
        nl = NextLinePrefetcher(config, degree=1)
        assert [b for b, _ in nl.on_prefetch_hit(0, 11, 0)] == [12]


class TestStride:
    def test_requires_confirmation(self, config):
        stride = StridePrefetcher(config, degree=2)
        assert stride.on_miss(pc=1, block=10) == []
        assert stride.on_miss(pc=1, block=14) == []  # stride 4, unconfirmed
        candidates = stride.on_miss(pc=1, block=18)  # confirmed
        assert [b for b, _ in candidates] == [22, 26]

    def test_stride_change_resets_confirmation(self, config):
        stride = StridePrefetcher(config, degree=1)
        stride.on_miss(1, 10)
        stride.on_miss(1, 14)
        stride.on_miss(1, 18)
        assert stride.on_miss(1, 25) == []  # new stride 7, unconfirmed
        assert [b for b, _ in stride.on_miss(1, 32)] == [39]

    def test_streams_are_per_pc(self, config):
        stride = StridePrefetcher(config, degree=1)
        stride.on_miss(1, 10)
        stride.on_miss(2, 100)
        stride.on_miss(1, 14)
        stride.on_miss(2, 108)
        stride.on_miss(1, 18)
        assert [b for b, _ in stride.on_miss(2, 116)] == [124]

    def test_table_capacity_lru(self, config):
        stride = StridePrefetcher(config, degree=1, table_entries=2)
        stride.on_miss(1, 10)
        stride.on_miss(2, 20)
        stride.on_miss(3, 30)  # evicts PC 1
        assert 1 not in stride._table

    def test_zero_stride_never_prefetches(self, config):
        stride = StridePrefetcher(config, degree=1)
        for _ in range(4):
            assert stride.on_miss(1, 50) == []


class TestMarkov:
    def test_learns_single_successor(self, config):
        markov = MarkovPrefetcher(config, degree=2)
        for block in [1, 2, 3, 1, 2, 3]:
            markov.on_miss(0, block)
        candidates = markov.on_miss(0, 1)
        assert [b for b, _ in candidates][0] == 2

    def test_multiple_successors_most_recent_first(self, config):
        markov = MarkovPrefetcher(config, degree=4)
        for block in [1, 2, 9, 1, 3, 9]:
            markov.on_miss(0, block)
        candidates = markov.on_miss(0, 1)
        assert [b for b, _ in candidates][:2] == [3, 2]

    def test_successor_ways_bounded(self, config):
        markov = MarkovPrefetcher(config, degree=8, ways=2)
        for succ in [2, 3, 4, 5]:
            markov.on_miss(0, 1)
            markov.on_miss(0, succ)
        candidates = markov.on_miss(0, 1)
        returned = [b for b, _ in candidates]
        assert len(returned) <= 2
        assert 2 not in returned  # oldest successors evicted
