"""Variable-depth lookup: analyzer statistics and idealised prefetcher."""

import pytest

from repro.prefetchers.multi_lookup import (LookupDepthAnalyzer,
                                            MultiLookupPrefetcher)


class TestLookupDepthAnalyzer:
    def test_periodic_sequence_fully_predictable(self):
        stats = LookupDepthAnalyzer(3).analyze([1, 2, 3] * 10)
        # Depth 1 suffices on an unambiguous loop.
        assert stats[0].accuracy_given_match > 0.9
        assert stats[0].match_rate > 0.8

    def test_ambiguous_head_fixed_by_depth_two(self):
        # 'A' is followed alternately by B-streams and C-streams.
        seq = ([1, 2, 3, 9, 1, 4, 5, 9] * 8)
        stats = LookupDepthAnalyzer(2).analyze(seq)
        assert stats[1].accuracy_given_match > stats[0].accuracy_given_match

    def test_match_rate_monotonically_nonincreasing(self):
        import random
        rng = random.Random(3)
        seq = [rng.randrange(6) for _ in range(300)]
        stats = LookupDepthAnalyzer(5).analyze(seq)
        rates = [s.match_rate for s in stats]
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:], strict=False))

    def test_empty_and_short_inputs(self):
        stats = LookupDepthAnalyzer(3).analyze([])
        assert all(s.attempts == 0 for s in stats)
        stats = LookupDepthAnalyzer(3).analyze([5])
        assert stats[0].attempts == 1
        assert stats[1].attempts == 0  # no pair exists yet

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            LookupDepthAnalyzer(0)


class TestMultiLookupPrefetcher:
    def test_depth_one_behaves_like_ideal_stms(self, config):
        pf = MultiLookupPrefetcher(config, degree=2, depth=1)
        for block in [1, 2, 3, 4, 5]:
            pf.on_miss(0, block)
        candidates = pf.on_miss(0, 1)
        assert [b for b, _ in candidates] == [2, 3]

    def test_depth_two_prefers_pair_match(self, config):
        pf = MultiLookupPrefetcher(config, degree=2, depth=2)
        for block in [1, 2, 30, 31, 9, 8, 2, 40, 41, 7]:
            pf.on_miss(0, block)
        # Suffix (1, 2) matches the first occurrence; depth-1 alone
        # would match the more recent bare 2 (followed by 40).
        pf.on_miss(0, 1)
        candidates = pf.on_miss(0, 2)
        assert [b for b, _ in candidates] == [30, 31]

    def test_prefetch_hit_advances(self, config):
        pf = MultiLookupPrefetcher(config, degree=1, depth=1)
        for block in [1, 2, 3, 4, 1]:
            pf.on_miss(0, block)
        candidates = pf.on_miss(0, 1)  # second 1... trains again
        (block, sid), = candidates
        more = pf.on_prefetch_hit(0, block, sid)
        assert len(more) == 1

    def test_invalid_depth(self, config):
        with pytest.raises(ValueError):
            MultiLookupPrefetcher(config, depth=0)
