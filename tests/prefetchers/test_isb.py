"""Idealised PC-localised ISB tests."""

from repro.prefetchers.isb import IsbPrefetcher


class TestPcLocalisation:
    def test_predicts_within_pc_stream(self, config):
        isb = IsbPrefetcher(config, degree=2)
        for block in [10, 20, 30, 40]:
            isb.on_miss(pc=7, block=block)
        candidates = isb.on_miss(pc=7, block=10)
        assert [b for b, _ in candidates] == [20, 30]

    def test_different_pcs_have_independent_streams(self, config):
        isb = IsbPrefetcher(config, degree=2)
        for block in [10, 20, 30]:
            isb.on_miss(pc=1, block=block)
        # Same addresses under a different PC: no history there.
        assert isb.on_miss(pc=2, block=10) == []

    def test_pc_interleaving_breaks_global_order(self, config):
        """The paper's core criticism: ISB predicts the next miss *of the
        instruction*, not the next miss of the program."""
        isb = IsbPrefetcher(config, degree=1)
        # Global order: (1,A) (2,B) (1,C) (2,D) — PC 1 sees A,C.
        isb.on_miss(pc=1, block=100)
        isb.on_miss(pc=2, block=200)
        isb.on_miss(pc=1, block=300)
        isb.on_miss(pc=2, block=400)
        candidates = isb.on_miss(pc=1, block=100)
        # ISB predicts 300 (PC 1's next), not 200 (the program's next).
        assert [b for b, _ in candidates] == [300]

    def test_prefetch_hit_trains_and_advances(self, config):
        isb = IsbPrefetcher(config, degree=1)
        for block in [10, 20, 30, 10, 20]:
            isb.on_miss(pc=5, block=block)
        candidates = isb.on_prefetch_hit(pc=5, block=10, stream_id=5)
        assert [b for b, _ in candidates] == [20]

    def test_stream_id_is_the_pc(self, config):
        isb = IsbPrefetcher(config, degree=1)
        isb.on_miss(pc=9, block=1)
        isb.on_miss(pc=9, block=2)
        candidates = isb.on_miss(pc=9, block=1)
        assert candidates[0][1] == 9

    def test_no_metadata_traffic_for_idealised_design(self, config):
        isb = IsbPrefetcher(config)
        for block in range(50):
            isb.on_miss(pc=1, block=block)
        assert isb.metadata.total == 0
        assert isb.first_prefetch_round_trips == 0
