"""Prefetcher registry."""

import pytest

from repro.errors import UnknownPrefetcherError
from repro.prefetchers.base import Prefetcher
from repro.prefetchers.registry import (PAPER_PREFETCHERS, PREFETCHERS,
                                        make_prefetcher, prefetcher_names)


def test_all_registered_names_construct(config):
    for name in prefetcher_names():
        prefetcher = make_prefetcher(name, config)
        assert isinstance(prefetcher, Prefetcher)
        assert prefetcher.degree == config.prefetch_degree


def test_paper_set_is_registered():
    assert set(PAPER_PREFETCHERS) <= set(PREFETCHERS)


def test_degree_override(config):
    assert make_prefetcher("domino", config, degree=2).degree == 2


def test_kwargs_forwarded(config):
    pf = make_prefetcher("multi_lookup", config, depth=3)
    assert pf.depth == 3


def test_unknown_name(config):
    with pytest.raises(UnknownPrefetcherError):
        make_prefetcher("nope", config)


def test_names_are_stable(config):
    for name in prefetcher_names():
        assert make_prefetcher(name, config).name == name
