"""Prefetcher base interface and NullPrefetcher."""

import pytest

from repro.prefetchers.base import NullPrefetcher, Prefetcher


class TestNullPrefetcher:
    def test_never_prefetches(self, config):
        null = NullPrefetcher(config)
        assert null.on_miss(0, 1) == []
        assert null.on_prefetch_hit(0, 1, 0) == []

    def test_default_degree_from_config(self, config):
        assert NullPrefetcher(config).degree == config.prefetch_degree

    def test_degree_override(self, config):
        assert NullPrefetcher(config, degree=2).degree == 2

    def test_invalid_degree(self, config):
        with pytest.raises(ValueError):
            NullPrefetcher(config, degree=0)

    def test_killed_streams_drained_once(self, config):
        null = NullPrefetcher(config)
        null._kill_stream(7)
        assert null.take_killed_streams() == [7]
        assert null.take_killed_streams() == []

    def test_reset_traffic(self, config):
        null = NullPrefetcher(config)
        null.metadata.index_reads = 5
        null.reset_traffic()
        assert null.metadata.total == 0

    def test_describe(self, config):
        assert "baseline" in NullPrefetcher(config).describe()
