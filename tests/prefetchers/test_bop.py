"""Best-Offset prefetcher learning rounds."""

import pytest

from repro.prefetchers.best_offset import BestOffsetPrefetcher


class TestOffsetLearning:
    def test_learns_dominant_offset(self, config):
        bop = BestOffsetPrefetcher(config, degree=1, offsets=(1, 2, 4),
                                   score_max=4, round_max=50)
        # A pure +4 stream: only offset 4 scores.
        block = 0
        for _ in range(200):
            bop.on_miss(0, block)
            block += 4
        assert bop.active_offset == 4

    def test_prefetches_with_active_offset(self, config):
        bop = BestOffsetPrefetcher(config, degree=3, offsets=(2,),
                                   score_max=2, round_max=10)
        block = 0
        for _ in range(50):
            bop.on_miss(0, block)
            block += 2
        candidates = bop.on_miss(0, 1000)
        assert [b for b, _ in candidates] == [1002, 1004, 1006]

    def test_no_prefetch_before_learning(self, config):
        bop = BestOffsetPrefetcher(config, degree=2)
        assert bop.on_miss(0, 100) == []

    def test_random_stream_keeps_prefetching_off(self, config):
        import random
        rng = random.Random(2)
        bop = BestOffsetPrefetcher(config, degree=2, round_max=5,
                                   offsets=(1, 2, 4))
        for _ in range(500):
            bop.on_miss(0, rng.randrange(10**9))
        assert bop.active_offset is None

    def test_round_resets_scores(self, config):
        bop = BestOffsetPrefetcher(config, degree=1, offsets=(1,),
                                   score_max=2, round_max=3)
        for block in (0, 1, 2, 3):
            bop.on_miss(0, block)
        assert all(score <= 2 for score in bop._scores.values())

    def test_needs_offsets(self, config):
        with pytest.raises(ValueError):
            BestOffsetPrefetcher(config, offsets=())
