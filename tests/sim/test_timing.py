"""Cycle-accounting timing model tests."""

import pytest

from repro.config import small_test_config
from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.sim.timing import TimingSimulator


class OneShotPrefetcher(Prefetcher):
    """Prefetches a fixed block on the first miss only."""

    name = "oneshot"
    first_prefetch_round_trips = 0

    def __init__(self, config, target):
        super().__init__(config)
        self.target = target
        self.fired = False

    def on_miss(self, pc, block):
        if self.fired:
            return []
        self.fired = True
        return [(self.target, 0)]


class TestBaselineTiming:
    def test_all_hits_run_at_issue_width(self, config, trace_factory):
        # Same block over and over: one cold miss, then L1 hits.
        trace = trace_factory([5] * 100, works=[4] * 100)
        sim = TimingSimulator(config, NullPrefetcher(config))
        result = sim.run(trace)
        # 500 instructions at width 4 plus one memory stall.
        assert result.cycles < 500 / 4 + 2 * config.memory_latency_cycles
        assert result.misses == 1

    def test_dependent_misses_serialise(self, config, trace_factory):
        blocks = [i * 64 for i in range(50)]  # all distinct, all miss
        dep_trace = trace_factory(blocks, deps=[1] * 50)
        indep_trace = trace_factory(blocks, deps=[0] * 50)
        dep = TimingSimulator(config, NullPrefetcher(config)).run(dep_trace)
        indep = TimingSimulator(config, NullPrefetcher(config)).run(indep_trace)
        assert dep.cycles > indep.cycles * 1.5

    def test_rob_limits_overlap(self, trace_factory):
        small_rob = small_test_config(rob_entries=2)
        big_rob = small_test_config(rob_entries=512)
        blocks = [i * 64 for i in range(60)]
        trace = trace_factory(blocks, works=[0] * 60)
        slow = TimingSimulator(small_rob, NullPrefetcher(small_rob)).run(trace)
        fast = TimingSimulator(big_rob, NullPrefetcher(big_rob)).run(trace)
        assert slow.cycles > fast.cycles

    def test_instructions_counted(self, config, trace_factory):
        trace = trace_factory([1, 2], works=[10, 20])
        result = TimingSimulator(config, NullPrefetcher(config)).run(trace)
        assert result.instructions == 32


class TestPrefetchTiming:
    def test_timely_prefetch_hides_latency(self, config, trace_factory):
        # Access A, lots of work, then B: the prefetch arrives in time.
        trace = trace_factory([100, 200], works=[0, 4000], deps=[0, 1])
        with_pf = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(trace)
        without = TimingSimulator(config, NullPrefetcher(config)).run(
            trace_factory([100, 200], works=[0, 4000], deps=[0, 1]))
        assert with_pf.prefetch_hits == 1
        assert with_pf.late_prefetch_hits == 0
        assert with_pf.cycles < without.cycles

    def test_late_prefetch_still_partially_helps(self, config, trace_factory):
        # B demanded immediately after A: the prefetch is in flight.
        trace = trace_factory([100, 200], works=[0, 0], deps=[0, 1])
        result = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(trace)
        assert result.prefetch_hits == 1
        assert result.late_prefetch_hits == 1

    def test_late_hit_never_worse_than_fresh_fetch(self, config, trace_factory):
        trace = trace_factory([100, 200], works=[0, 0], deps=[1, 1])
        with_pf = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(trace)
        without = TimingSimulator(config, NullPrefetcher(config)).run(
            trace_factory([100, 200], works=[0, 0], deps=[1, 1]))
        assert with_pf.cycles <= without.cycles + 1

    def test_metadata_round_trips_delay_first_prefetch(self, config, trace_factory):
        class SlowMetadata(OneShotPrefetcher):
            first_prefetch_round_trips = 2

        # Enough work to hide one round trip but not three.
        trace = trace_factory([100, 200], works=[0, 800], deps=[0, 1])
        fast = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(trace)
        slow = TimingSimulator(config, SlowMetadata(config, 200)).run(
            trace_factory([100, 200], works=[0, 800], deps=[0, 1]))
        assert slow.cycles >= fast.cycles

    def test_prefetch_dropped_under_backlog(self, trace_factory):
        config = small_test_config(prefetch_drop_backlog_blocks=1)
        blocks = list(range(0, 6400, 64))
        trace = trace_factory(blocks, works=[0] * len(blocks))
        sim = TimingSimulator(config, NextLinePrefetcher(config, degree=4))
        result = sim.run(trace)
        assert result.prefetches_dropped > 0


class TestOutstandingDrain:
    """finalise() must wait for in-flight misses (cycle undercount fix)."""

    def test_single_independent_miss_accrues_latency(self, config, trace_factory):
        # One independent miss and nothing after it: before the drain
        # fix the clock never advanced past the (tiny) issue time and
        # the miss contributed zero cycles.
        trace = trace_factory([100])
        result = TimingSimulator(config, NullPrefetcher(config)).run(trace)
        assert result.cycles >= config.memory_latency_cycles

    def test_trace_ending_in_misses_accrues_latency(self, config, trace_factory):
        blocks = [i * 64 for i in range(10)]
        indep = TimingSimulator(config, NullPrefetcher(config)).run(
            trace_factory(blocks, deps=[0] * 10))
        dep = TimingSimulator(config, NullPrefetcher(config)).run(
            trace_factory(blocks, deps=[1] * 10))
        # Independent misses overlap but the last one must still finish;
        # dependent ones serialise to at least as many cycles.
        assert indep.cycles >= config.memory_latency_cycles
        assert dep.cycles >= indep.cycles

    def test_overlapped_tail_cheaper_than_serialised_tail(self, config,
                                                          trace_factory):
        # The drain waits for the *last* completion, not the sum: a
        # burst of independent trailing misses still overlaps.
        n = 8
        blocks = [i * 64 for i in range(n)]
        result = TimingSimulator(config, NullPrefetcher(config)).run(
            trace_factory(blocks, deps=[0] * n))
        assert result.cycles < n * config.memory_latency_cycles

    def test_finalise_idempotent(self, config, trace_factory):
        sim = TimingSimulator(config, NullPrefetcher(config))
        sim.load(trace_factory([100, 200, 300]))
        while not sim.done():
            sim.step()
        first = sim.finalise().cycles
        assert sim.finalise().cycles == first
        assert not sim._outstanding


class TestTimelyIndependentPrefetchHit:
    """A timely prefetch hit costs the L1 hit latency on every path."""

    def test_independent_hit_charged_hit_latency(self, config, trace_factory):
        # Access 100 (miss, prefetches 200), long work gap, then an
        # *independent* access to 200: a timely buffer hit.  Before the
        # fix its completion was computed and dropped, making it free.
        pf_trace = trace_factory([100, 200], works=[0, 4000], deps=[0, 0])
        hit_trace = trace_factory([100, 100], works=[0, 4000], deps=[0, 0])
        with_pf = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(pf_trace)
        l1_hit = TimingSimulator(config, NullPrefetcher(config)).run(hit_trace)
        assert with_pf.prefetch_hits == 1
        assert with_pf.late_prefetch_hits == 0
        assert with_pf.cycles - l1_hit.cycles == pytest.approx(
            config.l1d.hit_latency)

    def test_dependent_and_independent_hits_cost_the_same(self, config,
                                                          trace_factory):
        dep = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(
            trace_factory([100, 200], works=[0, 4000], deps=[0, 1]))
        indep = TimingSimulator(config, OneShotPrefetcher(config, 200)).run(
            trace_factory([100, 200], works=[0, 4000], deps=[0, 0]))
        assert dep.prefetch_hits == indep.prefetch_hits == 1
        assert indep.cycles == pytest.approx(dep.cycles)


class TestWarmupWindow:
    def test_warmup_excluded(self, config, tiny_trace):
        full = TimingSimulator(config, NullPrefetcher(config)).run(tiny_trace)
        windowed = TimingSimulator(config, NullPrefetcher(config)).run(
            tiny_trace, warmup_frac=0.5)
        assert windowed.instructions < full.instructions
        assert 0 < windowed.cycles < full.cycles

    def test_ipc_positive(self, config, tiny_trace):
        result = TimingSimulator(config, NullPrefetcher(config)).run(tiny_trace)
        assert result.ipc > 0
