"""Cross-cutting simulator invariants, property-style.

These run every prefetcher against randomly structured traces and
assert the accounting identities that must hold regardless of
prediction quality — the engine equivalent of conservation laws.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import small_test_config
from repro.prefetchers.registry import make_prefetcher, prefetcher_names
from repro.sim.engine import simulate_trace
from repro.sim.timing import TimingSimulator
from repro.sim.trace import MemoryTrace


def random_trace(seed: int, n: int = 1500) -> MemoryTrace:
    rng = np.random.default_rng(seed)
    # A blend of loops and noise so every prefetcher has something to chew.
    loop = rng.integers(0, 300, size=40)
    blocks = []
    while len(blocks) < n:
        if rng.random() < 0.7:
            start = int(rng.integers(0, len(loop) - 8))
            blocks.extend(loop[start:start + 8].tolist())
        else:
            blocks.append(int(rng.integers(0, 10_000)))
    return MemoryTrace(
        pcs=rng.integers(0, 16, size=n),
        blocks=np.asarray(blocks[:n], dtype=np.int64),
        deps=(rng.random(n) < 0.3).astype(np.int8),
        works=rng.integers(0, 10, size=n).astype(np.int32),
        name=f"random{seed}",
    )


ALL_PREFETCHERS = [p for p in prefetcher_names() if p != "baseline"]


@pytest.mark.parametrize("name", ALL_PREFETCHERS)
def test_engine_accounting_identities(name):
    """accesses = hits + misses + covered; issued = useful + useless."""
    config = small_test_config()
    trace = random_trace(seed=hash(name) % 1000)
    result = simulate_trace(trace, config, make_prefetcher(name, config))
    m = result.metrics
    assert m.accesses == m.l1_hits + m.misses + m.prefetch_hits
    assert m.prefetches_issued == m.prefetch_hits + m.overpredictions
    assert 0.0 <= result.coverage <= 1.0
    assert 0.0 <= result.accuracy <= 1.0
    assert m.overpredictions >= 0


@pytest.mark.parametrize("name", ["stms", "digram", "domino"])
def test_metadata_traffic_nonnegative_and_plausible(name):
    config = small_test_config()
    trace = random_trace(seed=7)
    result = simulate_trace(trace, config, make_prefetcher(name, config))
    md = result.metadata
    assert md.index_reads >= result.metrics.misses * 0 and md.index_reads >= 0
    # Every miss triggers at least one index-row fetch.
    assert md.index_reads >= result.metrics.misses
    # HT writes happen once per row of recorded events.
    events = result.metrics.triggering_events
    assert md.history_writes <= events // config.ht_row_entries + 1


@pytest.mark.parametrize("name", ["domino", "stms", "vldp", "isb"])
def test_timing_identities(name):
    config = small_test_config()
    trace = random_trace(seed=13)
    sim = TimingSimulator(config, make_prefetcher(name, config))
    result = sim.run(trace)
    assert result.cycles > 0
    assert result.instructions == trace.instructions
    assert result.ipc <= config.issue_width + 1e-9
    assert result.late_prefetch_hits <= result.prefetch_hits
    assert result.memory_accesses + result.llc_hits <= (
        result.misses + result.prefetch_hits)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_domino_never_crashes_and_conserves(seed):
    config = small_test_config()
    trace = random_trace(seed=seed, n=800)
    result = simulate_trace(trace, config, make_prefetcher("domino", config))
    m = result.metrics
    assert m.accesses == m.l1_hits + m.misses + m.prefetch_hits
    assert m.prefetches_issued == m.prefetch_hits + m.overpredictions


def test_deterministic_across_runs():
    config = small_test_config()
    trace = random_trace(seed=21)
    a = simulate_trace(trace, config, make_prefetcher("domino", config))
    b = simulate_trace(trace, config, make_prefetcher("domino", config))
    assert a.metrics == b.metrics
