"""Trace container, builder, and persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.sim.trace import MemoryTrace, TraceBuilder, load_trace, save_trace


class TestBuilder:
    def test_build_roundtrip(self):
        builder = TraceBuilder("t")
        builder.append(pc=1, block=10, dep=1, work=5)
        builder.append(pc=2, block=20)
        trace = builder.build()
        assert len(trace) == 2
        assert trace.pcs.tolist() == [1, 2]
        assert trace.blocks.tolist() == [10, 20]
        assert trace.deps.tolist() == [1, 0]
        assert trace.works.tolist() == [5, 0]

    def test_len_during_building(self):
        builder = TraceBuilder()
        assert len(builder) == 0
        builder.append(0, 1)
        assert len(builder) == 1


class TestMemoryTrace:
    def test_instruction_count(self, trace_factory):
        trace = trace_factory([1, 2, 3], works=[10, 0, 5])
        assert trace.instructions == 15 + 3

    def test_footprint(self, trace_factory):
        trace = trace_factory([1, 2, 2, 3, 1])
        assert trace.footprint_blocks == 3

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TraceError):
            MemoryTrace(pcs=np.zeros(2, dtype=np.int64),
                        blocks=np.zeros(3, dtype=np.int64),
                        deps=np.zeros(3, dtype=np.int8),
                        works=np.zeros(3, dtype=np.int32))

    def test_negative_blocks_rejected(self, trace_factory):
        with pytest.raises(TraceError):
            trace_factory([1, -2, 3])

    def test_slice(self, trace_factory):
        trace = trace_factory([1, 2, 3, 4, 5])
        part = trace.slice(1, 3)
        assert part.blocks.tolist() == [2, 3]

    def test_slice_full_range_and_empty(self, trace_factory):
        trace = trace_factory([1, 2, 3])
        assert trace.slice(0, 3).blocks.tolist() == [1, 2, 3]
        assert len(trace.slice(2, 2)) == 0

    @pytest.mark.parametrize("start,stop", [
        (-1, 2),    # negative start would wrap under numpy semantics
        (0, -1),    # negative stop would silently shrink
        (0, 4),     # stop past the end would silently clamp
        (5, 6),     # fully out of range would be silently empty
        (3, 1),     # inverted window would be silently empty
    ])
    def test_slice_out_of_bounds_rejected(self, trace_factory, start, stop):
        with pytest.raises(TraceError):
            trace_factory([1, 2, 3]).slice(start, stop)

    def test_split_covers_everything(self, trace_factory):
        trace = trace_factory(list(range(10)))
        parts = trace.split(3)
        assert sum(len(p) for p in parts) == 10
        rejoined = [b for p in parts for b in p.blocks.tolist()]
        assert rejoined == list(range(10))

    def test_split_invalid(self, trace_factory):
        with pytest.raises(TraceError):
            trace_factory([1]).split(0)

    def test_as_lists_returns_python_ints(self, trace_factory):
        pcs, blocks, deps, works = trace_factory([1, 2]).as_lists()
        assert all(type(v) is int for v in blocks)


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path, trace_factory):
        trace = trace_factory([5, 6, 7], pcs=[1, 2, 3], deps=[0, 1, 0],
                              works=[9, 9, 9], name="roundtrip")
        path = tmp_path / "t.npz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.blocks.tolist() == [5, 6, 7]
        assert loaded.pcs.tolist() == [1, 2, 3]
        assert loaded.deps.tolist() == [0, 1, 0]
        assert loaded.name == "roundtrip"

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "missing.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, foo=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_roundtrip_via_str_paths(self, tmp_path, trace_factory):
        """The artifact-store path handles plain strings too."""
        trace = trace_factory([1, 2, 3], name="strpath")
        path = str(tmp_path / "t.npz")
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.name == "strpath"
        assert loaded.blocks.tolist() == [1, 2, 3]
        assert loaded.works.tolist() == trace.works.tolist()

    def test_garbage_bytes_raise_trace_error(self, tmp_path):
        """Not-a-zip files must surface as TraceError, not BadZipFile."""
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"\x00\x01 this is not an npz archive")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_truncated_archive_raises_trace_error(self, tmp_path, trace_factory):
        """A half-written artifact (killed process) is malformed, not fatal."""
        path = tmp_path / "t.npz"
        save_trace(trace_factory([1, 2, 3]), path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(TraceError):
            load_trace(path)
