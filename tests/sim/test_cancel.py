"""Cooperative cancellation: token semantics and engine checkpoints.

The load-bearing guarantees: an uncancelled token changes *nothing*
(bit-identical results, full progress), a cancel lands mid-run with
strictly fewer simulated accesses than the trace, and a deadline trips
through the same checkpoint machinery.
"""

import pytest

from repro.cancel import (DEFAULT_CHECK_EVERY, REASON_DEADLINE, CancelToken,
                          cancel_scope, current_token)
from repro.errors import ConfigError, JobCancelled
from repro.prefetchers.stms import StmsPrefetcher
from repro.sim.engine import TraceSimulator, simulate_trace
from repro.sim.fastpath import build_l1_filter


class FakeClock:
    """A hand-cranked monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class TestToken:
    def test_defaults(self):
        token = CancelToken()
        assert not token.cancelled
        assert token.reason == ""
        assert token.progress == 0
        assert token.check_every == DEFAULT_CHECK_EVERY
        assert token.deadline_at is None
        token.raise_if_cancelled()  # no-op while uncancelled

    def test_cancel_is_first_wins(self):
        token = CancelToken()
        assert token.cancel("client_cancel")
        assert not token.cancel("too_late")
        assert token.cancelled
        assert token.reason == "client_cancel"

    def test_empty_reason_normalised(self):
        token = CancelToken()
        token.cancel("")
        assert token.reason == "cancelled"

    def test_raise_carries_reason_and_progress(self):
        token = CancelToken()
        token.advance(123)
        token.cancel("client_cancel")
        with pytest.raises(JobCancelled) as exc_info:
            token.raise_if_cancelled()
        assert exc_info.value.reason == "client_cancel"
        assert exc_info.value.progress == 123

    def test_checkpoint_publishes_then_raises(self):
        token = CancelToken()
        token.checkpoint(10)
        assert token.progress == 10
        token.cancel("x")
        with pytest.raises(JobCancelled):
            token.checkpoint(5)
        assert token.progress == 15  # progress published before the raise

    def test_advance_ignores_nonpositive(self):
        token = CancelToken()
        token.advance(0)
        token.advance(-3)
        assert token.progress == 0

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            CancelToken(check_every=0)
        with pytest.raises(ConfigError):
            CancelToken(deadline_s=0.0)
        with pytest.raises(ConfigError):
            CancelToken(deadline_s=-1.0)

    def test_deadline_autocancels_on_observation(self):
        clock = FakeClock()
        token = CancelToken(deadline_s=5.0, clock=clock)
        assert not token.cancelled
        clock.now += 5.1
        assert token.cancelled
        assert token.reason == REASON_DEADLINE
        assert token.cancelled_at == clock.now

    def test_explicit_cancel_beats_deadline(self):
        clock = FakeClock()
        token = CancelToken(deadline_s=5.0, clock=clock)
        token.cancel("client_cancel")
        clock.now += 10.0
        assert token.cancelled
        assert token.reason == "client_cancel"

    def test_wait_returns_promptly_when_cancelled(self):
        token = CancelToken()
        token.cancel("x")
        assert token.wait(60.0)  # returns immediately, not after a minute

    def test_wait_caps_at_deadline(self):
        clock = FakeClock()
        clock.now = 100.0
        token = CancelToken(deadline_s=1e-6, clock=clock)
        clock.now += 1.0
        assert token.wait(60.0)
        assert token.reason == REASON_DEADLINE

    def test_cancelled_at_records_first_cancel(self):
        clock = FakeClock()
        token = CancelToken(clock=clock)
        assert token.cancelled_at == 0.0
        clock.now = 200.0
        token.cancel("x")
        clock.now = 300.0
        token.cancel("y")
        assert token.cancelled_at == 200.0


class TestScope:
    def test_scope_installs_and_restores(self):
        token = CancelToken()
        assert current_token() is None
        with cancel_scope(token):
            assert current_token() is token
        assert current_token() is None

    def test_none_scope_does_not_mask_outer(self):
        outer = CancelToken()
        with cancel_scope(outer):
            with cancel_scope(None):
                assert current_token() is outer

    def test_nested_scopes_restore_outer(self):
        outer, inner = CancelToken(), CancelToken()
        with cancel_scope(outer):
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer


class TestEngineCheckpoints:
    def test_uncancelled_run_is_bit_identical(self, config, tiny_trace):
        baseline = simulate_trace(tiny_trace, config,
                                  StmsPrefetcher(config))
        token = CancelToken(check_every=64)
        with cancel_scope(token):
            instrumented = simulate_trace(tiny_trace, config,
                                          StmsPrefetcher(config))
        assert instrumented.metrics == baseline.metrics
        assert token.progress == len(tiny_trace)
        assert not token.cancelled

    def test_precancelled_token_stops_before_work(self, config, tiny_trace):
        token = CancelToken()
        token.cancel("client_cancel")
        with cancel_scope(token), pytest.raises(JobCancelled):
            simulate_trace(tiny_trace, config, StmsPrefetcher(config))
        assert token.progress == 0

    def test_midrun_cancel_stops_with_partial_progress(self, config,
                                                       tiny_trace):
        class TripwirePrefetcher(StmsPrefetcher):
            """Cancels its own token partway through the trace."""

            def __init__(self, cfg, token, after):
                super().__init__(cfg)
                self.token = token
                self.after = after
                self.seen = 0

            def on_miss(self, pc, block):
                self.seen += 1
                if self.seen == self.after:
                    self.token.cancel("client_cancel")
                return super().on_miss(pc, block)

        token = CancelToken(check_every=64)
        prefetcher = TripwirePrefetcher(config, token, after=10)
        with cancel_scope(token), pytest.raises(JobCancelled) as exc_info:
            simulate_trace(tiny_trace, config, prefetcher)
        assert exc_info.value.reason == "client_cancel"
        assert 0 < token.progress < len(tiny_trace)
        # Bounded staleness: the cancel landed within one check window
        # of being requested (the tripwire fired within `after` misses,
        # i.e. at most `after` accesses into some window).
        assert token.progress <= ((10 // 64) + 2) * 64

    def test_deadline_trips_at_a_checkpoint(self, config, tiny_trace):
        clock = FakeClock()
        token = CancelToken(deadline_s=5.0, check_every=64, clock=clock)
        clock.now += 6.0  # already past before the run starts measuring
        with cancel_scope(token), pytest.raises(JobCancelled) as exc_info:
            simulate_trace(tiny_trace, config, StmsPrefetcher(config))
        assert exc_info.value.reason == REASON_DEADLINE

    def test_replay_meters_and_matches_full_run(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        baseline = TraceSimulator(
            config, StmsPrefetcher(config)).run_filtered(filt)
        token = CancelToken(check_every=64)
        with cancel_scope(token):
            replayed = TraceSimulator(
                config, StmsPrefetcher(config)).run_filtered(filt)
        assert replayed.metrics == baseline.metrics
        # Replay meters the *original* access count, not just misses —
        # quota billing must not depend on which path served the run.
        assert token.progress == len(tiny_trace)

    def test_replay_cancel_stops_midway(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)

        class TripwirePrefetcher(StmsPrefetcher):
            def __init__(self, cfg, token):
                super().__init__(cfg)
                self.token = token
                self.seen = 0

            def on_miss(self, pc, block):
                self.seen += 1
                if self.seen == 5:
                    self.token.cancel("client_cancel")
                return super().on_miss(pc, block)

        token = CancelToken(check_every=64)
        with cancel_scope(token), pytest.raises(JobCancelled):
            TraceSimulator(config,
                           TripwirePrefetcher(config, token)).run_filtered(filt)
        assert 0 < token.progress < len(tiny_trace)

    def test_filter_build_checks_without_metering(self, config, tiny_trace):
        token = CancelToken(check_every=64)
        with cancel_scope(token):
            build_l1_filter(tiny_trace, config)
        # The build walks the trace but must not advance progress: the
        # replay re-meters those accesses, and double-billing a tenant
        # for one logical run would be a quota bug.
        assert token.progress == 0

    def test_filter_build_honours_cancel(self, config, tiny_trace):
        token = CancelToken(check_every=64)
        token.cancel("client_cancel")
        with cancel_scope(token), pytest.raises(JobCancelled):
            build_l1_filter(tiny_trace, config)
