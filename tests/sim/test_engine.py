"""Trace-driven engine: coverage accounting, warm-up, stream feedback."""

import pytest

from repro.errors import SimulationError
from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.stms import StmsPrefetcher
from repro.sim.engine import collect_miss_stream, simulate_trace


class ScriptedPrefetcher(Prefetcher):
    """Issues a scripted candidate list on every miss (test double)."""

    name = "scripted"

    def __init__(self, config, script):
        super().__init__(config)
        self.script = dict(script)
        self.hits_seen: list[int] = []

    def on_miss(self, pc, block):
        return [(b, 0) for b in self.script.get(block, [])]

    def on_prefetch_hit(self, pc, block, stream_id):
        self.hits_seen.append(block)
        return []


class TestBasicAccounting:
    def test_baseline_counts_misses(self, config, trace_factory):
        trace = trace_factory([1, 2, 3, 1, 2, 3])
        result = simulate_trace(trace, config, NullPrefetcher(config))
        assert result.metrics.misses == 3
        assert result.metrics.l1_hits == 3
        assert result.coverage == 0.0

    def test_correct_prefetch_becomes_coverage(self, config, trace_factory):
        # Miss on 100 prefetches 200, which is demanded next.
        trace = trace_factory([100, 200])
        pf = ScriptedPrefetcher(config, {100: [200]})
        result = simulate_trace(trace, config, pf)
        assert result.metrics.prefetch_hits == 1
        assert result.metrics.misses == 1
        assert result.coverage == 0.5
        assert pf.hits_seen == [200]

    def test_wrong_prefetch_becomes_overprediction(self, config, trace_factory):
        trace = trace_factory([100, 300])
        pf = ScriptedPrefetcher(config, {100: [200]})
        result = simulate_trace(trace, config, pf)
        assert result.metrics.overpredictions == 1
        assert result.metrics.prefetch_hits == 0
        assert result.accuracy == 0.0

    def test_candidates_already_in_l1_are_not_issued(self, config, trace_factory):
        trace = trace_factory([200, 100, 300])
        pf = ScriptedPrefetcher(config, {100: [200]})
        result = simulate_trace(trace, config, pf)
        assert result.metrics.prefetches_issued == 0

    def test_duplicate_candidates_not_reissued(self, config, trace_factory):
        trace = trace_factory([100, 101, 999])
        pf = ScriptedPrefetcher(config, {100: [555], 101: [555]})
        result = simulate_trace(trace, config, pf)
        assert result.metrics.prefetches_issued == 1

    def test_accuracy_and_ratios_consistent(self, config, tiny_trace):
        result = simulate_trace(tiny_trace, config,
                                NextLinePrefetcher(config, degree=2))
        m = result.metrics
        assert m.prefetch_hits + m.overpredictions == m.prefetches_issued
        assert 0.0 <= result.coverage <= 1.0
        assert m.accesses == len(tiny_trace)


class TestWarmup:
    def test_warmup_excluded_from_counters(self, config, tiny_trace):
        full = simulate_trace(tiny_trace, config, NullPrefetcher(config))
        warm = simulate_trace(tiny_trace, config, NullPrefetcher(config),
                              warmup=len(tiny_trace) // 2)
        assert warm.metrics.accesses == len(tiny_trace) - len(tiny_trace) // 2
        assert warm.metrics.misses < full.metrics.misses

    def test_warmup_improves_temporal_coverage(self, paper_config, tiny_trace):
        cold = simulate_trace(tiny_trace, paper_config,
                              StmsPrefetcher(paper_config))
        warm = simulate_trace(tiny_trace, paper_config,
                              StmsPrefetcher(paper_config),
                              warmup=len(tiny_trace) // 2)
        assert warm.coverage >= cold.coverage


class TestWarmupValidation:
    def test_negative_warmup_rejected(self, config, tiny_trace):
        with pytest.raises(SimulationError):
            simulate_trace(tiny_trace, config, warmup=-1)

    def test_whole_trace_warmup_rejected(self, config, tiny_trace):
        # Used to slip through silently: the reset at i == warmup never
        # fired and the "measured" counters included the training window.
        with pytest.raises(SimulationError):
            simulate_trace(tiny_trace, config, warmup=len(tiny_trace))

    def test_beyond_trace_warmup_rejected(self, config, tiny_trace):
        with pytest.raises(SimulationError):
            simulate_trace(tiny_trace, config, warmup=len(tiny_trace) + 1)

    def test_zero_warmup_on_empty_window_ok(self, config, trace_factory):
        result = simulate_trace(trace_factory([1, 2]), config, warmup=0)
        assert result.metrics.accesses == 2

    def test_max_valid_warmup_measures_one_access(self, config, tiny_trace):
        result = simulate_trace(tiny_trace, config,
                                warmup=len(tiny_trace) - 1)
        assert result.metrics.accesses == 1


class TestStreamFeedback:
    def test_killed_streams_drop_buffered_blocks(self, config, trace_factory):
        class KillingPrefetcher(ScriptedPrefetcher):
            def on_miss(self, pc, block):
                if block == 999:
                    self._kill_stream(0)
                    return []
                return super().on_miss(pc, block)

        trace = trace_factory([100, 999, 200])
        pf = KillingPrefetcher(config, {100: [200]})
        result = simulate_trace(trace, config, pf)
        # 200 was dropped by the kill, so its demand misses.
        assert result.metrics.prefetch_hits == 0
        assert result.metrics.overpredictions == 1


class TestMissStreamCollection:
    def test_collect_miss_stream_matches_baseline(self, config, trace_factory):
        trace = trace_factory([1, 2, 1, 2, 3], pcs=[9, 8, 9, 8, 7])
        stream = collect_miss_stream(trace, config)
        assert stream == [(9, 1), (8, 2), (7, 3)]

    def test_simulation_result_summary(self, config, tiny_trace):
        result = simulate_trace(tiny_trace, config, NullPrefetcher(config))
        text = result.summary()
        assert "baseline" in text and "coverage" in text
