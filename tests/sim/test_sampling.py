"""Windowed measurement and confidence intervals."""

import pytest

from repro.sim.sampling import (WindowedStat, confidence_interval,
                                windowed_measurement)


class TestConfidenceInterval:
    def test_constant_samples_zero_width(self):
        ci = confidence_interval([5.0, 5.0, 5.0, 5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert 5.0 in ci

    def test_known_small_sample(self):
        # mean 2, sample std 1, n=4 -> half width = 3.182 * 0.5
        ci = confidence_interval([1.0, 2.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.half_width == pytest.approx(3.182 * (2 / 3) ** 0.5 / 2, rel=1e-3)

    def test_interval_contains_mean(self):
        ci = confidence_interval([1.0, 4.0, 2.0, 8.0, 3.0])
        assert ci.low <= ci.mean <= ci.high

    def test_relative_error(self):
        ci = confidence_interval([10.0, 10.0, 10.0])
        assert ci.relative_error == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

    def test_large_sample_uses_normal_quantile(self):
        samples = [float(i % 3) for i in range(100)]
        ci = confidence_interval(samples)
        assert ci.n_samples == 100
        assert ci.half_width < 0.3


class TestWindowedStat:
    def test_collects_and_summarises(self):
        stat = WindowedStat("ipc")
        for v in [1.0, 2.0, 3.0]:
            stat.add(v)
        assert stat.mean == pytest.approx(2.0)
        assert stat.interval().n_samples == 3

    def test_windowed_measurement_splits_evenly(self):
        items = list(range(100))
        stat = windowed_measurement(items, 4, measure=lambda w: float(len(w)))
        assert stat.samples == [25.0, 25.0, 25.0, 25.0]

    def test_windowed_measurement_rejects_zero_windows(self):
        with pytest.raises(ValueError):
            windowed_measurement([1], 0, measure=lambda w: 0.0)
