"""L1 fastpath tests: filter construction, codec, and the
bit-identical-replay guarantee against the unfiltered engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.prefetchers.base import NullPrefetcher
from repro.prefetchers.registry import make_prefetcher, prefetcher_names
from repro.sim.engine import TraceSimulator, collect_miss_stream
from repro.sim.fastpath import (L1Filter, build_l1_filter, enabled,
                                filter_from_payload, filter_to_payload)


class TestBuild:
    def test_filter_matches_baseline_miss_stream(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        expected = collect_miss_stream(tiny_trace, config)
        assert list(zip(filt.pcs.tolist(), filt.blocks.tolist())) == expected

    def test_metadata_fields(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        assert filt.trace_name == tiny_trace.name
        assert filt.n_accesses == len(tiny_trace)
        assert 0 < filt.n_misses <= filt.n_accesses
        assert filt.miss_rate == filt.n_misses / filt.n_accesses
        assert list(filt.indices) == sorted(filt.indices)

    def test_misses_from_counts_tail(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        assert filt.misses_from(0) == filt.n_misses
        assert filt.misses_from(filt.n_accesses) == 0
        mid = len(tiny_trace) // 2
        assert filt.misses_from(mid) == int(np.sum(filt.indices >= mid))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(SimulationError):
            L1Filter(trace_name="t", n_accesses=10,
                     indices=np.zeros(2, dtype=np.int64),
                     pcs=np.zeros(3, dtype=np.int64),
                     blocks=np.zeros(2, dtype=np.int64),
                     evicted=np.zeros(2, dtype=np.int64))

    def test_more_misses_than_accesses_rejected(self):
        with pytest.raises(SimulationError):
            L1Filter(trace_name="t", n_accesses=1,
                     indices=np.zeros(2, dtype=np.int64),
                     pcs=np.zeros(2, dtype=np.int64),
                     blocks=np.zeros(2, dtype=np.int64),
                     evicted=np.zeros(2, dtype=np.int64))


class TestToggle:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("DOMINO_FASTPATH", raising=False)
        assert enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", " no "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("DOMINO_FASTPATH", value)
        assert not enabled()

    def test_other_values_keep_it_on(self, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        assert enabled()


class TestReplayEquivalence:
    """run_filtered must be bit-identical to run on the same trace."""

    @pytest.mark.parametrize("name", ["baseline", "nextline", "stms", "digram",
                                      "domino", "isb", "vldp"])
    @pytest.mark.parametrize("warmup", [0, 3000])
    def test_prefetchers_bit_identical(self, config, tiny_trace, name, warmup):
        filt = build_l1_filter(tiny_trace, config)
        plain = TraceSimulator(config, make_prefetcher(name, config, degree=4),
                               collect_misses=True).run(tiny_trace, warmup=warmup)
        replay = TraceSimulator(config, make_prefetcher(name, config, degree=4),
                                collect_misses=True).run_filtered(filt, warmup=warmup)
        assert plain == replay

    @pytest.mark.parametrize("degree", [1, 8])
    def test_degrees_bit_identical(self, config, tiny_trace, degree):
        filt = build_l1_filter(tiny_trace, config)
        plain = TraceSimulator(
            config, make_prefetcher("domino", config, degree=degree),
        ).run(tiny_trace)
        replay = TraceSimulator(
            config, make_prefetcher("domino", config, degree=degree),
        ).run_filtered(filt)
        assert plain == replay

    def test_every_registered_prefetcher(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        for name in prefetcher_names():
            plain = TraceSimulator(config, make_prefetcher(name, config)).run(
                tiny_trace, warmup=1500)
            replay = TraceSimulator(
                config, make_prefetcher(name, config)).run_filtered(
                filt, warmup=1500)
            assert plain == replay, name

    def test_roundtripped_filter_equivalent(self, config, tiny_trace):
        filt = filter_from_payload(
            filter_to_payload(build_l1_filter(tiny_trace, config)))
        plain = TraceSimulator(config, make_prefetcher("stms", config)).run(
            tiny_trace)
        replay = TraceSimulator(
            config, make_prefetcher("stms", config)).run_filtered(filt)
        assert plain == replay

    def test_warmup_past_last_miss(self, config, trace_factory):
        # One cold miss, then hits only: every recorded miss falls in
        # the warm-up window, so the replay's trailing reset must fire.
        trace = trace_factory([5] * 50)
        filt = build_l1_filter(trace, config)
        plain = TraceSimulator(config, NullPrefetcher(config)).run(
            trace, warmup=10)
        replay = TraceSimulator(config, NullPrefetcher(config)).run_filtered(
            filt, warmup=10)
        assert plain == replay
        assert replay.metrics.misses == 0
        assert replay.metrics.accesses == 40

    def test_whole_trace_warmup_rejected(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        sim = TraceSimulator(config, NullPrefetcher(config))
        with pytest.raises(SimulationError):
            sim.run_filtered(filt, warmup=len(tiny_trace))


class TestPayloadCodec:
    def test_roundtrip_exact(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        back = filter_from_payload(filter_to_payload(filt))
        assert back.trace_name == filt.trace_name
        assert back.n_accesses == filt.n_accesses
        for fname in ("indices", "pcs", "blocks", "evicted"):
            assert np.array_equal(getattr(back, fname), getattr(filt, fname))

    def test_payload_is_json_safe(self, config, tiny_trace):
        import json

        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        assert json.loads(json.dumps(payload)) == payload

    def test_wrong_version_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        payload["version"] = -1
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_corrupt_array_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        payload["blocks"] = "not base64 zlib data"
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_truncated_array_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        payload["n_misses"] = payload["n_misses"] + 1
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_missing_field_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        del payload["indices"]
        with pytest.raises(SimulationError):
            filter_from_payload(payload)
