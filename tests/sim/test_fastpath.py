"""L1 fastpath tests: filter construction, codec, and the
bit-identical-replay guarantee against the unfiltered engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.prefetchers.base import NullPrefetcher
from repro.prefetchers.registry import make_prefetcher, prefetcher_names
from repro.sim.engine import TraceSimulator, collect_miss_stream
from repro.sim.fastpath import (BINARY_CODEC, L1Filter, build_l1_filter,
                                build_l1_filter_scalar, enabled,
                                filter_from_payload, filter_to_binary,
                                filter_to_payload, jit_available, mode)


class TestBuild:
    def test_filter_matches_baseline_miss_stream(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        expected = collect_miss_stream(tiny_trace, config)
        assert list(zip(filt.pcs.tolist(), filt.blocks.tolist())) == expected

    def test_metadata_fields(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        assert filt.trace_name == tiny_trace.name
        assert filt.n_accesses == len(tiny_trace)
        assert 0 < filt.n_misses <= filt.n_accesses
        assert filt.miss_rate == filt.n_misses / filt.n_accesses
        assert list(filt.indices) == sorted(filt.indices)

    def test_misses_from_counts_tail(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        assert filt.misses_from(0) == filt.n_misses
        assert filt.misses_from(filt.n_accesses) == 0
        mid = len(tiny_trace) // 2
        assert filt.misses_from(mid) == int(np.sum(filt.indices >= mid))

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(SimulationError):
            L1Filter(trace_name="t", n_accesses=10,
                     indices=np.zeros(2, dtype=np.int64),
                     pcs=np.zeros(3, dtype=np.int64),
                     blocks=np.zeros(2, dtype=np.int64),
                     evicted=np.zeros(2, dtype=np.int64))

    def test_more_misses_than_accesses_rejected(self):
        with pytest.raises(SimulationError):
            L1Filter(trace_name="t", n_accesses=1,
                     indices=np.zeros(2, dtype=np.int64),
                     pcs=np.zeros(2, dtype=np.int64),
                     blocks=np.zeros(2, dtype=np.int64),
                     evicted=np.zeros(2, dtype=np.int64))


class TestToggle:
    def test_default_on(self, monkeypatch):
        monkeypatch.delenv("DOMINO_FASTPATH", raising=False)
        assert enabled()

    @pytest.mark.parametrize("value", ["0", "false", "OFF", " no "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv("DOMINO_FASTPATH", value)
        assert not enabled()

    def test_other_values_keep_it_on(self, monkeypatch):
        monkeypatch.setenv("DOMINO_FASTPATH", "1")
        assert enabled()


class TestReplayEquivalence:
    """run_filtered must be bit-identical to run on the same trace."""

    @pytest.mark.parametrize("name", ["baseline", "nextline", "stms", "digram",
                                      "domino", "isb", "vldp"])
    @pytest.mark.parametrize("warmup", [0, 3000])
    def test_prefetchers_bit_identical(self, config, tiny_trace, name, warmup):
        filt = build_l1_filter(tiny_trace, config)
        plain = TraceSimulator(config, make_prefetcher(name, config, degree=4),
                               collect_misses=True).run(tiny_trace, warmup=warmup)
        replay = TraceSimulator(config, make_prefetcher(name, config, degree=4),
                                collect_misses=True).run_filtered(filt, warmup=warmup)
        assert plain == replay

    @pytest.mark.parametrize("degree", [1, 8])
    def test_degrees_bit_identical(self, config, tiny_trace, degree):
        filt = build_l1_filter(tiny_trace, config)
        plain = TraceSimulator(
            config, make_prefetcher("domino", config, degree=degree),
        ).run(tiny_trace)
        replay = TraceSimulator(
            config, make_prefetcher("domino", config, degree=degree),
        ).run_filtered(filt)
        assert plain == replay

    def test_every_registered_prefetcher(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        for name in prefetcher_names():
            plain = TraceSimulator(config, make_prefetcher(name, config)).run(
                tiny_trace, warmup=1500)
            replay = TraceSimulator(
                config, make_prefetcher(name, config)).run_filtered(
                filt, warmup=1500)
            assert plain == replay, name

    def test_roundtripped_filter_equivalent(self, config, tiny_trace):
        filt = filter_from_payload(
            filter_to_payload(build_l1_filter(tiny_trace, config)))
        plain = TraceSimulator(config, make_prefetcher("stms", config)).run(
            tiny_trace)
        replay = TraceSimulator(
            config, make_prefetcher("stms", config)).run_filtered(filt)
        assert plain == replay

    def test_warmup_past_last_miss(self, config, trace_factory):
        # One cold miss, then hits only: every recorded miss falls in
        # the warm-up window, so the replay's trailing reset must fire.
        trace = trace_factory([5] * 50)
        filt = build_l1_filter(trace, config)
        plain = TraceSimulator(config, NullPrefetcher(config)).run(
            trace, warmup=10)
        replay = TraceSimulator(config, NullPrefetcher(config)).run_filtered(
            filt, warmup=10)
        assert plain == replay
        assert replay.metrics.misses == 0
        assert replay.metrics.accesses == 40

    def test_whole_trace_warmup_rejected(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        sim = TraceSimulator(config, NullPrefetcher(config))
        with pytest.raises(SimulationError):
            sim.run_filtered(filt, warmup=len(tiny_trace))


def _empty_trace(trace_factory):
    return trace_factory([])


class TestModes:
    def test_default_mode_is_vectorised(self, monkeypatch):
        monkeypatch.delenv("DOMINO_FASTPATH", raising=False)
        assert mode() == "1"

    @pytest.mark.parametrize("value,expected", [
        ("0", "0"), ("FALSE", "0"), (" off ", "0"), ("no", "0"),
        ("1", "1"), ("jit", "jit"), ("JIT", "jit"),
        ("legacy", "legacy"), ("turbo", "1"),  # unrecognised -> default
    ])
    def test_mode_parsing(self, monkeypatch, value, expected):
        monkeypatch.setenv("DOMINO_FASTPATH", value)
        assert mode() == expected

    @pytest.mark.parametrize("build_mode", ["1", "jit", "legacy"])
    def test_all_builders_match_scalar_reference(self, config, tiny_trace,
                                                 monkeypatch, build_mode):
        reference = build_l1_filter_scalar(tiny_trace, config)
        monkeypatch.setenv("DOMINO_FASTPATH", build_mode)
        built = build_l1_filter(tiny_trace, config)
        for fname in ("indices", "pcs", "blocks", "evicted"):
            assert np.array_equal(getattr(built, fname),
                                  getattr(reference, fname)), fname

    def test_windowed_slices_match_scalar(self, config, tiny_trace):
        # The opportunity analysis filters sliced traces; the
        # vectorised sweep must agree on every window too.
        for start, stop in ((0, 1000), (1500, 4000), (5990, 6000)):
            window = tiny_trace.slice(start, stop)
            fast = build_l1_filter(window, config)
            slow = build_l1_filter_scalar(window, config)
            for fname in ("indices", "pcs", "blocks", "evicted"):
                assert np.array_equal(getattr(fast, fname),
                                      getattr(slow, fname)), (start, stop)

    def test_single_set_contention_matches_scalar(self, config, trace_factory):
        # Adversarial: every access lands in set 0, six blocks over two
        # ways, so the LRU victim logic is exercised constantly.
        n_sets = config.l1d.n_sets
        rng = np.random.default_rng(11)
        trace = trace_factory(
            (rng.integers(0, 6, size=5000) * n_sets).tolist())
        fast = build_l1_filter(trace, config)
        slow = build_l1_filter_scalar(trace, config)
        for fname in ("indices", "pcs", "blocks", "evicted"):
            assert np.array_equal(getattr(fast, fname), getattr(slow, fname))

    def test_jit_soft_fallback_without_numba(self, config, tiny_trace,
                                             monkeypatch):
        # numba is absent in CI: jit mode must fall back, never fail.
        monkeypatch.setenv("DOMINO_FASTPATH", "jit")
        built = build_l1_filter(tiny_trace, config)
        reference = build_l1_filter_scalar(tiny_trace, config)
        assert np.array_equal(built.indices, reference.indices)
        assert isinstance(jit_available(), bool)


class TestWritability:
    """Filter arrays are immutable on every construction path.

    Mutating a cached filter would silently corrupt every later replay
    sharing it; built, JSON-decoded, and sidecar-mmapped filters must
    all refuse writes identically.
    """

    @staticmethod
    def _assert_frozen(filt):
        for fname in ("indices", "pcs", "blocks", "evicted"):
            arr = getattr(filt, fname)
            assert not arr.flags.writeable, fname
            with pytest.raises(ValueError):
                arr[0] = 99

    def test_built_filter_frozen(self, config, tiny_trace):
        self._assert_frozen(build_l1_filter(tiny_trace, config))

    def test_json_roundtripped_filter_frozen(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        self._assert_frozen(filter_from_payload(payload))

    def test_binary_loaded_filter_frozen(self, config, tiny_trace, tmp_path):
        payload, data = filter_to_binary(build_l1_filter(tiny_trace, config))
        sidecar = tmp_path / "filter.bin"
        sidecar.write_bytes(data)
        payload["sidecar_path"] = str(sidecar)
        self._assert_frozen(filter_from_payload(payload))


class TestDegenerate:
    """Pinned boundary cases: empty, all-hit, and all-miss traces."""

    def test_empty_trace_filter(self, config, trace_factory):
        trace = _empty_trace(trace_factory)
        filt = build_l1_filter(trace, config)
        assert filt.n_accesses == 0 and filt.n_misses == 0
        plain = TraceSimulator(config, NullPrefetcher(config)).run(trace)
        replay = TraceSimulator(config, NullPrefetcher(config)).run_filtered(
            filt)
        assert plain == replay

    def test_all_hit_trace(self, config, trace_factory):
        trace = trace_factory([5] * 50)
        filt = build_l1_filter(trace, config)
        assert filt.n_misses == 1  # the single cold miss
        plain = TraceSimulator(config, NullPrefetcher(config)).run(trace)
        replay = TraceSimulator(config, NullPrefetcher(config)).run_filtered(
            filt)
        assert plain == replay

    def test_all_miss_trace(self, config, trace_factory):
        # Distinct blocks all mapping to set 0: no reuse, every access
        # misses, and evictions start as soon as the ways fill.
        n_sets = config.l1d.n_sets
        trace = trace_factory([i * n_sets for i in range(200)])
        filt = build_l1_filter(trace, config)
        assert filt.n_misses == 200
        assert int(np.count_nonzero(filt.evicted >= 0)) == 200 - config.l1d.ways
        plain = TraceSimulator(config, make_prefetcher("stms", config)).run(
            trace)
        replay = TraceSimulator(
            config, make_prefetcher("stms", config)).run_filtered(filt)
        assert plain == replay

    def test_handcrafted_zero_miss_filter(self, config):
        empty = np.zeros(0, dtype=np.int64)
        empty.setflags(write=False)
        filt = L1Filter(trace_name="synthetic", n_accesses=50,
                        indices=empty, pcs=empty, blocks=empty,
                        evicted=empty)
        result = TraceSimulator(config, NullPrefetcher(config)).run_filtered(
            filt, warmup=10)
        assert result.metrics.accesses == 40
        assert result.metrics.misses == 0


class TestBinaryCodec:
    """The .npy sidecar codec: roundtrip, validation, and v1 compat."""

    def _roundtrip(self, filt, tmp_path):
        payload, data = filter_to_binary(filt)
        sidecar = tmp_path / "filter.bin"
        sidecar.write_bytes(data)
        payload["sidecar_path"] = str(sidecar)
        return payload, filter_from_payload(payload)

    def test_roundtrip_exact(self, config, tiny_trace, tmp_path):
        filt = build_l1_filter(tiny_trace, config)
        payload, back = self._roundtrip(filt, tmp_path)
        assert payload["codec"] == BINARY_CODEC
        assert back.trace_name == filt.trace_name
        assert back.n_accesses == filt.n_accesses
        for fname in ("indices", "pcs", "blocks", "evicted"):
            assert np.array_equal(getattr(back, fname), getattr(filt, fname))

    def test_replay_through_sidecar_bit_identical(self, config, tiny_trace,
                                                  tmp_path):
        _, back = self._roundtrip(build_l1_filter(tiny_trace, config),
                                  tmp_path)
        plain = TraceSimulator(config, make_prefetcher("domino", config)).run(
            tiny_trace, warmup=1500)
        replay = TraceSimulator(
            config, make_prefetcher("domino", config)).run_filtered(
            back, warmup=1500)
        assert plain == replay

    def test_empty_filter_roundtrip(self, config, trace_factory, tmp_path):
        filt = build_l1_filter(_empty_trace(trace_factory), config)
        _, back = self._roundtrip(filt, tmp_path)
        assert back.n_misses == 0

    def test_envelope_is_json_safe(self, config, tiny_trace):
        import json

        payload, _ = filter_to_binary(build_l1_filter(tiny_trace, config))
        assert json.loads(json.dumps(payload)) == payload

    def test_missing_sidecar_path_rejected(self, config, tiny_trace):
        payload, _ = filter_to_binary(build_l1_filter(tiny_trace, config))
        with pytest.raises(SimulationError, match="no sidecar"):
            filter_from_payload(payload)

    def test_truncated_sidecar_rejected(self, config, tiny_trace, tmp_path):
        payload, data = filter_to_binary(build_l1_filter(tiny_trace, config))
        sidecar = tmp_path / "filter.bin"
        sidecar.write_bytes(data[:-16])
        payload["sidecar_path"] = str(sidecar)
        with pytest.raises(SimulationError, match="size mismatch"):
            filter_from_payload(payload)

    def test_tampered_n_misses_rejected(self, config, tiny_trace, tmp_path):
        payload, data = filter_to_binary(build_l1_filter(tiny_trace, config))
        sidecar = tmp_path / "filter.bin"
        sidecar.write_bytes(data)
        payload["sidecar_path"] = str(sidecar)
        payload["n_misses"] = payload["n_misses"] + 1
        with pytest.raises(SimulationError, match="shape mismatch"):
            filter_from_payload(payload)

    def test_garbage_sidecar_rejected(self, config, tiny_trace, tmp_path):
        payload, data = filter_to_binary(build_l1_filter(tiny_trace, config))
        sidecar = tmp_path / "filter.bin"
        sidecar.write_bytes(b"\x00" * len(data))
        payload["sidecar_path"] = str(sidecar)
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_v1_inline_payloads_still_load(self, config, tiny_trace):
        # Artifacts written before the sidecar codec keep working.
        filt = build_l1_filter(tiny_trace, config)
        payload = filter_to_payload(filt)
        assert payload["codec"] == "zlib+b64:<i8"
        back = filter_from_payload(payload)
        assert np.array_equal(back.indices, filt.indices)


class TestPayloadCodec:
    def test_roundtrip_exact(self, config, tiny_trace):
        filt = build_l1_filter(tiny_trace, config)
        back = filter_from_payload(filter_to_payload(filt))
        assert back.trace_name == filt.trace_name
        assert back.n_accesses == filt.n_accesses
        for fname in ("indices", "pcs", "blocks", "evicted"):
            assert np.array_equal(getattr(back, fname), getattr(filt, fname))

    def test_payload_is_json_safe(self, config, tiny_trace):
        import json

        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        assert json.loads(json.dumps(payload)) == payload

    def test_wrong_version_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        payload["version"] = -1
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_corrupt_array_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        payload["blocks"] = "not base64 zlib data"
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_truncated_array_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        payload["n_misses"] = payload["n_misses"] + 1
        with pytest.raises(SimulationError):
            filter_from_payload(payload)

    def test_missing_field_rejected(self, config, tiny_trace):
        payload = filter_to_payload(build_l1_filter(tiny_trace, config))
        del payload["indices"]
        with pytest.raises(SimulationError):
            filter_from_payload(payload)
