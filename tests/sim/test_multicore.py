"""Quad-core timing simulation tests."""

import pytest

from repro.sim.multicore import (MulticoreResult, simulate_multicore,
                                 speedup_over_baseline)
from repro.workloads.synthetic import SyntheticWorkload


class TestSimulateMulticore:
    def test_split_single_trace(self, config, tiny_trace):
        result = simulate_multicore(tiny_trace, config, "baseline",
                                    warmup_frac=0.0)
        assert len(result.per_core) == config.n_cores
        assert result.instructions == sum(r.instructions for r in result.per_core)
        assert result.ipc > 0

    def test_per_core_trace_list(self, config, tiny_workload):
        workload = SyntheticWorkload(tiny_workload, seed=3)
        traces = [workload.generate(1500, seed=10 + i) for i in range(config.n_cores)]
        result = simulate_multicore(traces, config, "baseline", warmup_frac=0.0)
        assert len(result.per_core) == config.n_cores

    def test_wrong_trace_count_rejected(self, config, tiny_trace):
        with pytest.raises(ValueError):
            simulate_multicore([tiny_trace], config, "baseline")

    def test_factory_overrides_name(self, config, tiny_trace):
        from repro.prefetchers.nextline import NextLinePrefetcher

        result = simulate_multicore(
            tiny_trace, config,
            prefetcher_factory=lambda cfg: NextLinePrefetcher(cfg, degree=1),
            warmup_frac=0.0)
        assert result.prefetcher == "nextline"

    def test_bandwidth_utilization_bounded(self, config, tiny_trace):
        result = simulate_multicore(tiny_trace, config, "baseline",
                                    warmup_frac=0.0)
        assert 0.0 <= result.bandwidth_utilization <= 1.0

    def test_warmup_reduces_measured_instructions(self, config, tiny_trace):
        full = simulate_multicore(tiny_trace, config, "baseline",
                                  warmup_frac=0.0)
        warmed = simulate_multicore(tiny_trace, config, "baseline",
                                    warmup_frac=0.5)
        assert warmed.instructions < full.instructions

    def test_coverage_property(self, config, tiny_trace):
        result = simulate_multicore(tiny_trace, config, "domino",
                                    warmup_frac=0.0)
        assert 0.0 <= result.coverage <= 1.0


class TestPerCoreAccounting:
    def test_per_core_ipc_consistent_with_counters(self, config, tiny_trace):
        result = simulate_multicore(tiny_trace, config, "baseline",
                                    warmup_frac=0.0)
        for core in result.per_core:
            assert core.cycles > 0
            assert core.ipc == pytest.approx(core.instructions / core.cycles)

    def test_per_core_cycles_include_trailing_misses(self, config, tiny_trace):
        # Every core's sub-trace ends with misses still in flight; the
        # finalise() drain means each core is charged at least one full
        # memory round trip (tiny_trace misses on every core).
        result = simulate_multicore(tiny_trace, config, "baseline",
                                    warmup_frac=0.0)
        for core in result.per_core:
            assert core.misses > 0
            assert core.cycles >= config.memory_latency_cycles

    def test_system_ipc_uses_slowest_core(self, config, tiny_trace):
        result = simulate_multicore(tiny_trace, config, "baseline",
                                    warmup_frac=0.0)
        assert result.cycles == pytest.approx(
            max(core.cycles for core in result.per_core))


class TestSpeedup:
    def test_speedup_returns_triple(self, config, tiny_trace):
        speedup, run, baseline = speedup_over_baseline(tiny_trace, config,
                                                       "domino")
        assert speedup == pytest.approx(run.ipc / baseline.ipc)
        assert isinstance(run, MulticoreResult)

    def test_prefetcher_helps_repetitive_workload(self, paper_config,
                                                  tiny_workload):
        workload = SyntheticWorkload(tiny_workload.scaled(work_mean=30.0),
                                     seed=3)
        traces = [workload.generate(4000, seed=50 + i) for i in range(4)]
        speedup, _, _ = speedup_over_baseline(traces, paper_config, "domino")
        assert speedup > 0.95  # never a serious slowdown
