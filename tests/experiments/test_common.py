"""Experiment plumbing: context caching and helpers."""

import pytest

from repro.experiments.common import (ExperimentContext, ExperimentOptions,
                                      gmean_speedup, mean)


@pytest.fixture
def options():
    return ExperimentOptions(n_accesses=6000, workloads=("oltp",), seed=3)


def test_trace_cached_across_calls(options):
    ctx = ExperimentContext(options)
    assert ctx.trace("oltp") is ctx.trace("oltp")


def test_miss_stream_covers_measured_window_only(options):
    ctx = ExperimentContext(options)
    misses = ctx.miss_stream("oltp")
    assert 0 < len(misses) < options.n_accesses - options.warmup
    assert ctx.miss_stream("oltp") is misses  # cached


def test_run_prefetcher_uses_warmup(options):
    ctx = ExperimentContext(options)
    result = ctx.run_prefetcher("oltp", "stms")
    assert result.metrics.accesses == options.n_accesses - options.warmup


def test_run_prefetcher_accepts_config_override(options):
    ctx = ExperimentContext(options)
    config = ctx.config.scaled(eit_rows=64)
    result = ctx.run_prefetcher("oltp", "domino", config=config)
    assert result.prefetcher == "domino"


def test_core_traces_shape(options):
    ctx = ExperimentContext(options)
    traces = ctx.core_traces("oltp")
    assert len(traces) == ctx.timing.n_cores


def test_mean_and_gmean():
    assert mean([1.0, 3.0]) == 2.0
    assert mean([]) == 0.0
    assert gmean_speedup([2.0, 0.5]) == pytest.approx(1.0)
    assert gmean_speedup([]) == 1.0
