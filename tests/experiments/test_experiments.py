"""Experiment drivers: every registered experiment runs and produces a
well-formed table at tiny sizes; a few shape assertions on the cheap ones."""

import pytest

from repro.errors import UnknownExperimentError
from repro.experiments import (ExperimentOptions, ExperimentResult,
                               experiment_ids, run_experiment)

TINY = ExperimentOptions(n_accesses=12_000, workloads=("oltp",), seed=7)

#: Experiments cheap enough to run on every test invocation.
CHEAP = ["table1", "table2", "fig01", "fig02", "fig03", "fig04", "fig06",
         "fig12", "fig15", "fig16"]
#: Heavier sweeps, still run but on a single tiny workload.
HEAVY = ["fig05", "fig09", "fig10", "fig11", "fig13", "fig14",
         "ext01", "ext02"]


@pytest.mark.parametrize("experiment_id", CHEAP + HEAVY)
def test_experiment_runs_and_renders(experiment_id):
    result = run_experiment(experiment_id, TINY)
    assert isinstance(result, ExperimentResult)
    assert result.rows, f"{experiment_id} produced no rows"
    text = result.render()
    assert result.title in text
    for header in result.headers:
        assert header in text
    widths = {len(row) for row in result.rows}
    assert widths == {len(result.headers)}


def test_registry_complete():
    ids = experiment_ids()
    assert "fig11" in ids and "table1" in ids
    assert len(ids) == 18
    assert "ext01" in ids and "ext02" in ids


def test_unknown_experiment():
    with pytest.raises(UnknownExperimentError):
        run_experiment("fig99")


def test_fig03_accuracy_improves_with_depth():
    result = run_experiment("fig03", TINY)
    row = result.rows[0]
    assert row[2] >= row[1]  # depth2 >= depth1 accuracy


def test_fig04_match_rate_decreases_with_depth():
    result = run_experiment("fig04", TINY)
    row = result.rows[0]
    assert row[1] >= row[-1]


def test_fig09_monotone_coverage_with_ht_size():
    result = run_experiment("fig09", TINY)
    row = result.rows[0][1:]
    assert row[-1] >= row[0] - 0.02


def test_table1_reflects_paper_parameters():
    result = run_experiment("table1", None)
    text = result.render()
    assert "4 cores" in text
    assert "45 ns" in text
    assert "37.5 GB/s" in text


def test_column_extraction():
    result = run_experiment("fig01", TINY)
    coverages = result.column("stms_coverage")
    assert len(coverages) == len(result.rows)


def test_options_quick_profile():
    quick = ExperimentOptions.quick()
    assert quick.n_accesses < ExperimentOptions().n_accesses
    assert len(quick.workloads) == 3


def test_options_scaled():
    options = ExperimentOptions().scaled(degree=2)
    assert options.degree == 2
    assert options.warmup == options.n_accesses // 2
