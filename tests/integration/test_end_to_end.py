"""End-to-end shape assertions: the paper's qualitative results must
hold on reduced-size runs of the real workload suite.

These are the repository's acceptance tests — if one fails after a
change, the reproduction no longer tells the paper's story.
"""

import pytest

from repro import SystemConfig, make_prefetcher, simulate_trace
from repro.sequitur.analysis import analyze_sequence
from repro.sim.engine import collect_miss_stream
from repro.workloads import default_suite

N = 120_000
WARMUP = N // 2


@pytest.fixture(scope="module")
def suite():
    return default_suite()


@pytest.fixture(scope="module")
def config():
    return SystemConfig()


@pytest.fixture(scope="module")
def oltp_results(suite, config):
    trace = suite.trace("oltp", N)
    out = {}
    for name in ("vldp", "isb", "stms", "digram", "domino"):
        prefetcher = make_prefetcher(name, config, degree=1)
        out[name] = simulate_trace(trace, config, prefetcher, warmup=WARMUP)
    return out


class TestPaperShapeOltp:
    """OLTP is the paper's showcase workload (pointer chasing, shared
    stream heads): every headline relation must hold there."""

    def test_domino_beats_stms_coverage(self, oltp_results):
        assert oltp_results["domino"].coverage > oltp_results["stms"].coverage

    def test_stms_beats_digram_coverage(self, oltp_results):
        assert oltp_results["stms"].coverage > oltp_results["digram"].coverage * 0.9

    def test_temporal_beats_spatial(self, oltp_results):
        assert oltp_results["domino"].coverage > oltp_results["vldp"].coverage

    def test_digram_has_lowest_overpredictions(self, oltp_results):
        temporal = ("stms", "digram", "domino")
        assert min(temporal, key=lambda p: oltp_results[p].overprediction_ratio) \
            == "digram"

    def test_domino_overpredicts_less_than_stms(self, oltp_results):
        assert (oltp_results["domino"].overprediction_ratio
                < oltp_results["stms"].overprediction_ratio)


class TestPaperShapeDegree4:
    def test_stms_overpredictions_blow_up_at_degree4(self, suite, config):
        trace = suite.trace("oltp", N)
        deg1 = simulate_trace(trace, config, make_prefetcher("stms", config, degree=1),
                              warmup=WARMUP)
        deg4 = simulate_trace(trace, config, make_prefetcher("stms", config, degree=4),
                              warmup=WARMUP)
        assert deg4.overprediction_ratio > 1.5 * deg1.overprediction_ratio

    def test_domino_matches_or_beats_stms_at_degree4(self, suite, config):
        trace = suite.trace("oltp", N)
        stms = simulate_trace(trace, config, make_prefetcher("stms", config, degree=4),
                              warmup=WARMUP)
        domino = simulate_trace(trace, config,
                                make_prefetcher("domino", config, degree=4),
                                warmup=WARMUP)
        assert domino.coverage > stms.coverage - 0.01
        assert domino.overprediction_ratio < stms.overprediction_ratio


class TestOpportunity:
    def test_domino_captures_most_of_the_opportunity(self, suite, config):
        trace = suite.trace("oltp", N)
        misses = [b for _, b in collect_miss_stream(
            trace.slice(WARMUP, N), config)]
        opportunity = analyze_sequence(misses).opportunity
        domino = simulate_trace(trace, config,
                                make_prefetcher("domino", config, degree=4),
                                warmup=WARMUP)
        assert domino.coverage > 0.5 * opportunity
        assert domino.coverage < opportunity + 0.1

    def test_sat_solver_is_hard_for_everyone(self, suite, config):
        trace = suite.trace("sat_solver", N)
        for name in ("stms", "domino"):
            result = simulate_trace(trace, config,
                                    make_prefetcher(name, config, degree=4),
                                    warmup=WARMUP)
            assert result.coverage < 0.25


class TestSpatioTemporalShape:
    def test_stack_covers_more_than_components(self, suite, config):
        trace = suite.trace("data_serving", N)
        vldp = simulate_trace(trace, config, make_prefetcher("vldp", config),
                              warmup=WARMUP)
        domino = simulate_trace(trace, config, make_prefetcher("domino", config),
                                warmup=WARMUP)
        combo = simulate_trace(trace, config,
                               make_prefetcher("vldp+domino", config),
                               warmup=WARMUP)
        assert combo.coverage > vldp.coverage
        assert combo.coverage > domino.coverage - 0.02
