"""Prefetch buffer: FIFO replacement, consumption, stream invalidation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.prefetch_buffer import PrefetchBuffer


class TestResetStats:
    def test_counters_zeroed_entries_kept(self):
        buf = PrefetchBuffer(2)
        buf.insert(1)
        buf.insert(2)
        buf.insert(3)          # evicts 1 (unused)
        buf.lookup(2)          # consumes 2
        buf.reset_stats()
        assert buf.stats.inserted == 0
        assert buf.stats.hits == 0
        assert buf.stats.evicted_unused == 0
        assert len(buf) == 1 and buf.probe(3)

    def test_fresh_stats_object(self):
        # The warm-up reset must not mutate a stats object someone else
        # holds a reference to (the old __init__-in-place hazard).
        buf = PrefetchBuffer(2)
        buf.insert(1)
        old = buf.stats
        buf.reset_stats()
        assert buf.stats is not old
        assert old.inserted == 1


class TestInsertLookup:
    def test_lookup_consumes_entry(self):
        buf = PrefetchBuffer(4)
        buf.insert(10, stream_id=1)
        entry = buf.lookup(10)
        assert entry is not None and entry.stream_id == 1
        assert buf.lookup(10) is None  # consumed

    def test_probe_does_not_consume(self):
        buf = PrefetchBuffer(4)
        buf.insert(10)
        assert buf.probe(10) is True
        assert buf.lookup(10) is not None

    def test_duplicate_insert_dropped(self):
        buf = PrefetchBuffer(4)
        buf.insert(10)
        buf.insert(10)
        assert buf.stats.duplicates_dropped == 1
        assert len(buf) == 1

    def test_fifo_eviction_order(self):
        buf = PrefetchBuffer(2)
        buf.insert(1)
        buf.insert(2)
        victim = buf.insert(3)
        assert victim is not None and victim.block == 1

    def test_unused_eviction_counts_overprediction(self):
        buf = PrefetchBuffer(1)
        buf.insert(1)
        buf.insert(2)
        assert buf.stats.evicted_unused == 1
        assert buf.stats.evicted_used == 0

    def test_hit_then_reinsert_then_evict_counts_used(self):
        buf = PrefetchBuffer(1)
        buf.insert(1)
        assert buf.lookup(1).used is True
        assert buf.stats.hits == 1

    def test_ready_time_recorded(self):
        buf = PrefetchBuffer(2)
        buf.insert(5, stream_id=0, ready_time=123.0)
        assert buf.lookup(5).ready_time == 123.0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(0)


class TestStreamInvalidation:
    def test_invalidate_stream_drops_only_that_stream(self):
        buf = PrefetchBuffer(8)
        buf.insert(1, stream_id=1)
        buf.insert(2, stream_id=2)
        buf.insert(3, stream_id=1)
        dropped = buf.invalidate_stream(1)
        assert dropped == 2
        assert buf.probe(2) is True
        assert buf.probe(1) is False

    def test_invalidated_unused_counts_overprediction(self):
        buf = PrefetchBuffer(8)
        buf.insert(1, stream_id=1)
        buf.invalidate_stream(1)
        assert buf.stats.evicted_unused == 1


class TestDrain:
    def test_drain_counts_leftovers(self):
        buf = PrefetchBuffer(8)
        buf.insert(1)
        buf.insert(2)
        buf.lookup(1)
        leftovers = buf.drain()
        assert [e.block for e in leftovers] == [2]
        assert buf.stats.evicted_unused == 1
        assert len(buf) == 0


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["insert", "lookup"]),
                              st.integers(0, 15)), max_size=200))
def test_accounting_balances(ops):
    """inserted == hits + evicted(unused+used) + resident, always."""
    buf = PrefetchBuffer(4)
    for op, block in ops:
        if op == "insert":
            buf.insert(block, stream_id=block % 3)
        else:
            buf.lookup(block)
        stats = buf.stats
        accounted = (stats.hits + stats.evicted_unused + stats.evicted_used
                     + len(buf))
        assert stats.inserted == accounted
    buf.drain()
    stats = buf.stats
    assert stats.inserted == stats.hits + stats.evicted_unused + stats.evicted_used
