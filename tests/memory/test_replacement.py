"""Replacement policies: unit behaviour plus a model-based property test."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.replacement import (FifoPolicy, LruPolicy, RandomPolicy,
                                      make_policy)


class TestLruPolicy:
    def test_insert_until_full_evicts_nothing(self):
        lru = LruPolicy(3)
        assert lru.insert("a") is None
        assert lru.insert("b") is None
        assert lru.insert("c") is None
        assert len(lru) == 3

    def test_eviction_order_is_least_recently_used(self):
        lru = LruPolicy(2)
        lru.insert("a")
        lru.insert("b")
        assert lru.insert("c") == "a"

    def test_touch_protects_a_key(self):
        lru = LruPolicy(2)
        lru.insert("a")
        lru.insert("b")
        lru.touch("a")
        assert lru.insert("c") == "b"

    def test_reinsert_promotes_instead_of_evicting(self):
        lru = LruPolicy(2)
        lru.insert("a")
        lru.insert("b")
        assert lru.insert("a") is None
        assert lru.insert("c") == "b"

    def test_remove_frees_capacity(self):
        lru = LruPolicy(2)
        lru.insert("a")
        lru.insert("b")
        lru.remove("a")
        assert lru.insert("c") is None
        assert "a" not in lru

    def test_victim_preview_matches_eviction(self):
        lru = LruPolicy(2)
        lru.insert("a")
        assert lru.victim() is None  # not full yet
        lru.insert("b")
        assert lru.victim() == "a"
        assert lru.insert("c") == "a"

    def test_iteration_order_lru_first(self):
        lru = LruPolicy(3)
        for key in "abc":
            lru.insert(key)
        lru.touch("a")
        assert list(lru) == ["b", "c", "a"]


class TestFifoPolicy:
    def test_touch_does_not_protect(self):
        fifo = FifoPolicy(2)
        fifo.insert("a")
        fifo.insert("b")
        fifo.touch("a")
        assert fifo.insert("c") == "a"

    def test_duplicate_insert_is_noop(self):
        fifo = FifoPolicy(2)
        fifo.insert("a")
        fifo.insert("b")
        assert fifo.insert("a") is None
        assert fifo.insert("c") == "a"


class TestRandomPolicy:
    def test_deterministic_with_seed(self):
        a = RandomPolicy(4, seed=7)
        b = RandomPolicy(4, seed=7)
        victims_a = [a.insert(i) for i in range(20)]
        victims_b = [b.insert(i) for i in range(20)]
        assert victims_a == victims_b

    def test_capacity_respected(self):
        rand = RandomPolicy(4, seed=1)
        for i in range(50):
            rand.insert(i)
        assert len(rand) == 4

    def test_remove_keeps_membership_consistent(self):
        rand = RandomPolicy(4, seed=1)
        for i in range(4):
            rand.insert(i)
        rand.remove(2)
        assert 2 not in rand
        assert len(rand) == 3
        remaining = set(rand)
        assert remaining == {0, 1, 3}


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [("lru", LruPolicy),
                                          ("fifo", FifoPolicy),
                                          ("random", RandomPolicy)])
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name, 4), cls)

    def test_case_insensitive(self):
        assert isinstance(make_policy("LRU", 2), LruPolicy)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            make_policy("plru", 4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruPolicy(0)


@settings(max_examples=60, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["insert", "touch", "remove"]),
                              st.integers(0, 9)), max_size=120))
def test_lru_matches_reference_model(ops):
    """LruPolicy behaves exactly like a list-based reference LRU."""
    lru = LruPolicy(4)
    model: list[int] = []  # LRU order: front = next victim
    for op, key in ops:
        if op == "insert":
            victim = lru.insert(key)
            if key in model:
                model.remove(key)
                model.append(key)
                assert victim is None
            else:
                expected = model.pop(0) if len(model) >= 4 else None
                model.append(key)
                assert victim == expected
        elif op == "touch":
            lru.touch(key)
            if key in model:
                model.remove(key)
                model.append(key)
        else:
            lru.remove(key)
            if key in model:
                model.remove(key)
        assert list(lru) == model
