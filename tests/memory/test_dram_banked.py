"""Banked DRAM model: mapping, row-buffer states, contention."""

import pytest

from repro.config import SystemConfig
from repro.memory.dram_banked import BankedDram, DramTimings


@pytest.fixture
def dram():
    return BankedDram(n_channels=2, n_banks=4, row_size_blocks=8,
                      timings=DramTimings(cas=10, rcd=10, precharge=10,
                                          bus_cycles=4.0, controller=0))


class TestAddressMapping:
    def test_adjacent_blocks_alternate_channels(self, dram):
        assert dram.map_address(0)[0] == 0
        assert dram.map_address(1)[0] == 1
        assert dram.map_address(2)[0] == 0

    def test_row_stripes(self, dram):
        # Blocks 0 and 2 are in the same channel-0 row stripe.
        c0, b0, r0 = dram.map_address(0)
        c1, b1, r1 = dram.map_address(2)
        assert (c0, b0, r0) == (c1, b1, r1)

    def test_next_stripe_changes_bank(self, dram):
        _, bank_a, _ = dram.map_address(0)
        _, bank_b, _ = dram.map_address(2 * 8)  # next row stripe, channel 0
        assert bank_a != bank_b

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            BankedDram(n_channels=0)


class TestRowBuffer:
    def test_first_access_is_row_miss(self, dram):
        done = dram.access(0.0, 0)
        assert done == pytest.approx(10 + 10 + 4)  # rcd + cas + bus
        assert dram.stats.row_misses == 1

    def test_same_row_hit_is_faster(self, dram):
        dram.access(0.0, 0)
        t0 = dram.access(100.0, 2)  # same row stripe
        assert t0 - 100.0 == pytest.approx(10 + 4)  # cas + bus only
        assert dram.stats.row_hits == 1

    def test_row_conflict_pays_precharge(self, dram):
        dram.access(0.0, 0)
        # Same channel and bank, different row: blocks 0 and 64
        conflict_block = 2 * 8 * 4  # stripe 32 -> bank 0, row 1, channel 0
        t0 = dram.access(100.0, conflict_block)
        assert t0 - 100.0 == pytest.approx(10 + 10 + 10 + 4)
        assert dram.stats.row_conflicts == 1

    def test_row_hit_rate(self, dram):
        dram.access(0.0, 0)
        dram.access(50.0, 2)
        dram.access(100.0, 4)
        assert dram.stats.row_hit_rate == pytest.approx(2 / 3)


class TestContention:
    def test_same_bank_requests_serialise(self, dram):
        first = dram.access(0.0, 0)
        second = dram.access(0.0, 2)  # same bank, same row
        assert second > first

    def test_different_channels_proceed_in_parallel(self, dram):
        a = dram.access(0.0, 0)  # channel 0
        b = dram.access(0.0, 1)  # channel 1
        assert a == b  # no shared resource between them

    def test_bus_serialises_bursts_within_channel(self, dram):
        # Two row hits on different banks of one channel share the bus.
        dram.access(0.0, 0)           # opens bank0 row
        dram.access(0.0, 2 * 8 * 1)   # bank 1, channel 0
        a = dram.access(1000.0, 2)          # bank0 hit
        b = dram.access(1000.0, 2 * 8 + 2)  # bank1 hit
        assert abs(b - a) >= 4.0  # one bus burst apart


class TestFactory:
    def test_for_config_matches_bandwidth(self):
        config = SystemConfig()
        dram = BankedDram.for_config(config)
        assert dram.n_channels == 2
        assert dram.timings.bus_cycles == pytest.approx(
            config.cycles_per_block_transfer * 2)
        assert dram.idle_latency() > 100  # in the vicinity of 45 ns
