"""Set-associative cache model tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig
from repro.errors import ConfigError
from repro.memory.cache import Cache


def small_cache(sets=4, ways=2) -> Cache:
    return Cache(CacheConfig(size_bytes=sets * ways * 64, ways=ways))


class TestGeometry:
    def test_sets_and_blocks(self):
        cache = small_cache(sets=8, ways=2)
        assert cache.n_sets == 8
        assert cache.config.n_blocks == 16

    def test_indivisible_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, ways=3)

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, ways=1)


class TestAccess:
    def test_first_access_misses_then_hits(self):
        cache = small_cache()
        assert cache.access(5) is False
        assert cache.access(5) is True

    def test_conflict_eviction_within_set(self):
        cache = small_cache(sets=4, ways=2)
        # Blocks 0, 4, 8 all map to set 0 in a 4-set cache.
        cache.access(0)
        cache.access(4)
        cache.access(8)  # evicts 0 (LRU)
        assert cache.probe(0) is False
        assert cache.probe(4) is True
        assert cache.probe(8) is True

    def test_lru_promotion_on_hit(self):
        cache = small_cache(sets=4, ways=2)
        cache.access(0)
        cache.access(4)
        cache.access(0)  # promote 0
        cache.access(8)  # should evict 4
        assert cache.probe(0) is True
        assert cache.probe(4) is False

    def test_different_sets_do_not_conflict(self):
        cache = small_cache(sets=4, ways=1)
        for block in range(4):
            cache.access(block)
        assert all(cache.probe(b) for b in range(4))

    def test_stats_counting(self):
        cache = small_cache()
        cache.access(1)
        cache.access(1)
        cache.access(2)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.hit_rate == pytest.approx(1 / 3)


class TestFillProbeInvalidate:
    def test_probe_has_no_side_effects(self):
        cache = small_cache(sets=4, ways=2)
        cache.access(0)
        cache.access(4)
        cache.probe(0)  # must NOT promote 0
        cache.access(8)
        assert cache.probe(0) is False  # 0 was still LRU

    def test_fill_inserts_without_access_stats(self):
        cache = small_cache()
        cache.fill(3)
        assert cache.probe(3) is True
        assert cache.stats.accesses == 0

    def test_fill_returns_victim(self):
        cache = small_cache(sets=4, ways=1)
        cache.fill(0)
        assert cache.fill(4) == 0

    def test_invalidate(self):
        cache = small_cache()
        cache.access(9)
        assert cache.invalidate(9) is True
        assert cache.probe(9) is False
        assert cache.invalidate(9) is False

    def test_flush_empties_but_keeps_stats(self):
        cache = small_cache()
        cache.access(1)
        cache.flush()
        assert len(cache) == 0
        assert cache.stats.accesses == 1

    def test_contains_and_len(self):
        cache = small_cache()
        cache.access(7)
        assert 7 in cache
        assert len(cache) == 1


class TestNonPowerOfTwoSets:
    def test_modulo_indexing(self):
        cache = Cache(CacheConfig(size_bytes=3 * 2 * 64, ways=2))
        assert cache.n_sets == 3
        cache.access(0)
        cache.access(3)
        cache.access(6)  # all set 0; evicts block 0
        assert cache.probe(0) is False
        assert cache.probe(3) and cache.probe(6)


@settings(max_examples=40, deadline=None)
@given(blocks=st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_capacity_invariant_and_recent_block_resident(blocks):
    """The cache never exceeds capacity, and the last accessed block is
    always resident immediately afterwards."""
    cache = small_cache(sets=4, ways=2)
    for block in blocks:
        cache.access(block)
        assert cache.probe(block)
        assert len(cache) <= cache.config.n_blocks
    assert cache.stats.accesses == len(blocks)
    assert cache.stats.hits + cache.stats.misses == len(blocks)
