"""Address arithmetic helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.config import BLOCKS_PER_PAGE
from repro.memory.block import (block_in_page, block_of, byte_of, page_of,
                                page_offset_of)


def test_block_of_byte_address():
    assert block_of(0) == 0
    assert block_of(63) == 0
    assert block_of(64) == 1


def test_byte_of_is_inverse_on_block_starts():
    assert byte_of(block_of(128)) == 128


def test_page_of_and_offset():
    assert page_of(0) == 0
    assert page_of(BLOCKS_PER_PAGE) == 1
    assert page_offset_of(BLOCKS_PER_PAGE + 3) == 3


def test_block_in_page_roundtrip():
    block = block_in_page(5, 17)
    assert page_of(block) == 5
    assert page_offset_of(block) == 17


@given(st.integers(0, 2**40))
def test_page_decomposition_is_total(block):
    assert block_in_page(page_of(block), page_offset_of(block)) == block


@given(st.integers(0, 2**40))
def test_offset_in_range(block):
    assert 0 <= page_offset_of(block) < BLOCKS_PER_PAGE
