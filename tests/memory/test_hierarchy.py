"""Two-level hierarchy classification tests."""

from repro.memory.cache import Cache
from repro.memory.hierarchy import AccessOutcome, MemoryHierarchy


class TestClassification:
    def test_cold_access_goes_to_memory(self, config):
        hier = MemoryHierarchy(config)
        assert hier.access(123) is AccessOutcome.MEMORY

    def test_l1_hit_after_fill(self, config):
        hier = MemoryHierarchy(config)
        hier.access(123)
        assert hier.access(123) is AccessOutcome.L1_HIT

    def test_llc_hit_after_l1_eviction(self, config):
        hier = MemoryHierarchy(config)
        hier.access(0)
        # Evict block 0 from the tiny L1 by filling its set.
        n_sets = config.l1d.n_sets
        for i in range(1, config.l1d.ways + 1):
            hier.access(i * n_sets)
        assert hier.access(0) is AccessOutcome.LLC_HIT

    def test_stats_counted(self, config):
        hier = MemoryHierarchy(config)
        hier.access(1)
        hier.access(1)
        assert hier.stats.memory_accesses == 1
        assert hier.stats.l1_hits == 1
        assert hier.stats.accesses == 2

    def test_latency_of_each_outcome(self, config):
        hier = MemoryHierarchy(config)
        assert hier.latency_of(AccessOutcome.L1_HIT) == config.l1d.hit_latency
        assert hier.latency_of(AccessOutcome.LLC_HIT) == config.llc_latency_cycles
        assert hier.latency_of(AccessOutcome.MEMORY) == config.memory_latency_cycles


class TestSharedLlc:
    def test_two_cores_share_llc_contents(self, config):
        shared = Cache(config.llc)
        core0 = MemoryHierarchy(config, shared_llc=shared)
        core1 = MemoryHierarchy(config, shared_llc=shared)
        core0.access(42)
        # Core 1 misses its private L1 but hits the shared LLC.
        assert core1.access(42) is AccessOutcome.LLC_HIT


class TestPrefetchProbe:
    def test_prefetch_does_not_install_in_llc(self, config):
        hier = MemoryHierarchy(config)
        assert hier.probe_prefetch_target(7) is AccessOutcome.MEMORY
        # The probe must not have installed the block.
        assert hier.probe_prefetch_target(7) is AccessOutcome.MEMORY

    def test_prefetch_classified_llc_hit_when_resident(self, config):
        hier = MemoryHierarchy(config)
        hier.access(7)  # installs in both levels
        assert hier.probe_prefetch_target(7) is AccessOutcome.LLC_HIT

    def test_fill_l1_promotes_buffer_hit(self, config):
        hier = MemoryHierarchy(config)
        hier.fill_l1(99)
        assert hier.access(99) is AccessOutcome.L1_HIT
