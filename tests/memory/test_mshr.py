"""MSHR file tests: allocation, merging, retirement."""

import pytest

from repro.errors import SimulationError
from repro.memory.mshr import MshrFile


class TestAllocation:
    def test_allocate_and_contains(self):
        mshrs = MshrFile(4)
        assert mshrs.allocate(10, ready_time=100.0) is True
        assert 10 in mshrs
        assert len(mshrs) == 1

    def test_merge_same_block(self):
        mshrs = MshrFile(4)
        mshrs.allocate(10, ready_time=100.0)
        assert mshrs.allocate(10, ready_time=200.0) is False
        assert mshrs.stats.merges == 1
        # Merge keeps the earlier completion.
        assert mshrs.outstanding(10) == 100.0

    def test_merge_never_delays(self):
        mshrs = MshrFile(4)
        mshrs.allocate(10, ready_time=200.0)
        mshrs.allocate(10, ready_time=100.0)
        assert mshrs.outstanding(10) == 100.0

    def test_full_file_raises(self):
        mshrs = MshrFile(1)
        mshrs.allocate(1, 10.0)
        assert mshrs.can_allocate() is False
        with pytest.raises(SimulationError):
            mshrs.allocate(2, 20.0)
        assert mshrs.stats.stalls == 1

    def test_capacity_positive(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestRetirement:
    def test_retire_until_frees_completed(self):
        mshrs = MshrFile(4)
        mshrs.allocate(1, 10.0)
        mshrs.allocate(2, 20.0)
        mshrs.allocate(3, 30.0)
        done = mshrs.retire_until(20.0)
        assert sorted(done) == [1, 2]
        assert len(mshrs) == 1

    def test_earliest_completion(self):
        mshrs = MshrFile(4)
        assert mshrs.earliest_completion() is None
        mshrs.allocate(1, 30.0)
        mshrs.allocate(2, 10.0)
        assert mshrs.earliest_completion() == 10.0
