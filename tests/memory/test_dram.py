"""DRAM latency, bandwidth ledger, and traffic accounting."""

import pytest

from repro.config import SystemConfig
from repro.memory.dram import BandwidthLedger, DramModel, TrafficCounters


class TestBandwidthLedger:
    def test_idle_channel_no_delay(self):
        ledger = BandwidthLedger(cycles_per_block=10.0)
        assert ledger.request(100.0) == 0.0

    def test_back_to_back_requests_queue(self):
        ledger = BandwidthLedger(10.0)
        ledger.request(0.0)
        assert ledger.request(0.0) == pytest.approx(10.0)
        assert ledger.request(0.0) == pytest.approx(20.0)

    def test_gap_drains_queue(self):
        ledger = BandwidthLedger(10.0)
        ledger.request(0.0)
        assert ledger.request(50.0) == 0.0

    def test_demand_priority_ignores_prefetch_backlog(self):
        ledger = BandwidthLedger(10.0)
        for _ in range(5):
            ledger.request(0.0, demand=False)
        # Prefetch-class backlog is 50 cycles, but demand sees none.
        assert ledger.request(0.0, demand=True) == 0.0

    def test_prefetch_queues_behind_demand(self):
        ledger = BandwidthLedger(10.0)
        ledger.request(0.0, demand=True)
        assert ledger.request(0.0, demand=False) == pytest.approx(10.0)

    def test_backlog_reports_prefetch_class_queue(self):
        ledger = BandwidthLedger(10.0)
        assert ledger.backlog(0.0) == 0.0
        ledger.request(0.0, demand=False)
        ledger.request(0.0, demand=False)
        assert ledger.backlog(0.0) == pytest.approx(20.0)
        assert ledger.backlog(100.0) == 0.0

    def test_utilization(self):
        ledger = BandwidthLedger(10.0)
        ledger.request(0.0)
        ledger.request(0.0)
        assert ledger.utilization(100.0) == pytest.approx(0.2)
        assert ledger.utilization(0.0) == 0.0

    def test_invalid_service_time(self):
        with pytest.raises(ValueError):
            BandwidthLedger(0.0)


class TestDramModel:
    def test_latency_applied(self):
        config = SystemConfig()
        dram = DramModel(config)
        completion = dram.access(0.0, "demand")
        assert completion == pytest.approx(config.memory_latency_cycles)

    def test_traffic_categories_counted(self):
        dram = DramModel(SystemConfig())
        dram.access(0.0, "demand")
        dram.access(0.0, "metadata_read")
        dram.count_only("metadata_write", blocks=3)
        assert dram.traffic.demand == 1
        assert dram.traffic.metadata_read == 1
        assert dram.traffic.metadata_write == 3
        assert dram.traffic.total == 5

    def test_unknown_category_rejected(self):
        dram = DramModel(SystemConfig())
        with pytest.raises(ValueError):
            dram.access(0.0, "bogus")
        with pytest.raises(ValueError):
            dram.count_only("bogus")

    def test_cycles_per_block_matches_table1(self):
        config = SystemConfig()
        # 37.5 GB/s at 4 GHz = 9.375 B/cycle -> 64 B block every ~6.83 cycles
        assert config.cycles_per_block_transfer == pytest.approx(64 / 9.375)


class TestTrafficCounters:
    def test_merge(self):
        a = TrafficCounters(demand=1, metadata_read=2)
        b = TrafficCounters(demand=3, prefetch_useless=4)
        a.merge(b)
        assert a.demand == 4
        assert a.prefetch_useless == 4
        assert a.total == 10

    def test_total_bytes(self):
        t = TrafficCounters(demand=2)
        assert t.total_bytes == 128
