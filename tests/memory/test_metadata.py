"""Metadata traffic counter tests."""

from repro.memory.metadata import MetadataTraffic


def test_aggregates():
    traffic = MetadataTraffic(index_reads=2, index_writes=1,
                              history_reads=3, history_writes=4)
    assert traffic.reads == 5
    assert traffic.writes == 5
    assert traffic.total == 10


def test_merge():
    a = MetadataTraffic(index_reads=1)
    b = MetadataTraffic(index_reads=2, history_writes=3)
    a.merge(b)
    assert a.index_reads == 3
    assert a.history_writes == 3


def test_reset():
    traffic = MetadataTraffic(index_reads=5, history_reads=2)
    traffic.reset()
    assert traffic.total == 0
