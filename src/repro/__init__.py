"""repro — a reproduction of the Domino Temporal Data Prefetcher (HPCA 2018).

The package provides:

* the Domino prefetcher and every baseline the paper compares against
  (STMS, Digram, idealised ISB, VLDP) plus classic references;
* the substrate they run on: caches, prefetch buffer, DRAM/bandwidth
  model, off-chip metadata accounting;
* synthetic server-workload generators standing in for the paper's
  CloudSuite/SPECweb/TPC-C traces;
* Sequitur grammar inference for opportunity analysis;
* trace-driven and cycle-accounting simulators;
* one experiment driver per figure/table of the paper's evaluation.

Quickstart::

    from repro import SystemConfig, simulate_trace, make_prefetcher, get_workload
    from repro.workloads import generate_trace

    config = SystemConfig()
    trace = generate_trace(get_workload("oltp"), n_accesses=200_000)
    result = simulate_trace(trace, config, make_prefetcher("domino", config))
    print(result.summary())
"""

from .config import BLOCK_SIZE, CacheConfig, SystemConfig, small_test_config
from .errors import ReproError

# NOTE: ``repro.prefetchers`` must initialise before anything imports
# ``repro.core`` through the package machinery: core.domino depends only
# on prefetcher *submodules* (safe mid-initialisation), while
# ``prefetchers/__init__`` needs the DominoPrefetcher *name* and would
# observe a partially initialised module in the reverse order.
from .prefetchers import (
    DominoPrefetcher,
    DigramPrefetcher,
    IsbPrefetcher,
    NullPrefetcher,
    Prefetcher,
    SpatioTemporalPrefetcher,
    StmsPrefetcher,
    VldpPrefetcher,
    make_prefetcher,
    prefetcher_names,
)
from .sequitur import analyze_sequence, oracle_replay
from .sim import (
    MemoryTrace,
    SimulationResult,
    TimingSimulator,
    TraceSimulator,
    simulate_multicore,
    simulate_trace,
    speedup_over_baseline,
)
from .workloads import (
    SERVER_WORKLOADS,
    WorkloadConfig,
    WorkloadSuite,
    default_suite,
    generate_trace,
    get_workload,
    workload_names,
)

__version__ = "1.0.0"

__all__ = [
    "BLOCK_SIZE",
    "CacheConfig",
    "DigramPrefetcher",
    "DominoPrefetcher",
    "IsbPrefetcher",
    "MemoryTrace",
    "NullPrefetcher",
    "Prefetcher",
    "ReproError",
    "SERVER_WORKLOADS",
    "SimulationResult",
    "SpatioTemporalPrefetcher",
    "StmsPrefetcher",
    "SystemConfig",
    "TimingSimulator",
    "TraceSimulator",
    "VldpPrefetcher",
    "WorkloadConfig",
    "WorkloadSuite",
    "__version__",
    "analyze_sequence",
    "default_suite",
    "generate_trace",
    "get_workload",
    "make_prefetcher",
    "oracle_replay",
    "prefetcher_names",
    "simulate_multicore",
    "simulate_trace",
    "small_test_config",
    "speedup_over_baseline",
    "workload_names",
]
