"""System configuration mirroring Table I of the paper.

The paper evaluates a four-core SPARC v9 chip at 4 GHz with 64 KB 2-way
L1-D caches, a 4 MB 16-way shared LLC, 45 ns main memory, and 37.5 GB/s of
peak off-chip bandwidth.  :class:`SystemConfig` captures those parameters
(converted to cycles where appropriate) plus the prefetcher-environment
parameters shared by all evaluated designs (32-block prefetch buffer near
the L1-D, prefetch degree, four active streams, 12.5 % metadata sampling).

All simulators and prefetchers in this repository read their parameters
from a single :class:`SystemConfig` instance so an experiment is fully
described by (workload config, system config, prefetcher name).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

#: Cache block (line) size in bytes used throughout the paper.
BLOCK_SIZE = 64
#: log2(BLOCK_SIZE); byte address -> block address shift.
BLOCK_SHIFT = 6
#: 4 KB pages; used by the VLDP spatial prefetcher.
PAGE_SHIFT = 12
#: Blocks per 4 KB page.
BLOCKS_PER_PAGE = 1 << (PAGE_SHIFT - BLOCK_SHIFT)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache."""

    size_bytes: int
    ways: int
    block_bytes: int = BLOCK_SIZE
    hit_latency: int = 2

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.block_bytes <= 0:
            raise ConfigError("cache geometry values must be positive")
        if self.size_bytes % (self.ways * self.block_bytes) != 0:
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible into "
                f"{self.ways} ways of {self.block_bytes}-byte blocks"
            )

    @property
    def n_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.ways * self.block_bytes)

    @property
    def n_blocks(self) -> int:
        """Total block frames in the cache."""
        return self.size_bytes // self.block_bytes


@dataclass(frozen=True)
class SystemConfig:
    """Full system parameters (Table I of the paper).

    Latencies are in core cycles at ``clock_ghz``.  The defaults reproduce
    the paper's configuration; tests and benchmarks shrink the metadata
    tables for speed, which the paper's own sensitivity analysis (Figs. 9
    and 10) shows is the right knob to trade coverage for footprint.
    """

    # -- chip ----------------------------------------------------------
    n_cores: int = 4
    clock_ghz: float = 4.0
    rob_entries: int = 128
    lsq_entries: int = 64
    issue_width: int = 4

    # -- caches --------------------------------------------------------
    l1d: CacheConfig = field(default_factory=lambda: CacheConfig(64 * 1024, 2, hit_latency=2))
    llc: CacheConfig = field(default_factory=lambda: CacheConfig(4 * 1024 * 1024, 16, hit_latency=18))
    l1_mshrs: int = 32
    llc_mshrs: int = 64

    # -- memory --------------------------------------------------------
    memory_latency_ns: float = 45.0
    peak_bandwidth_gbps: float = 37.5

    # -- prefetcher environment (Section IV-D) --------------------------
    prefetch_buffer_blocks: int = 32
    prefetch_degree: int = 4
    active_streams: int = 4
    sampling_probability: float = 0.125
    #: History Table capacity in miss entries (paper default: 16 M).
    ht_entries: int = 16 * 1024 * 1024
    #: Triggering-event addresses stored per HT row (one cache block).
    ht_row_entries: int = 12
    #: Enhanced Index Table rows (paper default: 2 M).
    eit_rows: int = 2 * 1024 * 1024
    #: Super-entries per EIT row.
    eit_assoc: int = 4
    #: (address, pointer) entries per super-entry ("three in our configuration").
    eit_entries_per_super: int = 3
    #: Enable the stream-end detection heuristic of STMS/Digram/Domino.
    stream_end_detection: bool = True
    #: Timing model only: drop prefetch requests when the prefetch-class
    #: channel backlog exceeds this many block-service times.  A safety
    #: valve against unbounded queue growth under saturation; demand is
    #: already protected by the priority lane.
    prefetch_drop_backlog_blocks: int = 128

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError("n_cores must be positive")
        if not (0.0 <= self.sampling_probability <= 1.0):
            raise ConfigError("sampling_probability must lie in [0, 1]")
        if self.prefetch_degree <= 0:
            raise ConfigError("prefetch_degree must be positive")
        if self.active_streams <= 0:
            raise ConfigError("active_streams must be positive")
        if self.ht_entries <= 0 or self.eit_rows <= 0:
            raise ConfigError("metadata table sizes must be positive")
        if self.ht_row_entries <= 0 or self.eit_entries_per_super <= 0:
            raise ConfigError("metadata row geometry must be positive")
        if self.memory_latency_ns <= 0 or self.peak_bandwidth_gbps <= 0:
            raise ConfigError("memory parameters must be positive")

    # -- derived timing quantities --------------------------------------
    @property
    def memory_latency_cycles(self) -> int:
        """Round-trip main-memory latency in core cycles (45 ns @ 4 GHz = 180)."""
        return round(self.memory_latency_ns * self.clock_ghz)

    @property
    def llc_latency_cycles(self) -> int:
        """LLC hit latency in cycles."""
        return self.llc.hit_latency

    @property
    def bytes_per_cycle(self) -> float:
        """Peak off-chip bytes deliverable per core cycle (shared)."""
        return self.peak_bandwidth_gbps / self.clock_ghz

    @property
    def cycles_per_block_transfer(self) -> float:
        """Cycles the off-chip channel is occupied per 64 B block."""
        return BLOCK_SIZE / self.bytes_per_cycle

    # -- convenience ----------------------------------------------------
    def scaled(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with the given fields replaced.

        Example::

            small = SystemConfig().scaled(ht_entries=1 << 16, eit_rows=1 << 12)
        """
        return replace(self, **overrides)


def timing_config(**overrides: Any) -> SystemConfig:
    """Configuration for the cycle-accounting experiments (Fig. 14/15).

    Identical to Table I except the LLC is scaled down to 256 KB.  The
    paper's workloads have 10–60 GB datasets against a 4 MB LLC (ratio
    ≈ 2500:1), which makes the LLC nearly useless for data — the very
    premise of the paper.  Our synthetic traces must keep their
    recurring footprint near 1 MB so that streams repeat within a
    tractable trace length, so the LLC is scaled by the same factor to
    preserve the dataset-to-LLC ratio (standard scaled-down simulation
    practice; recorded as a substitution in DESIGN.md).
    """
    base = SystemConfig(llc=CacheConfig(256 * 1024, 8, hit_latency=18))
    return base.scaled(**overrides) if overrides else base


def small_test_config(**overrides: Any) -> SystemConfig:
    """A deliberately small configuration for fast unit tests.

    Shrinks the metadata tables and caches so tests run in milliseconds
    while still exercising capacity-pressure code paths (evictions, LRU
    replacement in the EIT, HT wrap-around).
    """
    base = SystemConfig(
        l1d=CacheConfig(8 * 1024, 2, hit_latency=2),
        llc=CacheConfig(64 * 1024, 8, hit_latency=18),
        ht_entries=1 << 14,
        eit_rows=1 << 10,
    )
    return base.scaled(**overrides) if overrides else base
