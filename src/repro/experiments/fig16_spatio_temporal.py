"""Figure 16 — spatio-temporal prefetching: VLDP + Domino stacked.

The two techniques are orthogonal: VLDP predicts unobserved in-page
deltas (including compulsory misses), Domino replays observed global
sequences across pages.  Stacked, the paper's combination covers 43 pp
more than VLDP alone and 20 pp more than Domino alone, with
MapReduce-W super-additive.
"""

from __future__ import annotations

from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    acc: dict[str, list[float]] = {"vldp": [], "domino": [], "combo": []}
    for workload in options.workloads:
        vldp = ctx.run_prefetcher(workload, "vldp")
        domino = ctx.run_prefetcher(workload, "domino")
        combo = ctx.run_prefetcher(workload, "vldp+domino")
        acc["vldp"].append(vldp.coverage)
        acc["domino"].append(domino.coverage)
        acc["combo"].append(combo.coverage)
        hits = combo.extras.get("component_hits", {})
        total_hits = max(hits.get("vldp", 0) + hits.get("domino", 0), 1)
        rows.append([workload, round(vldp.coverage, 3),
                     round(domino.coverage, 3), round(combo.coverage, 3),
                     round(hits.get("vldp", 0) / total_hits, 3)])
    rows.append(["average", round(mean(acc["vldp"]), 3),
                 round(mean(acc["domino"]), 3), round(mean(acc["combo"]), 3), ""])
    return ExperimentResult(
        experiment_id="fig16",
        title="Spatio-temporal prefetching: VLDP, Domino, and the stack",
        headers=["workload", "vldp", "domino", "vldp+domino", "vldp_share"],
        rows=rows,
        notes=("Paper shape: the stack covers more than either component "
               "alone (+43pp over VLDP, +20pp over Domino on average); "
               "OLTP gains almost nothing over Domino alone."),
        series={"coverage": acc},
    )
