"""Figure 9 — Domino coverage vs History Table size.

Sweeping the HT capacity with an effectively unlimited EIT; the paper's
coverage saturates by 16 M entries, which picks the deployed size.  Our
traces are far shorter than the paper's full-system runs, so saturation
arrives at proportionally smaller HT sizes — the *shape* (monotone rise
to a plateau) is the reproduced result.
"""

from __future__ import annotations

from .common import ExperimentContext, ExperimentOptions, ExperimentResult

#: HT capacities swept, in triggering-event entries.
HT_SIZES = (1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 24)


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    for workload in options.workloads:
        cells: list = [workload]
        for ht_entries in HT_SIZES:
            config = ctx.config.scaled(ht_entries=ht_entries, eit_rows=1 << 22)
            result = ctx.run_prefetcher(workload, "domino", config=config)
            cells.append(round(result.coverage, 3))
        rows.append(cells)
    return ExperimentResult(
        experiment_id="fig09",
        title="Domino coverage vs History Table entries (EIT unlimited)",
        headers=["workload"] + [f"ht={n}" for n in HT_SIZES],
        rows=rows,
        notes=("Paper shape: coverage grows with HT size and saturates; "
               "the paper deploys 16 M entries (85 MB)."),
    )
