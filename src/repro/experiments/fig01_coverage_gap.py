"""Figure 1 — the motivating gap: STMS/ISB coverage vs the opportunity.

The paper's opening observation: with unlimited metadata, the
best-performing temporal prefetcher (STMS) captures less than half of
the data misses while Sequitur shows much more repetition is there to
exploit, and PC-localised ISB does worse than global-history STMS.
"""

from __future__ import annotations

from ..sequitur.analysis import analyze_sequence
from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    isb_covs: list[float] = []
    stms_covs: list[float] = []
    opps: list[float] = []
    for workload in options.workloads:
        isb = ctx.run_prefetcher(workload, "isb")
        stms = ctx.run_prefetcher(workload, "stms")
        opportunity = analyze_sequence(ctx.miss_blocks(workload)).opportunity
        isb_covs.append(isb.coverage)
        stms_covs.append(stms.coverage)
        opps.append(opportunity)
        rows.append([workload, round(isb.coverage, 3), round(stms.coverage, 3),
                     round(opportunity, 3)])
    rows.append(["average", round(mean(isb_covs), 3), round(mean(stms_covs), 3),
                 round(mean(opps), 3)])
    return ExperimentResult(
        experiment_id="fig01",
        title="Read-miss coverage of ISB and STMS vs Sequitur opportunity",
        headers=["workload", "isb_coverage", "stms_coverage", "opportunity"],
        rows=rows,
        notes=("Paper shape: STMS < 47% of misses on average, ISB below "
               "STMS, both far below the Sequitur opportunity."),
    )
