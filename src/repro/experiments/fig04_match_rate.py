"""Figure 4 — fraction of lookups that find a match, by lookup depth.

The flip side of Fig. 3: deeper lookups are more accurate but match
less often, which is why a pure pair-lookup (Digram) forfeits
opportunity and Domino falls back to a single address.
"""

from __future__ import annotations

from ..prefetchers.multi_lookup import LookupDepthAnalyzer
from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean

MAX_DEPTH = 5


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    per_depth: list[list[float]] = [[] for _ in range(MAX_DEPTH)]
    for workload in options.workloads:
        stats = LookupDepthAnalyzer(MAX_DEPTH).analyze(ctx.miss_blocks(workload))
        values = [s.match_rate for s in stats]
        for depth, value in enumerate(values):
            per_depth[depth].append(value)
        rows.append([workload] + [round(v, 3) for v in values])
    rows.append(["average"] + [round(mean(vals), 3) for vals in per_depth])
    return ExperimentResult(
        experiment_id="fig04",
        title="Fraction of lookups that find a match in the history, "
              "by lookup depth",
        headers=["workload"] + [f"depth{d}" for d in range(1, MAX_DEPTH + 1)],
        rows=rows,
        notes="Paper shape: match rate decreases monotonically with depth.",
    )
