"""Figure 5 — coverage and overpredictions vs recursive lookup depth.

An idealised temporal prefetcher that matches up to N addresses
(falling back recursively to fewer) improves with N, but almost all of
the benefit is realised at N = 2 — the design point Domino adopts.
"""

from __future__ import annotations

from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean

MAX_DEPTH = 5


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    cov_by_depth: list[list[float]] = [[] for _ in range(MAX_DEPTH)]
    over_by_depth: list[list[float]] = [[] for _ in range(MAX_DEPTH)]
    for workload in options.workloads:
        cells: list = [workload]
        for depth in range(1, MAX_DEPTH + 1):
            result = ctx.run_prefetcher(workload, "multi_lookup",
                                        degree=1, depth=depth)
            cov_by_depth[depth - 1].append(result.coverage)
            over_by_depth[depth - 1].append(result.overprediction_ratio)
            cells.append(f"{result.coverage:.3f}/{result.overprediction_ratio:.3f}")
        rows.append(cells)
    rows.append(["average"] + [
        f"{mean(cov_by_depth[d]):.3f}/{mean(over_by_depth[d]):.3f}"
        for d in range(MAX_DEPTH)])
    return ExperimentResult(
        experiment_id="fig05",
        title="Coverage/overpredictions of an idealised temporal prefetcher "
              "with recursive N-address lookup (degree 1)",
        headers=["workload"] + [f"N={d}" for d in range(1, MAX_DEPTH + 1)],
        rows=rows,
        notes=("Cells are coverage/overpredictions.  Paper shape: both "
               "improve sharply from N=1 to N=2, little beyond."),
    )
