"""Figure 12 — cumulative histogram of Sequitur stream lengths.

Explains why Digram's longer streams do not translate into more
coverage: a large fraction of temporal streams are length <= 2 (10–47 %
in the paper), for which a pair-only lookup cannot act at all, and most
of the rest are shorter than eight.
"""

from __future__ import annotations

from ..sequitur.analysis import analyze_sequence
from ..stats.streamstats import DEFAULT_BINS, length_cdf
from .common import ExperimentContext, ExperimentOptions, ExperimentResult


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    bin_labels = [f"<={b}" for b in DEFAULT_BINS] + [f"{DEFAULT_BINS[-1]}+"]
    rows: list[list] = []
    for workload in options.workloads:
        analysis = analyze_sequence(ctx.miss_blocks(workload))
        cdf = length_cdf(analysis.stream_lengths.lengths)
        rows.append([workload] + [round(cdf[label], 3) for label in bin_labels])
    return ExperimentResult(
        experiment_id="fig12",
        title="Cumulative distribution of Sequitur temporal stream lengths",
        headers=["workload"] + bin_labels,
        rows=rows,
        notes=("Paper shape: 10-47% of streams have length <= 2; the "
               "majority are shorter than eight."),
    )
