"""Figure 10 — Domino coverage vs Enhanced Index Table rows.

Sweeping the EIT row count with the HT fixed at its deployed size; the
paper's coverage saturates at 2 M rows (128 MB).  As with Fig. 9, our
shorter traces saturate at proportionally smaller tables — the plateau
shape is the result.
"""

from __future__ import annotations

from .common import ExperimentContext, ExperimentOptions, ExperimentResult

#: EIT row counts swept.
EIT_ROWS = (1 << 8, 1 << 10, 1 << 12, 1 << 14, 1 << 21)


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    for workload in options.workloads:
        cells: list = [workload]
        for eit_rows in EIT_ROWS:
            config = ctx.config.scaled(eit_rows=eit_rows)
            result = ctx.run_prefetcher(workload, "domino", config=config)
            cells.append(round(result.coverage, 3))
        rows.append(cells)
    return ExperimentResult(
        experiment_id="fig10",
        title="Domino coverage vs EIT rows (HT at deployed size)",
        headers=["workload"] + [f"rows={n}" for n in EIT_ROWS],
        rows=rows,
        notes=("Paper shape: coverage grows with EIT rows and saturates; "
               "the paper deploys 2 M rows (128 MB)."),
    )
