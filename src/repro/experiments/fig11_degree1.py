"""Figure 11 — coverage and overpredictions of all prefetchers, degree 1.

The headline trace-based comparison: Domino covers the most misses
(56 % in the paper, 8 % over STMS) and approaches the Sequitur
opportunity; Digram has the fewest overpredictions but loses coverage
to its two-address-only lookup; VLDP and ISB trail.

Runs through the cell runner: one trace cell per (workload,
prefetcher) plus one degree-independent opportunity cell per workload,
so fig11 and fig13 share their Sequitur cells in the artifact cache.
"""

from __future__ import annotations

from ..prefetchers.registry import PAPER_PREFETCHERS
from ..runner import Cell
from .common import (ExperimentContext, ExperimentOptions, ExperimentResult,
                     mean, payload_field)


def build_cells(options: ExperimentOptions, degree: int) -> list[Cell]:
    """The sweep: workloads × prefetchers, plus opportunity per workload."""
    cells: list[Cell] = []
    for workload in options.workloads:
        for name in PAPER_PREFETCHERS:
            cells.append(Cell(kind="trace", workload=workload,
                              prefetcher=name, degree=degree))
        cells.append(Cell(kind="opportunity", workload=workload))
    return cells


def run(options: ExperimentOptions | None = None, degree: int = 1) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    payloads = iter(ctx.run_cells(build_cells(options, degree)))
    rows: list[list] = []
    cov_acc: dict[str, list[float]] = {p: [] for p in PAPER_PREFETCHERS}
    over_acc: dict[str, list[float]] = {p: [] for p in PAPER_PREFETCHERS}
    opp_acc: list[float] = []
    for workload in options.workloads:
        cells: list = [workload]
        for name in PAPER_PREFETCHERS:
            payload = next(payloads)
            coverage = payload_field(payload, "coverage")
            overpredictions = payload_field(payload, "overprediction_ratio")
            cov_acc[name].append(coverage)
            over_acc[name].append(overpredictions)
            cells.append(f"{coverage:.3f}/{overpredictions:.3f}")
        opportunity = payload_field(next(payloads), "opportunity")
        opp_acc.append(opportunity)
        cells.append(round(opportunity, 3))
        rows.append(cells)
    rows.append(["average"]
                + [f"{mean(cov_acc[p]):.3f}/{mean(over_acc[p]):.3f}"
                   for p in PAPER_PREFETCHERS]
                + [round(mean(opp_acc), 3)])
    return ExperimentResult(
        experiment_id="fig11" if degree == 1 else "fig13",
        title=f"Coverage/overpredictions, prefetch degree {degree}",
        headers=["workload"] + list(PAPER_PREFETCHERS) + ["sequitur"],
        rows=rows,
        notes=("Cells are coverage/overpredictions.  Paper shape (deg 1): "
               "Domino best coverage (~8% relative over STMS), Digram "
               "lowest overpredictions, Domino >90% of the opportunity."),
        series={"coverage": {p: cov_acc[p] for p in PAPER_PREFETCHERS},
                "overpredictions": {p: over_acc[p] for p in PAPER_PREFETCHERS},
                "opportunity": opp_acc},
        manifest=ctx.last_manifest,
    )
