"""Figure 11 — coverage and overpredictions of all prefetchers, degree 1.

The headline trace-based comparison: Domino covers the most misses
(56 % in the paper, 8 % over STMS) and approaches the Sequitur
opportunity; Digram has the fewest overpredictions but loses coverage
to its two-address-only lookup; VLDP and ISB trail.
"""

from __future__ import annotations

from ..prefetchers.registry import PAPER_PREFETCHERS
from ..sequitur.analysis import analyze_sequence
from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean


def run(options: ExperimentOptions | None = None, degree: int = 1) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    cov_acc: dict[str, list[float]] = {p: [] for p in PAPER_PREFETCHERS}
    over_acc: dict[str, list[float]] = {p: [] for p in PAPER_PREFETCHERS}
    opp_acc: list[float] = []
    for workload in options.workloads:
        cells: list = [workload]
        for name in PAPER_PREFETCHERS:
            result = ctx.run_prefetcher(workload, name, degree=degree)
            cov_acc[name].append(result.coverage)
            over_acc[name].append(result.overprediction_ratio)
            cells.append(f"{result.coverage:.3f}/{result.overprediction_ratio:.3f}")
        opportunity = analyze_sequence(ctx.miss_blocks(workload)).opportunity
        opp_acc.append(opportunity)
        cells.append(round(opportunity, 3))
        rows.append(cells)
    rows.append(["average"]
                + [f"{mean(cov_acc[p]):.3f}/{mean(over_acc[p]):.3f}"
                   for p in PAPER_PREFETCHERS]
                + [round(mean(opp_acc), 3)])
    return ExperimentResult(
        experiment_id=f"fig11" if degree == 1 else f"fig13",
        title=f"Coverage/overpredictions, prefetch degree {degree}",
        headers=["workload"] + list(PAPER_PREFETCHERS) + ["sequitur"],
        rows=rows,
        notes=("Cells are coverage/overpredictions.  Paper shape (deg 1): "
               "Domino best coverage (~8% relative over STMS), Digram "
               "lowest overpredictions, Domino >90% of the opportunity."),
        series={"coverage": {p: cov_acc[p] for p in PAPER_PREFETCHERS},
                "overpredictions": {p: over_acc[p] for p in PAPER_PREFETCHERS},
                "opportunity": opp_acc},
    )
