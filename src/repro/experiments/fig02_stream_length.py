"""Figure 2 — average temporal stream length: STMS vs Digram vs Sequitur.

A *stream* is a run of consecutive correct prefetches.  Two-address
lookup (Digram) locks onto longer streams than single-address lookup
(STMS); the Sequitur decomposition gives the streams an oracle would
pick.
"""

from __future__ import annotations

from ..sequitur.analysis import analyze_sequence
from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    per_prefetcher: dict[str, list[float]] = {"stms": [], "digram": [], "sequitur": []}
    for workload in options.workloads:
        stms = ctx.run_prefetcher(workload, "stms")
        digram = ctx.run_prefetcher(workload, "digram")
        seq = analyze_sequence(ctx.miss_blocks(workload))
        lengths = [stms.stream_lengths.mean_length,
                   digram.stream_lengths.mean_length,
                   seq.mean_stream_length]
        for key, value in zip(per_prefetcher, lengths, strict=True):
            per_prefetcher[key].append(value)
        rows.append([workload] + [round(v, 2) for v in lengths])
    rows.append(["average"] + [round(mean(per_prefetcher[k]), 2)
                               for k in per_prefetcher])
    return ExperimentResult(
        experiment_id="fig02",
        title="Average stream length with STMS, Digram, and Sequitur",
        headers=["workload", "stms", "digram", "sequitur"],
        rows=rows,
        notes=("Paper shape: Sequitur streams longest (7.6 avg in the "
               "paper), Digram longer than STMS (1.4 avg in the paper)."),
    )
