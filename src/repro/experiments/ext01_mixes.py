"""Extension experiment (beyond the paper): heterogeneous mixes.

The paper evaluates homogeneous quad-core workloads.  Consolidated
servers co-schedule different applications per core, which stresses the
shared LLC and the shared off-chip channel differently: a
bandwidth-hungry neighbour (Web Apache) eats into the headroom a
metadata-heavy temporal prefetcher needs.  This experiment runs the
standard mixes and reports per-prefetcher speedup over the
no-prefetcher baseline — the Fig. 14 methodology on mixed cores.
"""

from __future__ import annotations

from ..sim.multicore import simulate_multicore
from ..workloads.mixes import STANDARD_MIXES, mix_traces
from .common import (ExperimentContext, ExperimentOptions, ExperimentResult,
                     gmean_speedup)

PREFETCHERS = ("stms", "digram", "domino")


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    per_core = max(options.n_accesses // 2, 20_000)
    rows: list[list] = []
    speedups: dict[str, list[float]] = {p: [] for p in PREFETCHERS}
    for mix_name in STANDARD_MIXES:
        traces = mix_traces(mix_name, per_core, suite=ctx.suite,
                            seed=options.seed)
        baseline = simulate_multicore(traces, ctx.timing, "baseline",
                                      warmup_frac=options.warmup_frac)
        cells: list = [mix_name, round(baseline.ipc, 3)]
        for name in PREFETCHERS:
            result = simulate_multicore(traces, ctx.timing, name,
                                        warmup_frac=options.warmup_frac)
            speedup = result.ipc / baseline.ipc if baseline.ipc else 0.0
            speedups[name].append(speedup)
            cells.append(round(speedup, 3))
        rows.append(cells)
    rows.append(["gmean", ""] + [round(gmean_speedup(speedups[p]), 3)
                                 for p in PREFETCHERS])
    return ExperimentResult(
        experiment_id="ext01",
        title="Extension: speedup on heterogeneous quad-core mixes",
        headers=["mix", "baseline_ipc"] + list(PREFETCHERS),
        rows=rows,
        notes=("Beyond the paper: per-core mixed workloads.  Expected "
               "shape: the Domino-over-STMS ordering survives consolidation."),
        series={"speedups": speedups},
    )
