"""Figure 13 — coverage and overpredictions of all prefetchers, degree 4.

Same comparison as Fig. 11 at the deployed degree.  The headline shape:
STMS's overpredictions balloon (about three times Domino's in the
paper) because each wrongly-chosen stream now wastes a whole degree of
prefetches, while Domino/Digram locate the right stream with the pair.
"""

from __future__ import annotations

from .common import ExperimentOptions, ExperimentResult
from .fig11_degree1 import run as _run_fig11


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    result = _run_fig11(options, degree=4)
    result.notes = ("Cells are coverage/overpredictions.  Paper shape "
                    "(deg 4): Domino either out-covers STMS (19% in OLTP) "
                    "or matches it with roughly one-third the "
                    "overpredictions; Digram's overpredictions lowest.")
    return result
