"""Figure 15 — off-chip traffic overhead of STMS, Digram, and Domino.

The stack decomposes each temporal prefetcher's extra off-chip blocks
(over the no-prefetcher baseline) into incorrect prefetches, metadata
updates, and metadata reads, normalised to baseline demand traffic.
STMS pays the most (overpredictions); Domino beats Digram on metadata
reads because its single-address EIT lookups find matches more often.
"""

from __future__ import annotations

from ..stats.bandwidth import BandwidthBreakdown
from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean

PREFETCHERS = ("stms", "digram", "domino")


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    totals: dict[str, list[float]] = {p: [] for p in PREFETCHERS}
    for workload in options.workloads:
        cells: list = [workload]
        for name in PREFETCHERS:
            result = ctx.run_prefetcher(workload, name)
            breakdown = BandwidthBreakdown.from_run(
                baseline_misses=result.metrics.triggering_events,
                overpredictions=result.metrics.overpredictions,
                metadata=result.metadata,
            )
            totals[name].append(breakdown.total_overhead)
            cells.append(f"{breakdown.incorrect_prefetch_overhead:.2f}"
                         f"+{breakdown.metadata_write_overhead:.2f}"
                         f"+{breakdown.metadata_read_overhead:.2f}"
                         f"={breakdown.total_overhead:.2f}")
        rows.append(cells)
    rows.append(["average"] + [round(mean(totals[p]), 2) for p in PREFETCHERS])
    return ExperimentResult(
        experiment_id="fig15",
        title="Off-chip traffic overhead over baseline "
              "(incorrect + metadata-update + metadata-read)",
        headers=["workload"] + list(PREFETCHERS),
        rows=rows,
        notes=("Cells are incorrect+update+read=total, normalised to "
               "baseline demand blocks.  Paper shape: STMS highest "
               "(overpredictions), Digram and Domino lowest; Domino reads "
               "less metadata than Digram."),
        series={"total_overhead": totals},
    )
