"""Figure 14 — quad-core performance improvement over the no-prefetcher
baseline.

The cycle-accounting headline: Domino speeds the chip up the most
(16 % geometric mean in the paper vs 10 % for STMS), thanks to both
higher coverage and better timeliness (one metadata round trip instead
of two).  Web Search and Media Streaming gain little despite coverage
(high MLP), MapReduce-W's streams are too short to amortise metadata
latency, and SAT Solver defeats everyone.

Runs through the cell runner: one multicore cell per (workload,
prefetcher) including the baseline, under the scaled-LLC timing config.
"""

from __future__ import annotations

from ..runner import Cell
from .common import (ExperimentContext, ExperimentOptions, ExperimentResult,
                     gmean_speedup, payload_field)

PREFETCHERS = ("vldp", "isb", "stms", "digram", "domino")


def build_cells(options: ExperimentOptions) -> list[Cell]:
    """The sweep: workloads × (baseline + prefetchers), timing config."""
    cells: list[Cell] = []
    for workload in options.workloads:
        for name in ("baseline",) + PREFETCHERS:
            cells.append(Cell(kind="multicore", workload=workload,
                              prefetcher=name, config_name="timing"))
    return cells


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    payloads = iter(ctx.run_cells(build_cells(options)))
    rows: list[list] = []
    speedups: dict[str, list[float]] = {p: [] for p in PREFETCHERS}
    for workload in options.workloads:
        baseline_ipc = payload_field(next(payloads), "ipc")
        cells: list = [workload, round(baseline_ipc, 3)]
        for name in PREFETCHERS:
            ipc = payload_field(next(payloads), "ipc")
            speedup = ipc / baseline_ipc if baseline_ipc else 0.0
            speedups[name].append(speedup)
            cells.append(round(speedup, 3))
        rows.append(cells)
    rows.append(["gmean", ""] + [round(gmean_speedup(speedups[p]), 3)
                                 for p in PREFETCHERS])
    return ExperimentResult(
        experiment_id="fig14",
        title="Quad-core speedup over the no-prefetcher baseline "
              "(cycle model, scaled-LLC timing config)",
        headers=["workload", "baseline_ipc"] + list(PREFETCHERS),
        rows=rows,
        notes=("Paper shape: Domino best gmean (16% vs STMS 10%, ~7pp over "
               "VLDP); Domino leads the temporal designs in 8 of 9 "
               "workloads; little gain on high-MLP and short-stream "
               "workloads."),
        series={"speedups": speedups},
        manifest=ctx.last_manifest,
    )
