"""Figure 14 — quad-core performance improvement over the no-prefetcher
baseline.

The cycle-accounting headline: Domino speeds the chip up the most
(16 % geometric mean in the paper vs 10 % for STMS), thanks to both
higher coverage and better timeliness (one metadata round trip instead
of two).  Web Search and Media Streaming gain little despite coverage
(high MLP), MapReduce-W's streams are too short to amortise metadata
latency, and SAT Solver defeats everyone.
"""

from __future__ import annotations

from ..sim.multicore import simulate_multicore
from .common import (ExperimentContext, ExperimentOptions, ExperimentResult,
                     gmean_speedup)

PREFETCHERS = ("vldp", "isb", "stms", "digram", "domino")


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    speedups: dict[str, list[float]] = {p: [] for p in PREFETCHERS}
    for workload in options.workloads:
        traces = ctx.core_traces(workload)
        baseline = simulate_multicore(traces, ctx.timing, "baseline",
                                      warmup_frac=options.warmup_frac)
        cells: list = [workload, round(baseline.ipc, 3)]
        for name in PREFETCHERS:
            result = simulate_multicore(traces, ctx.timing, name,
                                        warmup_frac=options.warmup_frac)
            speedup = result.ipc / baseline.ipc if baseline.ipc else 0.0
            speedups[name].append(speedup)
            cells.append(round(speedup, 3))
        rows.append(cells)
    rows.append(["gmean", ""] + [round(gmean_speedup(speedups[p]), 3)
                                 for p in PREFETCHERS])
    return ExperimentResult(
        experiment_id="fig14",
        title="Quad-core speedup over the no-prefetcher baseline "
              "(cycle model, scaled-LLC timing config)",
        headers=["workload", "baseline_ipc"] + list(PREFETCHERS),
        rows=rows,
        notes=("Paper shape: Domino best gmean (16% vs STMS 10%, ~7pp over "
               "VLDP); Domino leads the temporal designs in 8 of 9 "
               "workloads; little gain on high-MLP and short-stream "
               "workloads."),
        series={"speedups": speedups},
    )
