"""Shared experiment plumbing: options, results, and cached helpers.

All experiments follow the same measurement protocol:

* traces of ``n_accesses`` accesses per workload (deterministic seed);
* the leading ``warmup_frac`` of every run trains caches and the
  sampled metadata tables but is excluded from the reported counters —
  the trace-scale analogue of SimFlex checkpoint warming;
* trace-driven experiments use the Table I :class:`SystemConfig`;
  cycle-accounting experiments use :func:`repro.config.timing_config`
  (scaled LLC; see DESIGN.md §2).

``ExperimentOptions.quick()`` shrinks everything for benchmarks/tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from collections.abc import Sequence
from typing import Any

from ..config import SystemConfig, timing_config
from ..prefetchers.registry import make_prefetcher
from ..sim.engine import SimulationResult, collect_miss_stream, simulate_trace
from ..stats.tables import format_table
from ..workloads.server import workload_names
from ..workloads.suite import WorkloadSuite


@dataclass(frozen=True)
class ExperimentOptions:
    """Knobs shared by every experiment driver."""

    n_accesses: int = 200_000
    warmup_frac: float = 0.5
    degree: int = 4
    workloads: tuple[str, ...] = field(default_factory=lambda: tuple(workload_names()))
    seed: int = 1234

    def scaled(self, **overrides: Any) -> "ExperimentOptions":
        return replace(self, **overrides)

    @classmethod
    def quick(cls, **overrides: Any) -> "ExperimentOptions":
        """Small sizes for CI/benchmark runs."""
        base = cls(n_accesses=60_000,
                   workloads=("oltp", "web_apache", "media_streaming"))
        return base.scaled(**overrides) if overrides else base

    @property
    def warmup(self) -> int:
        return int(self.n_accesses * self.warmup_frac)


@dataclass
class ExperimentResult:
    """Rows of one regenerated figure/table."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list]
    notes: str = ""
    #: Free-form machine-readable extras (per-workload series etc).
    series: dict = field(default_factory=dict)
    #: :class:`repro.runner.manifest.RunManifest` when the experiment
    #: went through the cell runner (cache/parallelism accounting).
    manifest: Any = None

    def render(self) -> str:
        out = format_table(self.headers, self.rows,
                           title=f"[{self.experiment_id}] {self.title}")
        if self.notes:
            out += f"\n{self.notes}"
        return out

    def column(self, header: str) -> list:
        """Extract one column by header name."""
        idx = self.headers.index(header)
        return [row[idx] for row in self.rows]


class ExperimentContext:
    """Caches traces and baseline miss streams across one experiment."""

    def __init__(self, options: ExperimentOptions) -> None:
        self.options = options
        self.config = SystemConfig()
        self.timing = timing_config()
        self.suite = WorkloadSuite(seed=options.seed)
        self._miss_streams: dict[str, list[tuple[int, int]]] = {}
        #: Manifest of the most recent :meth:`run_cells` sweep (merged
        #: across calls within one experiment).
        self.last_manifest = None

    def trace(self, workload: str):
        return self.suite.trace(workload, self.options.n_accesses)

    def core_traces(self, workload: str):
        per_core = max(self.options.n_accesses // 2, 20_000)
        return self.suite.core_traces(workload, per_core,
                                      n_cores=self.timing.n_cores)

    def miss_stream(self, workload: str) -> list[tuple[int, int]]:
        """Baseline (pc, block) miss sequence of the measured window."""
        if workload not in self._miss_streams:
            trace = self.trace(workload)
            window = trace.slice(self.options.warmup, len(trace))
            self._miss_streams[workload] = collect_miss_stream(window, self.config)
        return self._miss_streams[workload]

    def miss_blocks(self, workload: str) -> list[int]:
        return [block for _, block in self.miss_stream(workload)]

    def run_prefetcher(self, workload: str, name: str,
                       degree: int | None = None,
                       config: SystemConfig | None = None,
                       **kwargs: Any) -> SimulationResult:
        """Trace-driven run with the standard warm-up protocol."""
        options = self.options
        cfg = config if config is not None else self.config
        prefetcher = make_prefetcher(
            name, cfg, degree=degree if degree is not None else options.degree,
            **kwargs)
        return simulate_trace(self.trace(workload), cfg, prefetcher,
                              warmup=options.warmup)

    def run_cells(self, cells: Sequence[Any]) -> list[dict]:
        """Execute a sweep of :class:`repro.runner.Cell` objects through
        the scheduler (worker pool + artifact cache) and return their
        payload dicts in input order.

        Experiments adopt this incrementally: build the full cell list
        up front, call ``run_cells`` once, then assemble rows from the
        payloads.  The run's manifest accumulates on ``last_manifest``
        so drivers can attach it to their :class:`ExperimentResult`.
        """
        from ..runner.scheduler import run_cells as _run_cells

        payloads, manifest = _run_cells(cells, self.options)
        self.last_manifest = (manifest if self.last_manifest is None
                              else self.last_manifest.merged_with(manifest))
        return payloads


def payload_field(payload: Any, name: str, default: Any = float("nan")) -> Any:
    """A field from a cell payload, tolerating failed cells.

    Under a degradable execution policy (``keep_going``), cells that
    exhausted their retry budget come back as ``None`` payloads.
    Drivers read fields through this helper so a partially failed sweep
    still renders — missing values surface as ``nan`` in the table
    instead of a ``TypeError`` that would discard the surviving cells.
    """
    if not isinstance(payload, dict):
        return default
    return payload.get(name, default)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean, 0.0 on empty input."""
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def gmean_speedup(speedups: Sequence[float]) -> float:
    """Geometric mean of speedup ratios (the paper's summary metric)."""
    speedups = list(speedups)
    if not speedups:
        return 1.0
    return math.exp(sum(math.log(max(s, 1e-9)) for s in speedups) / len(speedups))
