"""Experiment registry: paper id -> driver."""

from __future__ import annotations

from collections.abc import Callable

from ..errors import UnknownExperimentError
from .common import ExperimentOptions, ExperimentResult
from . import (ext01_mixes, ext02_latency, fig01_coverage_gap, fig02_stream_length,
               fig03_lookup_accuracy, fig04_match_rate, fig05_lookup_depth,
               fig06_timing_events, fig09_ht_sensitivity,
               fig10_eit_sensitivity, fig11_degree1, fig12_stream_histogram,
               fig13_degree4, fig14_speedup, fig15_bandwidth,
               fig16_spatio_temporal, tables)

Driver = Callable[[ExperimentOptions | None], ExperimentResult]

EXPERIMENTS: dict[str, Driver] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "fig01": fig01_coverage_gap.run,
    "fig02": fig02_stream_length.run,
    "fig03": fig03_lookup_accuracy.run,
    "fig04": fig04_match_rate.run,
    "fig05": fig05_lookup_depth.run,
    "fig06": fig06_timing_events.run,
    "fig09": fig09_ht_sensitivity.run,
    "fig10": fig10_eit_sensitivity.run,
    "fig11": fig11_degree1.run,
    "fig12": fig12_stream_histogram.run,
    "fig13": fig13_degree4.run,
    "fig14": fig14_speedup.run,
    "fig15": fig15_bandwidth.run,
    "fig16": fig16_spatio_temporal.run,
    "ext01": ext01_mixes.run,
    "ext02": ext02_latency.run,
}


def experiment_ids() -> list[str]:
    """All registered experiment ids, tables first then figures."""
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str,
                   options: ExperimentOptions | None = None) -> ExperimentResult:
    """Run one experiment by its paper id (e.g. ``"fig11"``)."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        raise UnknownExperimentError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {', '.join(EXPERIMENTS)}") from None
    return driver(options)
