"""Figure 6 — timing of metadata events: STMS's two round trips vs
Domino's one.

Fig. 6 is a timeline diagram, not a measurement, so the regenerable
content is (a) the number of serialised off-chip metadata accesses each
design needs before the first prefetch of a stream and (b) the measured
consequence in the cycle model: the fraction of prefetch hits that
arrive late.
"""

from __future__ import annotations

from ..prefetchers.registry import make_prefetcher
from ..sim.timing import TimingSimulator
from .common import ExperimentContext, ExperimentOptions, ExperimentResult

PREFETCHERS = ("stms", "digram", "domino")


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    workload = options.workloads[0]
    trace = ctx.trace(workload)
    rows: list[list] = []
    for name in PREFETCHERS:
        prefetcher = make_prefetcher(name, ctx.timing, degree=options.degree)
        sim = TimingSimulator(ctx.timing, prefetcher)
        result = sim.run(trace, warmup_frac=options.warmup_frac)
        round_trips = prefetcher.first_prefetch_round_trips
        first_latency = round_trips * ctx.timing.memory_latency_cycles
        rows.append([name, round_trips, first_latency,
                     round(1.0 - result.timeliness, 3),
                     result.prefetch_hits])
    return ExperimentResult(
        experiment_id="fig06",
        title=f"Metadata round trips before a stream's first prefetch "
              f"({workload})",
        headers=["prefetcher", "serialised_round_trips",
                 "first_prefetch_delay_cycles", "late_hit_fraction",
                 "prefetch_hits"],
        rows=rows,
        notes=("Paper shape: STMS/Digram wait two serialised memory "
               "accesses (IT then HT) before the first prefetch; Domino's "
               "EIT row already carries the next address, so one suffices."),
    )
