"""Experiment drivers: one module per figure/table of the paper.

Every experiment exposes ``run(options) -> ExperimentResult`` and is
registered in :mod:`repro.experiments.registry` under its paper id
(``fig01`` … ``fig16``, ``table1``, ``table2``).  The CLI
(``domino-repro run fig11``) and the benchmark harness both go through
:func:`run_experiment`.
"""

from .common import ExperimentOptions, ExperimentResult
from .registry import EXPERIMENTS, experiment_ids, run_experiment

__all__ = [
    "EXPERIMENTS",
    "ExperimentOptions",
    "ExperimentResult",
    "experiment_ids",
    "run_experiment",
]
