"""Extension experiment: speedup sensitivity to memory latency.

The paper's timeliness argument — Domino issues a stream's first
prefetch after one serialised metadata round trip where STMS needs two
— should matter *more* as memory latency grows (each saved round trip
is worth more cycles).  This experiment sweeps the memory latency on
one workload and reports STMS vs Domino speedup at each point; the gap
widening with latency is the predicted signature.
"""

from __future__ import annotations

from ..sim.multicore import simulate_multicore
from .common import ExperimentContext, ExperimentOptions, ExperimentResult

LATENCIES_NS = (30.0, 45.0, 60.0, 90.0)
PREFETCHERS = ("stms", "domino")


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    workload = options.workloads[0]
    traces = ctx.core_traces(workload)
    rows: list[list] = []
    for latency in LATENCIES_NS:
        config = ctx.timing.scaled(memory_latency_ns=latency)
        baseline = simulate_multicore(traces, config, "baseline",
                                      warmup_frac=options.warmup_frac)
        cells: list = [f"{latency:g} ns", round(baseline.ipc, 3)]
        for name in PREFETCHERS:
            result = simulate_multicore(traces, config, name,
                                        warmup_frac=options.warmup_frac)
            cells.append(round(result.ipc / baseline.ipc, 3)
                         if baseline.ipc else 0.0)
        rows.append(cells)
    return ExperimentResult(
        experiment_id="ext02",
        title=f"Extension: speedup vs memory latency ({workload})",
        headers=["memory_latency", "baseline_ipc"] + list(PREFETCHERS),
        rows=rows,
        notes=("Predicted signature: both prefetchers gain more at higher "
               "latency, and Domino's one-round-trip first prefetch widens "
               "its edge over STMS as the round trip gets more expensive."),
    )
