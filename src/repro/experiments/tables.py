"""Tables I and II — the evaluated system and workload catalogues.

These are configuration tables rather than measurements; regenerating
them renders the live defaults so any drift between code and paper is
visible.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..workloads.server import SERVER_WORKLOADS
from .common import ExperimentOptions, ExperimentResult


def run_table1(options: ExperimentOptions | None = None) -> ExperimentResult:
    config = SystemConfig()
    rows = [
        ["Chip", f"{config.n_cores} cores, {config.clock_ghz:g} GHz"],
        ["Core", f"OoO, {config.issue_width}-wide, {config.rob_entries}-entry "
                 f"ROB, {config.lsq_entries}-entry LSQ"],
        ["L1-D", f"{config.l1d.size_bytes // 1024} KB, {config.l1d.ways}-way, "
                 f"{config.l1d.hit_latency}-cycle, {config.l1_mshrs} MSHRs"],
        ["LLC", f"{config.llc.size_bytes // (1024 * 1024)} MB, "
                f"{config.llc.ways}-way, {config.llc.hit_latency}-cycle, "
                f"{config.llc_mshrs} MSHRs"],
        ["Memory", f"{config.memory_latency_ns:g} ns "
                   f"({config.memory_latency_cycles} cycles), "
                   f"{config.peak_bandwidth_gbps:g} GB/s peak"],
        ["Prefetch buffer", f"{config.prefetch_buffer_blocks} blocks"],
        ["Prefetch degree", str(config.prefetch_degree)],
        ["Active streams", str(config.active_streams)],
        ["Metadata sampling", f"{config.sampling_probability:.1%}"],
        ["HT", f"{config.ht_entries} entries, {config.ht_row_entries}/row"],
        ["EIT", f"{config.eit_rows} rows x {config.eit_assoc} super-entries "
                f"x {config.eit_entries_per_super} entries"],
    ]
    return ExperimentResult(
        experiment_id="table1",
        title="Evaluation parameters (Table I)",
        headers=["parameter", "value"],
        rows=rows,
    )


def run_table2(options: ExperimentOptions | None = None) -> ExperimentResult:
    rows = [[name, cfg.description,
             cfg.n_documents, round(cfg.doc_length_mean, 1),
             round(cfg.shared_frac, 2), round(cfg.noise_rate, 2),
             round(cfg.dependent_frac, 2)]
            for name, cfg in SERVER_WORKLOADS.items()]
    return ExperimentResult(
        experiment_id="table2",
        title="Application parameters (Table II analogue: synthetic configs)",
        headers=["workload", "models", "documents", "mean_len",
                 "shared", "noise", "dependent"],
        rows=rows,
    )
