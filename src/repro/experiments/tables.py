"""Tables I and II — the evaluated system and workload catalogues.

These are configuration tables rather than measurements; regenerating
them renders the live defaults so any drift between code and paper is
visible.
"""

from __future__ import annotations

from ..runner import Cell
from ..workloads.server import SERVER_WORKLOADS
from .common import (ExperimentContext, ExperimentOptions, ExperimentResult,
                     payload_field)


def run_table1(options: ExperimentOptions | None = None) -> ExperimentResult:
    """Rendered by the runner's ``table1`` cell executor so the live
    defaults travel through the same cache/manifest machinery as the
    measured experiments (the rows depend only on the config, so the
    cell's cache key excludes the trace-shaping options)."""
    ctx = ExperimentContext(options or ExperimentOptions())
    (payload,) = ctx.run_cells([Cell(kind="table1")])
    rows = payload_field(payload, "rows",
                         default=[["(unavailable)", "cell failed"]])
    return ExperimentResult(
        experiment_id="table1",
        title="Evaluation parameters (Table I)",
        headers=["parameter", "value"],
        rows=rows,
        manifest=ctx.last_manifest,
    )


def run_table2(options: ExperimentOptions | None = None) -> ExperimentResult:
    rows = [[name, cfg.description,
             cfg.n_documents, round(cfg.doc_length_mean, 1),
             round(cfg.shared_frac, 2), round(cfg.noise_rate, 2),
             round(cfg.dependent_frac, 2)]
            for name, cfg in SERVER_WORKLOADS.items()]
    return ExperimentResult(
        experiment_id="table2",
        title="Application parameters (Table II analogue: synthetic configs)",
        headers=["workload", "models", "documents", "mean_len",
                 "shared", "noise", "dependent"],
        rows=rows,
    )
