"""Figure 3 — P(correct next-miss | match) vs number of matched addresses.

Lookups that match more trailing addresses predict the next miss more
accurately; beyond two or three the improvement is marginal — the
paper's justification for stopping at two.
"""

from __future__ import annotations

from ..prefetchers.multi_lookup import LookupDepthAnalyzer
from .common import ExperimentContext, ExperimentOptions, ExperimentResult, mean

MAX_DEPTH = 5


def run(options: ExperimentOptions | None = None) -> ExperimentResult:
    options = options or ExperimentOptions()
    ctx = ExperimentContext(options)
    rows: list[list] = []
    per_depth: list[list[float]] = [[] for _ in range(MAX_DEPTH)]
    for workload in options.workloads:
        stats = LookupDepthAnalyzer(MAX_DEPTH).analyze(ctx.miss_blocks(workload))
        values = [s.accuracy_given_match for s in stats]
        for depth, value in enumerate(values):
            per_depth[depth].append(value)
        rows.append([workload] + [round(v, 3) for v in values])
    rows.append(["average"] + [round(mean(vals), 3) for vals in per_depth])
    return ExperimentResult(
        experiment_id="fig03",
        title="Fraction of matching lookups that predict the next miss "
              "correctly, by lookup depth",
        headers=["workload"] + [f"depth{d}" for d in range(1, MAX_DEPTH + 1)],
        rows=rows,
        notes=("Paper shape: accuracy rises steeply from one to two "
               "addresses, then flattens beyond three."),
    )
