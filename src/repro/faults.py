"""Deterministic, seed-driven fault injection for the cell runner.

Chaos testing only works when failures are *reproducible*: a flaky
fault plan makes a chaos CI step itself flaky.  Every decision here is
therefore a pure function of ``(plan.seed, fault mode, cell key,
attempt)`` — no global counters, no ``random`` module state — so the
same plan produces the same crashes in serial and parallel runs, across
worker-assignment shuffles, and on every CI re-run.

A :class:`FaultPlan` rides inside
:class:`~repro.runner.scheduler.ExecutionPolicy` (it is frozen and
picklable, so it travels to pool workers) and is applied by
:func:`repro.runner.execute.execute_timed` just before a cell runs.
Four fault modes cover the runner's failure paths:

``crash``
    Raise :class:`InjectedFault` inside the worker — exercises the
    exception-isolation and retry machinery.  ``crash:P`` rolls with
    probability ``P`` per ``(cell, attempt)``; ``crash@N`` raises on
    every cell's first ``N`` attempts (raise-on-Nth-call: the cell
    succeeds on attempt ``N``, exercising exactly ``N`` retries).
``hang``
    Sleep ``hang_s`` seconds — exercises the per-cell timeout watchdog
    and pool rebuild.
``exit``
    Kill the worker process with ``os._exit`` — exercises the
    lost-task path (requires a timeout to be detected).  In serial
    (in-process) execution this raises instead of exiting, because
    killing the only process would end the run rather than test it.
``corrupt``
    Truncate the just-written cache artifact — exercises the store's
    quarantine path on the next run.  Applied by the scheduler after
    ``ResultStore.put``, never inside workers.

Three further modes target the serve tier and are applied by the
**load generator's chaos clients** (:mod:`repro.serve.loadgen`), not by
the executor — the misbehaviour under test is the client's, and the
property under test is that the server contains it:

``slow_client``
    The client stalls ``slow_client_s`` seconds before draining its
    reply stream — exercises per-connection write isolation (a glacial
    reader must not block other tenants' streams).
``disconnect``
    The client vanishes right after its job is accepted — exercises
    mid-stream dead-connection handling (the job still completes; the
    results are simply unread).
``malformed``
    The client sends a garbage frame before its submit — exercises the
    error-reply path (the connection and the tenant's healthy jobs
    survive).

Serve rolls are keyed by ``(tenant, job index)`` instead of
``(cell key, attempt)`` — same :func:`stable_fraction` determinism.

Four **network fault modes** are applied by the *server* at its
read/write boundary (a plan handed to
:class:`~repro.serve.server.ServeConfig`), modelling the transport
failing underneath an otherwise well-behaved client.  Each connection's
fate is rolled once, per ``(tenant, connection index)``, in the fixed
order ``reset > partition > blackhole > slow_write`` so overlapping
probabilities stay deterministic:

``reset``
    The server closes the transport before its second write — the
    client sees the welcome, then EOF mid-handshake-response.
``partition``
    The transport delivers up to ``net_after_writes`` frames (welcome +
    accepted by default), then the connection drops — the classic
    network partition after a job is underway; exercises
    cancel-on-disconnect and watchdog cleanup.
``blackhole``
    After ``net_after_writes`` frames, writes silently vanish: the
    connection never errors, the client never hears back — only
    deadlines/quotas can reap the work.
``slow_write``
    Every server write stalls ``slow_write_s`` first — a congested,
    lossy-but-alive path; exercises per-connection write isolation
    from the server side.

``net_tenants`` narrows net faults to named tenants, which is how the
partition chaos test makes one tenant the victim while proving the
others unaffected.

Specs are parsed from the hidden ``--inject-faults`` CLI flag, e.g.
``crash:0.3``, ``crash@2,hang:0.1,seed:7``, ``hang:1,hang_s:5``,
``slow_client:0.2,disconnect:0.1,malformed:0.1``,
``partition:1,net_tenants:t0``.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path

from .errors import ConfigError, RunnerError

__all__ = [
    "FaultPlan",
    "InjectedFault",
    "corrupt_artifact",
    "parse_fault_spec",
    "stable_fraction",
]


class InjectedFault(RunnerError):
    """An artificial failure raised by a :class:`FaultPlan`."""


def stable_fraction(*parts: object) -> float:
    """Deterministic pseudo-random fraction in ``[0, 1)`` from ``parts``.

    SHA-256 over the ``:``-joined string rendering, first 8 bytes as an
    integer, scaled.  Used for fault rolls and for retry-backoff jitter
    so neither depends on interpreter or scheduler state.
    """
    blob = ":".join(str(p) for p in parts).encode("utf-8")
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """Picklable description of which faults to inject, and when.

    Probabilities are rolled independently per ``(cell key, attempt)``
    via :func:`stable_fraction`; ``crash_attempts`` is the deterministic
    raise-on-first-N-attempts form.  A zeroed plan injects nothing.
    """

    crash_p: float = 0.0
    hang_p: float = 0.0
    exit_p: float = 0.0
    corrupt_p: float = 0.0
    #: Every cell's first N attempts raise (then attempt N succeeds).
    crash_attempts: int = 0
    #: How long an injected hang sleeps (choose > the cell timeout).
    hang_s: float = 5.0
    #: Serve-tier client misbehaviour (rolled per tenant job, applied
    #: by loadgen chaos clients — see module docstring).
    slow_client_p: float = 0.0
    disconnect_p: float = 0.0
    malformed_p: float = 0.0
    #: How long a slow client stalls before draining replies.
    slow_client_s: float = 0.5
    #: Network faults, rolled once per (tenant, connection index) and
    #: applied by the server at its read/write boundary (see module
    #: docstring for the fixed precedence order).
    reset_p: float = 0.0
    partition_p: float = 0.0
    blackhole_p: float = 0.0
    slow_write_p: float = 0.0
    #: Frames delivered before a partition/blackhole takes effect
    #: (2 = welcome + accepted: the job is underway when the net dies).
    net_after_writes: int = 2
    #: Per-write stall of a slow_write connection.
    slow_write_s: float = 0.05
    #: Restrict net faults to these tenants ("" = all tenants).
    net_tenants: tuple[str, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("crash_p", "hang_p", "exit_p", "corrupt_p",
                     "slow_client_p", "disconnect_p", "malformed_p",
                     "reset_p", "partition_p", "blackhole_p", "slow_write_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"fault probability {name}={p!r} not in [0, 1]")
        if self.crash_attempts < 0:
            raise ConfigError("crash_attempts must be >= 0")
        if self.hang_s < 0:
            raise ConfigError("hang_s must be >= 0")
        if self.slow_client_s < 0:
            raise ConfigError("slow_client_s must be >= 0")
        if self.net_after_writes < 1:
            raise ConfigError("net_after_writes must be >= 1")
        if self.slow_write_s < 0:
            raise ConfigError("slow_write_s must be >= 0")

    # -- decisions ------------------------------------------------------
    @property
    def active(self) -> bool:
        return bool(self.crash_p or self.hang_p or self.exit_p
                    or self.corrupt_p or self.crash_attempts)

    def _roll(self, mode: str, key: str, attempt: int, p: float) -> bool:
        return p > 0.0 and stable_fraction(self.seed, mode, key, attempt) < p

    def should_crash(self, key: str, attempt: int) -> bool:
        if attempt < self.crash_attempts:
            return True
        return self._roll("crash", key, attempt, self.crash_p)

    def should_hang(self, key: str, attempt: int) -> bool:
        return self._roll("hang", key, attempt, self.hang_p)

    def should_exit(self, key: str, attempt: int) -> bool:
        return self._roll("exit", key, attempt, self.exit_p)

    def should_corrupt(self, key: str) -> bool:
        """Corrupt the stored artifact for ``key`` (attempt-independent)."""
        return self._roll("corrupt", key, 0, self.corrupt_p)

    # -- serve-tier client misbehaviour (rolled per tenant job) ---------
    @property
    def serve_active(self) -> bool:
        return bool(self.slow_client_p or self.disconnect_p
                    or self.malformed_p)

    def should_slow_client(self, tenant: str, job_index: int) -> bool:
        return self._roll("slow_client", tenant, job_index, self.slow_client_p)

    def should_disconnect(self, tenant: str, job_index: int) -> bool:
        return self._roll("disconnect", tenant, job_index, self.disconnect_p)

    def should_malform(self, tenant: str, job_index: int) -> bool:
        return self._roll("malformed", tenant, job_index, self.malformed_p)

    # -- server-side network faults (rolled per tenant connection) ------
    @property
    def net_active(self) -> bool:
        return bool(self.reset_p or self.partition_p or self.blackhole_p
                    or self.slow_write_p)

    def net_fate(self, tenant: str, conn_index: int) -> str:
        """This connection's network fate: one of ``"reset"``,
        ``"partition"``, ``"blackhole"``, ``"slow_write"``, or ``""``
        (healthy).  Rolled once, in fixed precedence order, so a plan
        with several probabilities set stays deterministic."""
        if self.net_tenants and tenant not in self.net_tenants:
            return ""
        for mode, p in (("reset", self.reset_p),
                        ("partition", self.partition_p),
                        ("blackhole", self.blackhole_p),
                        ("slow_write", self.slow_write_p)):
            if self._roll(mode, tenant, conn_index, p):
                return mode
        return ""

    # -- application ----------------------------------------------------
    def apply(self, key: str, attempt: int) -> None:
        """Inject the planned execution faults for one cell attempt.

        Called at the top of the cell executor.  ``exit`` only truly
        exits inside a daemonic pool worker; in the main process it
        degrades to a raise so serial runs stay alive.
        """
        if self.should_exit(key, attempt):
            if multiprocessing.current_process().daemon:
                os._exit(86)  # hard worker death, bypassing cleanup
            raise InjectedFault(
                f"injected worker death for cell {key[:12]} attempt {attempt} "
                "(raised: not in a pool worker)")
        if self.should_hang(key, attempt):
            time.sleep(self.hang_s)
        if self.should_crash(key, attempt):
            raise InjectedFault(
                f"injected crash for cell {key[:12]} attempt {attempt}")


def corrupt_artifact(path: str | Path) -> bool:
    """Overwrite an artifact with garbage (the ``corrupt`` fault mode).

    Returns True if the file existed and was clobbered.  The damage is
    exactly what a torn write would leave: truncated, unparsable JSON.
    """
    path = Path(path)
    if not path.is_file():
        return False
    path.write_bytes(b'{"schema": 1, "code_')
    return True


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse an ``--inject-faults`` spec string into a :class:`FaultPlan`.

    Grammar: comma-separated tokens, each one of
    ``crash:P | crash@N | hang:P | exit:P | corrupt:P | seed:N | hang_s:S
    | slow_client:P | disconnect:P | malformed:P | slow_client_s:S
    | reset:P | partition:P | blackhole:P | slow_write:P | slow_write_s:S
    | net_after_writes:N | net_tenants:T+U+...``.
    """
    plan = FaultPlan()
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if "@" in token:
            mode, _, value = token.partition("@")
            if mode.strip() != "crash":
                raise ConfigError(
                    f"fault token {token!r}: only 'crash@N' supports @")
            try:
                plan = replace(plan, crash_attempts=int(value))
            except ValueError:
                raise ConfigError(
                    f"fault token {token!r}: N must be an integer") from None
            continue
        mode, sep, value = token.partition(":")
        mode = mode.strip()
        if not sep:
            raise ConfigError(
                f"fault token {token!r}: expected 'mode:value' or 'crash@N'")
        try:
            if mode == "seed":
                plan = replace(plan, seed=int(value))
            elif mode == "net_after_writes":
                plan = replace(plan, net_after_writes=int(value))
            elif mode == "net_tenants":
                tenants = tuple(t for t in value.split("+") if t)
                if not tenants:
                    raise ConfigError(
                        f"fault token {token!r}: expected tenant names "
                        "joined by '+'")
                plan = replace(plan, net_tenants=tenants)
            elif mode in ("hang_s", "slow_client_s", "slow_write_s"):
                plan = replace(plan, **{mode: float(value)})
            elif mode in ("crash", "hang", "exit", "corrupt",
                          "slow_client", "disconnect", "malformed",
                          "reset", "partition", "blackhole", "slow_write"):
                plan = replace(plan, **{f"{mode}_p": float(value)})
            else:
                raise ConfigError(
                    f"unknown fault mode {mode!r}; "
                    "known: crash, hang, exit, corrupt, slow_client, "
                    "disconnect, malformed, reset, partition, blackhole, "
                    "slow_write, seed, hang_s, slow_client_s, slow_write_s, "
                    "net_after_writes, net_tenants")
        except ValueError:
            raise ConfigError(
                f"fault token {token!r}: value {value!r} is not a number") from None
    return plan
