"""Deterministic exponential backoff with stable jitter.

One formula, two consumers:

* the **runner** (:mod:`repro.runner.scheduler`) spaces the retries of
  a failed cell — attempt ``n`` waits ``base_s * 2**n`` (capped at
  ``max_s``) scaled by a jitter factor in ``[0.5, 1.5)``;
* the **server** (:mod:`repro.serve`) turns the same curve into the
  ``retry_after_s`` hint attached to a shed response, so a client that
  keeps hammering a saturated server is pushed back harder each time.

Both sides need the *same* property: the delay must be a pure function
of its inputs.  Retry schedules enter chaos-test expectations (a CI
fault-injection run must replay identically), and shed hints enter the
load generator's seeded benchmark — a wall-clock- or RNG-state-derived
jitter would make either nondeterministic.  The jitter therefore comes
from :func:`repro.faults.stable_fraction` (SHA-256 over the inputs),
keyed by a caller-chosen ``key`` (cell key, tenant name) and the
attempt number.
"""

from __future__ import annotations

from .errors import ConfigError
from .faults import stable_fraction

__all__ = ["backoff_delay", "jittered", "next_delays"]

#: Domain separator mixed into the jitter hash.  Distinct consumers may
#: pass their own ``salt`` so e.g. a cell retry and a shed hint for the
#: same key string do not produce correlated jitter.
DEFAULT_SALT = "backoff"


def jittered(value: float, key: str, attempt: int,
             salt: str = DEFAULT_SALT) -> float:
    """``value`` scaled by the deterministic jitter factor in [0.5, 1.5)."""
    return value * (0.5 + stable_fraction(salt, key, attempt))


def backoff_delay(key: str, attempt: int, *, base_s: float, max_s: float,
                  salt: str = DEFAULT_SALT) -> float:
    """Delay before retrying ``key`` after its ``attempt``-th failure.

    Exponential growth from ``base_s``, capped at ``max_s`` *before*
    jitter is applied, then scaled by a stable jitter in ``[0.5, 1.5)``
    — so the worst-case delay is ``1.5 * max_s`` and the expected delay
    of a capped attempt is exactly ``max_s``.  Attempts count from 0.
    """
    if base_s < 0 or max_s < 0:
        raise ConfigError("backoff delays must be >= 0")
    if attempt < 0:
        raise ConfigError("backoff attempt must be >= 0")
    # 2**attempt overflows floats near attempt ~1024; clamp the exponent
    # first so a long-lived shed streak cannot raise OverflowError.
    exponent = min(attempt, 64)
    base = min(max_s, base_s * (2 ** exponent))
    return jittered(base, key, attempt, salt=salt)


def next_delays(key: str, attempts: int, *, base_s: float, max_s: float,
                salt: str = DEFAULT_SALT) -> list[float]:
    """The first ``attempts`` delays of the schedule for ``key``."""
    return [backoff_delay(key, attempt, base_s=base_s, max_s=max_s, salt=salt)
            for attempt in range(attempts)]
