"""Active-stream bookkeeping shared by the temporal prefetchers.

STMS, Digram, and Domino all "track four active streams at any given
point in time" (Section IV-D).  A stream owns

* a **PointBuf** queue of upcoming addresses read from the History Table,
* an optional **HT cursor** from which the queue can be extended with
  further row fetches,
* for Domino only, a *pending* super-entry snapshot awaiting the second
  triggering event of the two-address lookup,
* usefulness feedback counters that drive the stream-end detection
  heuristic (a stream whose prefetches keep getting evicted unused is
  dead and should stop consuming bandwidth).

:class:`StreamTable` manages up to N streams with an LRU stack; a miss
allocates a new stream by replacing the least-recently-used one, and a
prefetch hit promotes its stream to MRU — exactly the policy Section III
describes.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict, deque
from collections.abc import Iterator
from dataclasses import dataclass, field


@dataclass
class ActiveStream:
    """One in-flight temporal stream."""

    stream_id: int
    #: Upcoming addresses to prefetch, oldest first (the PointBuf).
    queue: deque[int] = field(default_factory=deque)
    #: Next HT global position to read when the queue runs dry
    #: (None when the stream cannot be extended).
    ht_cursor: int | None = None
    #: Domino: (address, pointer) entries awaiting the confirmation event.
    pending_entries: list[tuple[int, int]] | None = None
    #: Prefetches issued on behalf of this stream.
    issued: int = 0
    #: Prefetches of this stream consumed by demand accesses.
    useful: int = 0
    #: Prefetches of this stream evicted unused (stream-end signal).
    unused_evictions: int = 0
    dead: bool = False

    @property
    def pending(self) -> bool:
        """Is the stream awaiting its two-address confirmation?"""
        return self.pending_entries is not None

    def next_address(self) -> int | None:
        """Pop the next address to prefetch, or None when dry."""
        if self.queue:
            return self.queue.popleft()
        return None

    def extendable(self) -> bool:
        return self.ht_cursor is not None


class StreamTable:
    """Up to ``capacity`` active streams with LRU replacement."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("stream table capacity must be positive")
        self.capacity = capacity
        self._streams: OrderedDict[int, ActiveStream] = OrderedDict()
        self._ids = itertools.count()

    def __len__(self) -> int:
        return len(self._streams)

    def __iter__(self) -> Iterator[ActiveStream]:
        return iter(self._streams.values())

    def get(self, stream_id: int) -> ActiveStream | None:
        return self._streams.get(stream_id)

    def allocate(self) -> tuple[ActiveStream, ActiveStream | None]:
        """Create a new MRU stream; returns (stream, replaced_victim)."""
        victim = None
        if len(self._streams) >= self.capacity:
            _, victim = self._streams.popitem(last=False)
            victim.dead = True
        stream = ActiveStream(stream_id=next(self._ids))
        self._streams[stream.stream_id] = stream
        return stream, victim

    def promote(self, stream_id: int) -> None:
        """Make ``stream_id`` the most-recently-used stream."""
        if stream_id in self._streams:
            self._streams.move_to_end(stream_id)

    def remove(self, stream_id: int) -> ActiveStream | None:
        stream = self._streams.pop(stream_id, None)
        if stream is not None:
            stream.dead = True
        return stream

    def clear(self) -> None:
        for stream in self._streams.values():
            stream.dead = True
        self._streams.clear()
