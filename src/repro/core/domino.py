"""The Domino temporal data prefetcher (the paper's contribution).

Domino logically looks up the miss history with *both* the last one and
the last two triggering events:

1. **Miss** — the missed address indexes the Enhanced Index Table.  The
   fetched super-entry's most-recent ``(address, pointer)`` entry names
   the most likely next miss, and Domino prefetches that address
   immediately — after a **single** off-chip round trip, where STMS
   needs two (Fig. 6).  The stream is left *pending*.
2. **Next triggering event** (miss or prefetch hit) — the event selects
   the pending super-entry's entry whose address field matches; that is
   the two-address lookup.  The entry's pointer locates the correct
   stream in the History Table, whose row is fetched and replayed.  If
   no entry matches, the pending stream is discarded.

Domino tracks four active streams (LRU; a miss replaces the LRU stream
and discards its buffered prefetches, a prefetch hit promotes and
advances its stream), samples metadata updates at 12.5 %, and uses the
same stream-end detection heuristic as STMS — all per Section IV-D.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..obs import DEBUG
from ..obs import names as obs_names
from ..obs import scope as obs_scope
from ..prefetchers.base import Candidate
from ..prefetchers.temporal_base import GlobalHistoryPrefetcher, _UNBOUNDED_CAPACITY
from .eit import EnhancedIndexTable

#: Telemetry scope for EIT lookup outcomes (off until obs.configure()).
_OBS = obs_scope("core.domino")


class DominoPrefetcher(GlobalHistoryPrefetcher):
    """Domino: combined one- and two-address temporal lookup via the EIT."""

    name = "domino"
    #: The EIT row itself carries the next-miss address, so the first
    #: prefetch of a stream needs only one serialised metadata access.
    first_prefetch_round_trips = 1

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 unbounded: bool = False, seed: int = 7) -> None:
        super().__init__(config, degree, unbounded=unbounded, seed=seed)
        self.eit = EnhancedIndexTable(
            rows=config.eit_rows,
            assoc=config.eit_assoc,
            entries_per_super=config.eit_entries_per_super,
            unbounded=unbounded,
        )
        #: Stream id awaiting its two-address confirmation event, if any.
        self._pending_sid: int | None = None

    # -- triggering events ------------------------------------------------
    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        # The miss is first used as the second address of the pending
        # stream's two-address lookup ...
        candidates = self._confirm_pending(block)
        # ... and then as the single-address lookup that opens a new one.
        self.metadata.index_reads += 1
        super_entry = self.eit.lookup(block)
        self._record(block)
        if _OBS.enabled:
            emit_debug = _OBS.enabled_for(DEBUG)
            if super_entry is None:
                _OBS.counter(obs_names.MET_EIT_ONE_ADDR_MISS).inc()
                if emit_debug:
                    _OBS.debug(obs_names.EVT_EIT_LOOKUP, mode="one_addr",
                               block=block, hit=False)
            else:
                _OBS.counter(obs_names.MET_EIT_ONE_ADDR_HIT).inc()
                if emit_debug:
                    _OBS.debug(obs_names.EVT_EIT_LOOKUP, mode="one_addr",
                               block=block, hit=True,
                               entries=len(super_entry))
        if super_entry is None:
            return candidates
        stream, victim = self.streams.allocate()
        if victim is not None:
            self._kill_stream(victim.stream_id)
        stream.pending_entries = super_entry.snapshot()
        most_recent = super_entry.most_recent()
        if most_recent is not None:
            candidates.append((most_recent[0], stream.stream_id))
            stream.issued += 1
        self._pending_sid = stream.stream_id
        return candidates

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        candidates = self._confirm_pending(block)
        self._record(block)
        stream = self.streams.get(stream_id)
        if stream is None or stream.dead:
            return candidates
        stream.useful += 1
        self.streams.promote(stream_id)
        if stream.pending:
            # Hit on a stream that is still awaiting confirmation by a
            # *different* pending event; nothing more to issue yet.
            return candidates
        if any(sid == stream_id for _, sid in candidates):
            # This very hit confirmed the stream; the confirmation already
            # issued a full degree of prefetches.
            return candidates
        return candidates + self._issue(stream, 1)

    # -- the two-address lookup ---------------------------------------------
    def _confirm_pending(self, event_block: int) -> list[Candidate]:
        """Resolve the stream pending from the previous triggering event."""
        sid, self._pending_sid = self._pending_sid, None
        if sid is None:
            return []
        stream = self.streams.get(sid)
        if stream is None or stream.dead or not stream.pending:
            return []
        entries = stream.pending_entries or []
        stream.pending_entries = None
        pointer = None
        for address, ptr in reversed(entries):  # most recent first
            if address == event_block:
                pointer = ptr
                break
        if _OBS.enabled:
            emit_debug = _OBS.enabled_for(DEBUG)
            if pointer is None:
                _OBS.counter(obs_names.MET_EIT_TWO_ADDR_DISCARD).inc()
                if emit_debug:
                    _OBS.debug(obs_names.EVT_EIT_LOOKUP, mode="two_addr",
                               block=event_block, matched=False, stream=sid)
            else:
                _OBS.counter(obs_names.MET_EIT_TWO_ADDR_MATCH).inc()
                if emit_debug:
                    _OBS.debug(obs_names.EVT_EIT_LOOKUP, mode="two_addr",
                               block=event_block, matched=True, stream=sid,
                               pointer=pointer)
        if pointer is None:
            # The two-address lookup failed: discard the stream state but
            # leave its speculative first prefetch in the buffer — under
            # interleaved request streams the confirmation event often
            # belongs to another context, and the speculative block may
            # well be consumed when this context resumes.  (The paper
            # discards buffer contents only on LRU stream *replacement*.)
            self.streams.remove(sid)
            return []
        # HT[pointer] is the tag, HT[pointer+1] the matched event; the
        # stream to replay starts right after the pair.
        self._fill_from_history(stream, pointer + 2)
        self.streams.promote(sid)
        return self._issue(stream, self.degree)

    # -- metadata recording --------------------------------------------------
    def _update_index(self, block: int, pos: int) -> None:
        """Sampled EIT update: the pair (previous event -> this event)."""
        if self._prev_event is None or self._prev_pos is None:
            return
        self.eit.update(self._prev_event, block, self._prev_pos)

    def _lookup(self, block: int) -> int | None:  # pragma: no cover
        raise NotImplementedError("Domino overrides on_miss directly")
