"""The Enhanced Index Table (EIT) — Figures 7 and 8 of the paper.

The EIT is what makes Domino practical.  Like the classic Index Table it
is indexed (hashed) by a *single* miss address, but where the classic IT
stores one pointer per address, an EIT row associates each resident tag
with a **super-entry**: up to three ``(address, pointer)`` *entries*,
meaning "the last occurrence of miss ``tag`` followed by ``address`` is
at History-Table position ``pointer``".

This one structure gives Domino both lookup modes:

* **single-address** — the most recent entry of the super-entry names
  the most likely next miss, so the first prefetch of a stream is issued
  after a *single* off-chip round trip (STMS needs two);
* **two-address** — when the following triggering event arrives, it
  selects the entry whose ``address`` field matches, and that entry's
  pointer locates the correct stream in the HT.

Both the super-entries within a row and the entries within a super-entry
are managed with LRU, as in the paper.  Rows are sized in super-entries
(``assoc``); the table is sized in rows.  An *unbounded* mode (every
address gets its own row, no evictions) supports the paper's
infinite-metadata comparisons.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..obs import DEBUG
from ..obs import names as obs_names
from ..obs import scope as obs_scope

#: Replacement telemetry (off until obs.configure()); lookup *outcomes*
#: are emitted by the callers that know the lookup mode (core.domino).
_OBS = obs_scope("core.eit")


@dataclass
class SuperEntry:
    """Tag plus its LRU-ordered (address -> HT pointer) entries.

    ``entries`` is ordered least- to most-recently-used, so
    ``next(reversed(entries))`` is the most recent next-address.
    """

    tag: int
    max_entries: int
    entries: "OrderedDict[int, int]" = field(default_factory=OrderedDict)

    def update(self, address: int, pointer: int) -> int | None:
        """Record that ``tag`` was followed by ``address`` at ``pointer``.

        Returns the evicted next-address when the LRU entry was displaced.
        """
        if address in self.entries:
            self.entries[address] = pointer
            self.entries.move_to_end(address)
            return None
        victim = None
        if len(self.entries) >= self.max_entries:
            victim, _ = self.entries.popitem(last=False)
        self.entries[address] = pointer
        return victim

    def most_recent(self) -> tuple[int, int] | None:
        """(address, pointer) of the most recently recorded entry."""
        if not self.entries:
            return None
        address = next(reversed(self.entries))
        return address, self.entries[address]

    def match(self, address: int) -> int | None:
        """Pointer of the entry whose next-address equals ``address``
        (the two-address lookup); promotes the entry to MRU."""
        pointer = self.entries.get(address)
        if pointer is not None:
            self.entries.move_to_end(address)
        return pointer

    def snapshot(self) -> list[tuple[int, int]]:
        """Entries as (address, pointer) pairs, LRU -> MRU order."""
        return list(self.entries.items())

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class EitStats:
    lookups: int = 0
    super_entry_hits: int = 0
    super_entry_evictions: int = 0
    entry_evictions: int = 0
    updates: int = 0


class EnhancedIndexTable:
    """Hash-indexed table of rows, each holding LRU super-entries."""

    def __init__(self, rows: int, assoc: int = 4, entries_per_super: int = 3,
                 unbounded: bool = False) -> None:
        if rows <= 0 or assoc <= 0 or entries_per_super <= 0:
            raise ValueError("EIT geometry values must be positive")
        self.rows = rows
        self.assoc = assoc
        self.entries_per_super = entries_per_super
        self.unbounded = unbounded
        self._table: dict[int, OrderedDict[int, SuperEntry]] = {}
        self.stats = EitStats()

    def _row_index(self, tag: int) -> int:
        if self.unbounded:
            return tag
        # Multiplicative hashing spreads sequential tags across rows.
        return (tag * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF) % self.rows

    def lookup(self, tag: int) -> SuperEntry | None:
        """Fetch the super-entry for ``tag`` (one row read), promoting it."""
        self.stats.lookups += 1
        row = self._table.get(self._row_index(tag))
        if row is None:
            return None
        super_entry = row.get(tag)
        if super_entry is None:
            return None
        row.move_to_end(tag)
        self.stats.super_entry_hits += 1
        return super_entry

    def update(self, tag: int, address: int, pointer: int) -> None:
        """Record that ``tag`` was followed by ``address`` at HT position
        ``pointer`` (the sampled metadata update path)."""
        self.stats.updates += 1
        row_idx = self._row_index(tag)
        row = self._table.get(row_idx)
        if row is None:
            row = OrderedDict()
            self._table[row_idx] = row
        super_entry = row.get(tag)
        if super_entry is None:
            if not self.unbounded and len(row) >= self.assoc:
                victim_tag, _ = row.popitem(last=False)
                self.stats.super_entry_evictions += 1
                if _OBS.enabled:
                    _OBS.counter(obs_names.MET_SUPER_ENTRY_EVICTIONS).inc()
                    if _OBS.enabled_for(DEBUG):
                        _OBS.debug(obs_names.EVT_REPLACEMENT, kind="super_entry",
                                   tag=tag, victim=victim_tag, row=row_idx)
            super_entry = SuperEntry(tag=tag, max_entries=self.entries_per_super)
            row[tag] = super_entry
        else:
            row.move_to_end(tag)
        if super_entry.update(address, pointer) is not None:
            self.stats.entry_evictions += 1
            if _OBS.enabled:
                _OBS.counter(obs_names.MET_ENTRY_EVICTIONS).inc()
                if _OBS.enabled_for(DEBUG):
                    _OBS.debug(obs_names.EVT_REPLACEMENT, kind="entry", tag=tag,
                               address=address)

    def resident_tags(self) -> int:
        """Total super-entries resident (test/diagnostic helper)."""
        return sum(len(row) for row in self._table.values())
