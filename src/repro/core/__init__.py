"""The paper's contribution: the Domino prefetcher and its structures.

* :mod:`repro.core.history` — the off-chip circular History Table (HT)
  shared by all global-miss-sequence temporal prefetchers.
* :mod:`repro.core.stream` — active-stream bookkeeping (the per-core
  Prefetch Buffer / PointBuf state machine, four streams, LRU).
* :mod:`repro.core.eit` — the Enhanced Index Table (Figs. 7/8).
* :mod:`repro.core.domino` — the Domino prefetcher itself.
"""

from .domino import DominoPrefetcher
from .eit import EnhancedIndexTable, SuperEntry
from .history import HistoryTable
from .stream import ActiveStream, StreamTable

__all__ = [
    "ActiveStream",
    "DominoPrefetcher",
    "EnhancedIndexTable",
    "HistoryTable",
    "StreamTable",
    "SuperEntry",
]
