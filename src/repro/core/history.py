"""The off-chip History Table (HT).

A per-core circular buffer of triggering-event addresses, stored in main
memory in rows of one cache block (12 addresses per row in the paper's
configuration).  Positions are *global monotonic* sequence numbers; a
position falls off the table once it is more than ``capacity`` events in
the past, which models the circular overwrite.

Reads are row-granular: fetching the successors of position ``p`` pulls
whole rows, and the caller is told how many row fetches (off-chip block
transfers) were needed so metadata traffic can be charged faithfully.
"""

from __future__ import annotations

from collections import deque


class HistoryTable:
    """Circular buffer of miss addresses with row-granular reads."""

    def __init__(self, capacity: int, row_entries: int = 12) -> None:
        if capacity <= 0 or row_entries <= 0:
            raise ValueError("capacity and row_entries must be positive")
        self.capacity = capacity
        self.row_entries = row_entries
        self._buf: deque[int] = deque(maxlen=capacity)
        self._next_pos = 0  # global position of the next append

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def next_position(self) -> int:
        """Global position the next appended event will occupy."""
        return self._next_pos

    @property
    def oldest_position(self) -> int:
        """Oldest global position still resident."""
        return self._next_pos - len(self._buf)

    def append(self, address: int) -> int:
        """Record a triggering event; returns its global position."""
        pos = self._next_pos
        self._buf.append(address)
        self._next_pos += 1
        return pos

    def contains_position(self, pos: int) -> bool:
        """Is global position ``pos`` still resident (not overwritten)?"""
        return self.oldest_position <= pos < self._next_pos

    def read_at(self, pos: int) -> int | None:
        """Address recorded at global position ``pos``, if resident."""
        if not self.contains_position(pos):
            return None
        return self._buf[pos - self.oldest_position]

    def read_forward(self, pos: int, count: int) -> tuple[list[int], int]:
        """Addresses at positions [pos, pos+count), clipped to residency.

        Returns ``(addresses, row_fetches)`` where ``row_fetches`` is the
        number of distinct HT rows (cache blocks) the range spans — the
        off-chip cost of the read.
        """
        if count <= 0:
            return [], 0
        start = max(pos, self.oldest_position)
        stop = min(pos + count, self._next_pos)
        if stop <= start:
            return [], 0
        base = self.oldest_position
        addresses = [self._buf[i - base] for i in range(start, stop)]
        first_row = start // self.row_entries
        last_row = (stop - 1) // self.row_entries
        return addresses, last_row - first_row + 1

    def successors(self, pos: int, count: int) -> tuple[list[int], int]:
        """Addresses *following* position ``pos`` (the replay stream)."""
        return self.read_forward(pos + 1, count)

    def row_of(self, pos: int) -> int:
        """Row number (HT block index) containing global position ``pos``."""
        return pos // self.row_entries
