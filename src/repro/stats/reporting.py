"""Exporters and ASCII charts for experiment results.

Turns an :class:`~repro.experiments.common.ExperimentResult` into
portable artefacts without plotting dependencies:

* :func:`to_markdown` — a GitHub-flavoured markdown table;
* :func:`to_csv` — CSV text (``csv`` module quoting rules);
* :func:`bar_chart` — a horizontal ASCII bar chart of one numeric
  column, handy for eyeballing a figure's shape in a terminal;
* :func:`render_manifest` — the one-line cache/parallelism summary of
  a :class:`~repro.runner.manifest.RunManifest`.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence

#: Block-element eighths for sub-character bar resolution.
_EIGHTHS = " ▏▎▍▌▋▊▉█"


def to_markdown(headers: Sequence[str], rows: Sequence[Sequence[object]],
                title: str | None = None) -> str:
    """Render rows as a markdown table."""
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value).replace("|", "\\|")

    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        lines.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(lines)


def to_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render rows as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        writer.writerow(row)
    return buffer.getvalue()


def render_manifest(manifest) -> str:
    """One-line summary of a cell-runner manifest.

    Example::

        [runner] 37 cells: 30 cache hits, 7 executed | jobs=4 (pool) | wall 2.1s, compute 7.8s
    """
    if manifest.cache_enabled:
        cache_part = f"{manifest.hits} cache hits, {manifest.misses} executed"
    else:
        cache_part = f"{manifest.misses} executed, cache off"
    fault_part = ""
    retried = getattr(manifest, "retried", 0)
    failed = getattr(manifest, "failed", 0)
    if retried or failed:
        fault_part = f" | {retried} retried, {failed} FAILED"
    return (f"[runner] {manifest.n_cells} cells: {cache_part}{fault_part}"
            f" | jobs={manifest.jobs} ({manifest.mode})"
            f" | wall {manifest.wall_s:.1f}s, compute {manifest.executed_s:.1f}s")


def bar_chart(labels: Sequence[str], values: Sequence[float],
              width: int = 40, title: str | None = None,
              fmt: str = "{:.3f}") -> str:
    """Horizontal ASCII bar chart.

    Bars are scaled to the maximum value; sub-character resolution uses
    Unicode eighth-blocks so small differences stay visible.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if width <= 0:
        raise ValueError("width must be positive")
    if not labels:
        return title or ""
    peak = max(max(values), 1e-12)
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values, strict=True):
        if value < 0:
            raise ValueError("bar_chart requires non-negative values")
        scaled = value / peak * width
        full, frac = int(scaled), scaled - int(scaled)
        bar = "█" * full + (_EIGHTHS[round(frac * 8)] if full < width else "")
        lines.append(f"{str(label).ljust(label_width)} |{bar.ljust(width)}| "
                     + fmt.format(value))
    return "\n".join(lines)
