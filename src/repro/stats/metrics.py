"""Coverage / overprediction / accuracy metrics.

Definitions follow Section V-B of the paper:

* **covered misses** — baseline misses successfully eliminated by the
  prefetcher, i.e. demand accesses served by the prefetch buffer;
* **overpredictions** — incorrectly prefetched blocks (inserted into
  the prefetch buffer and never consumed before leaving it), normalised
  against the number of cache misses in the baseline system;
* **triggering events** — misses + prefetch hits; with the small state
  perturbation of the prefetch buffer this equals the baseline miss
  count, so it serves as the normalisation denominator.
"""

from __future__ import annotations

from dataclasses import dataclass


def safe_div(numerator: float, denominator: float) -> float:
    """``numerator / denominator``, or 0.0 when the denominator is zero.

    The one sanctioned way to compute a ratio metric in this repo: a
    run with no triggering events, no issued prefetches, or no baseline
    misses reports 0.0 for every derived ratio instead of raising
    ``ZeroDivisionError`` mid-sweep.
    """
    return numerator / denominator if denominator else 0.0


@dataclass
class CoverageMetrics:
    """Counters from one trace-driven run."""

    accesses: int = 0
    l1_hits: int = 0
    misses: int = 0            # uncovered (demand went off-core)
    prefetch_hits: int = 0     # covered
    prefetches_issued: int = 0
    overpredictions: int = 0   # prefetched blocks never consumed

    @property
    def triggering_events(self) -> int:
        """Misses plus prefetch hits (the baseline-miss proxy)."""
        return self.misses + self.prefetch_hits

    @property
    def coverage(self) -> float:
        """Fraction of would-be misses eliminated (0..1)."""
        return safe_div(self.prefetch_hits, self.triggering_events)

    @property
    def overprediction_ratio(self) -> float:
        """Useless prefetches normalised to baseline misses (may exceed 1)."""
        return safe_div(self.overpredictions, self.triggering_events)

    @property
    def accuracy(self) -> float:
        """Useful fraction of issued prefetches."""
        return safe_div(self.prefetch_hits, self.prefetches_issued)

    @property
    def miss_rate_reduction(self) -> float:
        """Alias of coverage, for readers thinking in miss-rate terms."""
        return self.coverage

    def merge(self, other: "CoverageMetrics") -> None:
        self.accesses += other.accesses
        self.l1_hits += other.l1_hits
        self.misses += other.misses
        self.prefetch_hits += other.prefetch_hits
        self.prefetches_issued += other.prefetches_issued
        self.overpredictions += other.overpredictions
