"""Off-chip bandwidth decomposition (Fig. 15).

Fig. 15 stacks, per prefetcher, the off-chip traffic *overhead* over the
no-prefetcher baseline, split into incorrect prefetches, metadata
updates, and metadata reads — all normalised to the baseline's demand
traffic (one block per baseline miss).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..memory.metadata import MetadataTraffic
from .metrics import safe_div


@dataclass
class BandwidthBreakdown:
    """Traffic overhead of one prefetcher run, in blocks."""

    baseline_blocks: int
    incorrect_prefetch_blocks: int
    metadata_read_blocks: int
    metadata_write_blocks: int

    @classmethod
    def from_run(cls, baseline_misses: int, overpredictions: int,
                 metadata: MetadataTraffic) -> "BandwidthBreakdown":
        return cls(
            baseline_blocks=baseline_misses,
            incorrect_prefetch_blocks=overpredictions,
            metadata_read_blocks=metadata.reads,
            metadata_write_blocks=metadata.writes,
        )

    def _ratio(self, blocks: int) -> float:
        return safe_div(blocks, self.baseline_blocks)

    @property
    def incorrect_prefetch_overhead(self) -> float:
        """Incorrect-prefetch traffic / baseline demand traffic."""
        return self._ratio(self.incorrect_prefetch_blocks)

    @property
    def metadata_read_overhead(self) -> float:
        return self._ratio(self.metadata_read_blocks)

    @property
    def metadata_write_overhead(self) -> float:
        return self._ratio(self.metadata_write_blocks)

    @property
    def total_overhead(self) -> float:
        """The full Fig. 15 stack height."""
        return (self.incorrect_prefetch_overhead
                + self.metadata_read_overhead
                + self.metadata_write_overhead)
