"""Temporal-stream length statistics (Figs. 2 and 12).

The paper defines a *stream* (for measurement purposes) as "the sequence
of consecutive correct prefetches".  The engine records, per active
stream the prefetcher allocated, how many of its prefetches were
consumed; this module summarises those counts and produces the
power-of-two-binned cumulative histogram of Fig. 12.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .metrics import safe_div

#: Fig. 12's bin edges ("0 2 4 8 16 32 64 128 128+").
DEFAULT_BINS = (0, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class StreamLengthStats:
    """Distribution of per-stream useful-prefetch run lengths."""

    lengths: list[int] = field(default_factory=list)

    def add(self, length: int) -> None:
        if length < 0:
            raise ValueError("stream length cannot be negative")
        self.lengths.append(length)

    @property
    def productive(self) -> list[int]:
        """Streams that produced at least one correct prefetch."""
        return [n for n in self.lengths if n > 0]

    @property
    def count(self) -> int:
        return len(self.lengths)

    @property
    def mean_length(self) -> float:
        """Mean length over productive streams (the Fig. 2 metric)."""
        productive = self.productive
        return safe_div(sum(productive), len(productive))

    @property
    def mean_length_all(self) -> float:
        """Mean over every allocated stream, zero-length ones included."""
        return safe_div(sum(self.lengths), len(self.lengths))

    def histogram(self, bins: tuple[int, ...] = DEFAULT_BINS) -> dict[str, int]:
        """Counts per bin; the final bin is open ('128+')."""
        labels = [f"<={b}" for b in bins] + [f"{bins[-1]}+"]
        counts = Counter()
        for label in labels:
            counts[label] = 0
        for length in self.lengths:
            for b in bins:
                if length <= b:
                    counts[f"<={b}"] += 1
                    break
            else:
                counts[f"{bins[-1]}+"] += 1
        return dict(counts)


def histogram_bins(lengths: list[int],
                   bins: tuple[int, ...] = DEFAULT_BINS) -> dict[str, int]:
    """Module-level convenience around :meth:`StreamLengthStats.histogram`."""
    stats = StreamLengthStats(list(lengths))
    return stats.histogram(bins)


def length_cdf(lengths: list[int],
               bins: tuple[int, ...] = DEFAULT_BINS) -> dict[str, float]:
    """Cumulative fraction of streams with length <= each bin (Fig. 12)."""
    if not lengths:
        return {f"<={b}": 0.0 for b in bins} | {f"{bins[-1]}+": 0.0}
    total = len(lengths)
    out: dict[str, float] = {}
    running = 0
    hist = histogram_bins(lengths, bins)
    for b in bins:
        running += hist[f"<={b}"]
        out[f"<={b}"] = running / total
    out[f"{bins[-1]}+"] = 1.0
    return out
