"""Metrics, stream statistics, bandwidth decomposition, table rendering."""

from .metrics import CoverageMetrics, safe_div
from .streamstats import StreamLengthStats, histogram_bins, length_cdf
from .bandwidth import BandwidthBreakdown
from .reporting import bar_chart, to_csv, to_markdown
from .tables import format_table, format_percent

__all__ = [
    "BandwidthBreakdown",
    "bar_chart",
    "to_csv",
    "to_markdown",
    "CoverageMetrics",
    "StreamLengthStats",
    "format_percent",
    "format_table",
    "histogram_bins",
    "length_cdf",
    "safe_div",
]
