"""ASCII table rendering for experiment output.

Every experiment prints its figure/table as rows of labelled values;
these helpers keep the formatting consistent (and the benchmark output
legible) without pulling in a dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_percent(value: float, digits: int = 1) -> str:
    """0.163 -> '16.3%'."""
    return f"{value * 100:.{digits}f}%"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Render a fixed-width table.

    Floats are shown with three decimals; everything else via ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(values: Sequence[str]) -> str:
        return "  ".join(v.ljust(widths[i]) for i, v in enumerate(values)).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in str_rows)
    return "\n".join(parts)
