"""Cooperative cancellation: tokens, deadlines, and live progress.

A :class:`CancelToken` is the thread-safe conduit between the layer
that *decides* a job must stop (the serve tier's cancel frame, a
per-job deadline, a quota watchdog, a server shutdown) and the layer
that is *doing the work* (the simulation engine's hot loop, possibly
several frames of ``run_cells`` deep and running inside
``asyncio.to_thread``).  Cancellation is cooperative with **bounded
staleness**: the engine checks the token every
:data:`DEFAULT_CHECK_EVERY` simulated accesses (one integer compare
per access, so uncancelled runs stay bit-identical and effectively
free), which bounds both how long a cancel takes to land and how much
speculative work a misbehaving tenant can bill after being cut off.

The same token carries **live progress**: the engine adds the number
of simulated accesses at every check point, and any other thread (the
serve watchdog, a ``status`` poll) may read :attr:`CancelToken.progress`
concurrently — the engine thread is the only writer, so a plain int is
safe under the GIL.  Progress is what the serve tier meters quotas
against, which is why it counts *simulated accesses* (work done), not
wall-clock or cells.

Deadlines live on the token too: a token built with ``deadline_s``
auto-cancels itself (reason :data:`REASON_DEADLINE`) the first time
anyone observes it past the deadline, so every checkpoint in the
engine doubles as a deadline check and no watchdog precision is
needed for enforcement — the watchdog only needs to exist for work
that never reaches a checkpoint.

Tokens travel by *thread-local* scope, not by argument threading: the
runner wraps each in-thread cell execution in :func:`cancel_scope`,
and the engine asks :func:`current_token` once per run.  Pool workers
never see the token (it is not picklable); the pool scheduler polls it
between collections instead and tears the pool down on cancellation.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from .errors import ConfigError, JobCancelled

__all__ = [
    "CancelToken",
    "DEFAULT_CHECK_EVERY",
    "REASON_DEADLINE",
    "cancel_scope",
    "current_token",
]

#: How many simulated accesses may elapse between two cancellation
#: checks in the engine's hot loop — the staleness bound.  Small enough
#: that a cancel lands within microseconds of simulated work, large
#: enough that the check amortises to nothing.
DEFAULT_CHECK_EVERY = 4096

#: Reason recorded when a token cancels itself past its deadline.
REASON_DEADLINE = "deadline_exceeded"

#: Sentinel "next check" index that no trace can ever reach; lets the
#: hot loop use one unconditional ``i >= next_check`` compare whether
#: or not a token is present.
NEVER = 1 << 62


class CancelToken:
    """One job's cancellation flag, deadline, and progress counter.

    ``cancel()`` is first-wins and idempotent: the first recorded
    reason sticks.  ``cancelled`` never blocks and may be read from any
    thread; ``checkpoint()`` is the engine-side primitive that both
    publishes progress and raises :class:`~repro.errors.JobCancelled`
    when the flag (or the deadline) has been set.
    """

    __slots__ = ("_event", "_lock", "_reason", "_clock", "deadline_at",
                 "check_every", "progress", "cancelled_at")

    def __init__(self, deadline_s: float | None = None,
                 check_every: int = DEFAULT_CHECK_EVERY,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if check_every < 1:
            raise ConfigError("check_every must be >= 1")
        if deadline_s is not None and deadline_s <= 0:
            raise ConfigError("deadline_s must be positive (or None)")
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason = ""
        self._clock = clock
        self.deadline_at = clock() + deadline_s if deadline_s is not None else None
        self.check_every = check_every
        #: Simulated accesses completed so far (engine thread writes,
        #: any thread reads).
        self.progress = 0
        #: Clock reading of the first cancel() call (0.0 = never);
        #: cancel latency = stop time - cancelled_at.
        self.cancelled_at = 0.0

    # -- deciding side ---------------------------------------------------
    def cancel(self, reason: str) -> bool:
        """Request cancellation; True if this call won the race."""
        with self._lock:
            if self._event.is_set():
                return False
            self._reason = reason or "cancelled"
            self.cancelled_at = self._clock()
            self._event.set()
            return True

    # -- observing side --------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """Whether the job must stop (explicit cancel or past deadline)."""
        if self._event.is_set():
            return True
        if self.deadline_at is not None and self._clock() > self.deadline_at:
            self.cancel(REASON_DEADLINE)
            return True
        return False

    @property
    def reason(self) -> str:
        return self._reason

    def raise_if_cancelled(self) -> None:
        if self.cancelled:
            raise JobCancelled(
                f"job cancelled ({self._reason}) after "
                f"{self.progress} simulated accesses",
                reason=self._reason, progress=self.progress)

    # -- working side ----------------------------------------------------
    def advance(self, n: int) -> None:
        """Publish ``n`` more simulated accesses of completed work."""
        if n > 0:
            self.progress += n

    def checkpoint(self, n: int) -> None:
        """One bounded-staleness check: publish progress, then bail if
        cancellation (or the deadline) has been requested."""
        self.advance(n)
        self.raise_if_cancelled()

    def wait(self, timeout: float) -> bool:
        """Sleep up to ``timeout`` seconds, waking early on cancel (or
        at the deadline); returns :attr:`cancelled`.  The runner uses
        this for retry backoff so a cancelled job never sits out a
        backoff window."""
        if self.deadline_at is not None:
            timeout = min(timeout, max(0.0, self.deadline_at - self._clock()))
        self._event.wait(timeout)
        return self.cancelled


#: The thread's active token (set by :func:`cancel_scope`).
_SCOPE = threading.local()


def current_token() -> CancelToken | None:
    """The :class:`CancelToken` governing this thread, if any."""
    return getattr(_SCOPE, "token", None)


@contextmanager
def cancel_scope(token: CancelToken | None) -> Iterator[CancelToken | None]:
    """Install ``token`` as this thread's current token.

    ``cancel_scope(None)`` is a true no-op (it does not mask an outer
    scope), so callers can pass their optional token through without
    branching.
    """
    if token is None:
        yield None
        return
    previous = current_token()
    _SCOPE.token = token
    try:
        yield token
    finally:
        _SCOPE.token = previous
