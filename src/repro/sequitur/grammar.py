"""The Sequitur algorithm (Nevill-Manning & Witten, JAIR 1997).

Sequitur infers a context-free grammar from a sequence in linear time by
maintaining two invariants while appending symbols:

* **digram uniqueness** — no pair of adjacent symbols occurs more than
  once in the grammar; a repeated digram is replaced by (or becomes) a
  rule;
* **rule utility** — every rule other than the root is referenced at
  least twice; a rule whose reference count drops to one is inlined.

The implementation follows the canonical reference structure: symbols
are doubly-linked nodes, each rule's body is a circular list around a
guard node, and a digram index maps ``(value, value)`` keys to the left
symbol of the digram's unique occurrence.

Terminals here are plain ints (block addresses).  Nonterminal symbol
values are :class:`Rule` objects.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterator

from ..errors import GrammarError


class Rule:
    """A grammar rule; its body hangs off a circular guard node."""

    __slots__ = ("id", "refcount", "guard")

    def __init__(self, rule_id: int) -> None:
        self.id = rule_id
        self.refcount = 0
        self.guard = Symbol(self, is_guard=True)
        self.guard.next = self.guard
        self.guard.prev = self.guard

    def first(self) -> "Symbol":
        return self.guard.next

    def last(self) -> "Symbol":
        return self.guard.prev

    def symbols(self) -> Iterator["Symbol"]:
        """Iterate the rule body left to right."""
        node = self.first()
        while not node.is_guard:
            yield node
            node = node.next

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        body = " ".join(str(s.key()) for s in self.symbols())
        return f"R{self.id} -> {body}"


class Symbol:
    """A node in a rule body: terminal int or reference to a Rule."""

    __slots__ = ("value", "next", "prev", "is_guard")

    def __init__(self, value: int | Rule, is_guard: bool = False) -> None:
        self.value = value
        self.next: "Symbol" = None  # type: ignore[assignment]
        self.prev: "Symbol" = None  # type: ignore[assignment]
        self.is_guard = is_guard

    @property
    def is_nonterminal(self) -> bool:
        return not self.is_guard and isinstance(self.value, Rule)

    def rule(self) -> Rule:
        if not self.is_nonterminal:
            raise GrammarError("not a nonterminal symbol")
        return self.value  # type: ignore[return-value]

    def key(self):
        """Hashable identity of the symbol's value."""
        if isinstance(self.value, Rule):
            return ("R", self.value.id)
        return ("t", self.value)

    def digram_key(self):
        return (self.key(), self.next.key())


class Grammar:
    """Sequitur grammar builder; feed symbols with :meth:`append`."""

    def __init__(self) -> None:
        self._rule_ids = itertools.count()
        self.root = Rule(next(self._rule_ids))
        self._digrams: dict[tuple, Symbol] = {}
        self._length = 0

    # -- public API -----------------------------------------------------
    def append(self, terminal: int) -> None:
        """Append one terminal to the sequence."""
        symbol = Symbol(terminal)
        self._insert_after(self.root.last(), symbol)
        self._length += 1
        if symbol.prev is not self.root.guard:
            self._check(symbol.prev)

    def extend(self, terminals) -> None:
        for t in terminals:
            self.append(t)

    def __len__(self) -> int:
        """Number of terminals consumed."""
        return self._length

    def rules(self) -> list[Rule]:
        """All live rules, root first (reachability walk)."""
        seen: dict[int, Rule] = {self.root.id: self.root}
        order = [self.root]
        frontier = [self.root]
        while frontier:
            rule = frontier.pop()
            for sym in rule.symbols():
                if sym.is_nonterminal:
                    sub = sym.rule()
                    if sub.id not in seen:
                        seen[sub.id] = sub
                        order.append(sub)
                        frontier.append(sub)
        return order

    def expand(self) -> list[int]:
        """Reconstruct the original sequence (for verification)."""
        memo: dict[int, list[int]] = {}

        def expansion(rule: Rule) -> list[int]:
            cached = memo.get(rule.id)
            if cached is not None:
                return cached
            out: list[int] = []
            for sym in rule.symbols():
                if sym.is_nonterminal:
                    out.extend(expansion(sym.rule()))
                else:
                    out.append(sym.value)  # type: ignore[arg-type]
            memo[rule.id] = out
            return out

        return expansion(self.root)

    def grammar_size(self) -> int:
        """Total symbols across all rule bodies (compressed size)."""
        return sum(1 for rule in self.rules() for _ in rule.symbols())

    # -- linking -------------------------------------------------------------
    def _join(self, left: Symbol, right: Symbol) -> None:
        """Link two symbols, maintaining the digram index."""
        if left.next is not None:
            self._delete_digram(left)
            # Triple-repetition fix (canonical implementation): relinking
            # around e.g. "aaa" must restore index entries for the
            # overlapping digrams that deleteDigram just dropped.
            if (right.prev is not None and right.next is not None
                    and not right.is_guard and not right.prev.is_guard
                    and not right.next.is_guard
                    and right.key() == right.prev.key()
                    and right.key() == right.next.key()):
                self._digrams[right.digram_key()] = right
            if (left.prev is not None and left.next is not None
                    and not left.is_guard and not left.prev.is_guard
                    and not left.next.is_guard
                    and left.key() == left.next.key()
                    and left.key() == left.prev.key()):
                self._digrams[left.prev.digram_key()] = left.prev
        left.next = right
        right.prev = left

    def _insert_after(self, node: Symbol, to_insert: Symbol) -> None:
        if to_insert.is_nonterminal:
            to_insert.rule().refcount += 1
        self._join(to_insert, node.next)
        self._join(node, to_insert)

    def _delete_digram(self, left: Symbol) -> None:
        """Drop the index entry for the digram starting at ``left`` if it
        is the registered occurrence."""
        if left.is_guard or left.next is None or left.next.is_guard:
            return
        key = left.digram_key()
        if self._digrams.get(key) is left:
            del self._digrams[key]

    def _unlink(self, symbol: Symbol) -> None:
        """Remove ``symbol`` from its list, fixing digrams and refcounts."""
        if symbol.is_nonterminal:
            symbol.rule().refcount -= 1
        self._join(symbol.prev, symbol.next)
        self._delete_digram(symbol)

    # -- the two invariants ---------------------------------------------
    def _check(self, left: Symbol) -> bool:
        """Enforce digram uniqueness for the digram starting at ``left``."""
        if left.is_guard or left.next.is_guard:
            return False
        key = left.digram_key()
        found = self._digrams.get(key)
        if found is None:
            self._digrams[key] = left
            return False
        if found.next is not left:  # non-overlapping occurrence
            self._match(left, found)
        return True

    def _match(self, new: Symbol, matching: Symbol) -> None:
        """A digram occurred twice: reuse or create a rule."""
        if matching.prev.is_guard and matching.next.next.is_guard:
            # The existing occurrence is exactly a rule body: reuse it.
            rule = matching.prev.value
            if not isinstance(rule, Rule):
                raise GrammarError("guard does not reference its rule")
            self._substitute(new, rule)
        else:
            rule = Rule(next(self._rule_ids))
            # Build the rule body from copies of the matched digram.
            self._insert_after(rule.last(), self._copy(matching))
            self._insert_after(rule.last(), self._copy(matching.next))
            self._substitute(matching, rule)
            self._substitute(new, rule)
            self._digrams[rule.first().digram_key()] = rule.first()
        # Rule utility: inline a rule left with a single use.
        first = rule.first()
        if first.is_nonterminal and first.rule().refcount == 1:
            self._expand(first)

    @staticmethod
    def _copy(symbol: Symbol) -> Symbol:
        return Symbol(symbol.value)

    def _substitute(self, left: Symbol, rule: Rule) -> None:
        """Replace the digram starting at ``left`` with a use of ``rule``."""
        anchor = left.prev
        right = left.next
        self._unlink(left)
        self._unlink(right)
        self._insert_after(anchor, Symbol(rule))
        if not self._check(anchor):
            self._check(anchor.next)

    def _expand(self, nonterminal: Symbol) -> None:
        """Inline the body of a once-used rule at its only use site."""
        rule = nonterminal.rule()
        anchor = nonterminal.prev
        follower = nonterminal.next
        self._unlink(nonterminal)
        first, last = rule.first(), rule.last()
        if first.is_guard:
            return  # empty rule body (cannot normally happen)
        # Splice the body between anchor and follower.
        self._join(anchor, first)
        self._join(last, follower)
        if not follower.is_guard:
            self._digrams[last.digram_key()] = last

    # -- invariant inspection (used by tests) -------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`GrammarError` if a Sequitur invariant is broken."""
        seen_digrams: dict[tuple, tuple[int, int]] = {}
        for rule in self.rules():
            symbols = list(rule.symbols())
            for i in range(len(symbols) - 1):
                key = (symbols[i].key(), symbols[i + 1].key())
                where = (rule.id, i)
                if key in seen_digrams and key[0] != key[1]:
                    raise GrammarError(
                        f"digram {key} occurs at {seen_digrams[key]} and {where}")
                seen_digrams.setdefault(key, where)
            if rule is not self.root:
                if rule.refcount < 2:
                    raise GrammarError(
                        f"rule R{rule.id} has refcount {rule.refcount} < 2")
                if len(symbols) < 2:
                    raise GrammarError(f"rule R{rule.id} has a short body")
