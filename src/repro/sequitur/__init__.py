"""Sequitur hierarchical grammar inference and temporal-opportunity analysis.

The paper (following Chilimbi and Wenisch) measures the *opportunity* of
temporal prefetching by running the Sequitur linear-time grammar
inference algorithm over the miss sequence: repetition absorbed into
grammar rules is repetition a perfect temporal prefetcher could exploit.

* :mod:`repro.sequitur.grammar` — the Sequitur algorithm itself
  (digram uniqueness + rule utility invariants).
* :mod:`repro.sequitur.analysis` — stream decomposition, opportunity
  coverage, and stream-length statistics (Figs. 1, 2, 12).
* :mod:`repro.sequitur.oracle` — an online longest-match oracle
  predictor used to cross-check the grammar-based opportunity.
"""

from .grammar import Grammar, Rule, Symbol
from .analysis import SequiturAnalysis, analyze_sequence
from .oracle import OracleResult, oracle_replay

__all__ = [
    "Grammar",
    "OracleResult",
    "Rule",
    "SequiturAnalysis",
    "Symbol",
    "analyze_sequence",
    "oracle_replay",
]
