"""Temporal-prefetching opportunity analysis over a Sequitur grammar.

Following the measurement methodology of Chilimbi and Wenisch that the
paper adopts, the miss sequence is compressed with Sequitur and the
resulting rule structure is read as a decomposition of the sequence
into *temporal streams*:

* walking the root rule left to right, a nonterminal whose rule has
  been seen before expands to a chunk that is a *repeat* of earlier
  misses — a stream a perfect temporal prefetcher could have replayed
  (all of its misses are *covered* opportunity);
* the first occurrence of a rule is walked recursively (its sub-rules
  may themselves be repeats);
* terminals reached this way are singleton, uncovered misses.

``opportunity`` (Fig. 1's rightmost bars), ``mean_stream_length``
(Fig. 2's Sequitur bars) and the stream-length histogram (Fig. 12) all
fall out of this decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import GrammarError
from ..stats.metrics import safe_div
from ..stats.streamstats import StreamLengthStats
from .grammar import Grammar, Rule


@dataclass
class SequiturAnalysis:
    """Results of one opportunity analysis."""

    total_misses: int
    covered_misses: int
    stream_lengths: StreamLengthStats = field(default_factory=StreamLengthStats)
    grammar_size: int = 0
    n_rules: int = 0

    @property
    def opportunity(self) -> float:
        """Fraction of misses a perfect temporal prefetcher could cover."""
        return safe_div(self.covered_misses, self.total_misses)

    @property
    def mean_stream_length(self) -> float:
        """Mean length of the repeated (covered) streams."""
        return self.stream_lengths.mean_length

    @property
    def compression_ratio(self) -> float:
        """Input symbols per grammar symbol (repetitiveness proxy)."""
        return safe_div(self.total_misses, self.grammar_size)


def _expansion_lengths(grammar: Grammar) -> dict[int, int]:
    """Terminal-expansion length of every rule (iterative post-order)."""
    lengths: dict[int, int] = {}
    rules = grammar.rules()
    # Iterate until fixpoint; rule graphs are DAGs so two passes in
    # reverse topological order would do, but sizes are small enough for
    # a simple worklist.
    pending = rules[:]
    while pending:
        progressed = False
        still_pending: list[Rule] = []
        for rule in pending:
            total = 0
            ready = True
            for sym in rule.symbols():
                if sym.is_nonterminal:
                    sub_len = lengths.get(sym.rule().id)
                    if sub_len is None:
                        ready = False
                        break
                    total += sub_len
                else:
                    total += 1
            if ready:
                lengths[rule.id] = total
                progressed = True
            else:
                still_pending.append(rule)
        if not progressed and still_pending:
            raise GrammarError("cycle detected in Sequitur rule graph")
        pending = still_pending
    return lengths


def analyze_grammar(grammar: Grammar) -> SequiturAnalysis:
    """Stream decomposition of an already-built grammar."""
    lengths = _expansion_lengths(grammar)
    seen: set[int] = set()
    covered = 0
    total = 0
    streams = StreamLengthStats()

    # Iterative first-occurrence walk of the root rule.
    stack = [iter(list(grammar.root.symbols()))]
    while stack:
        try:
            sym = next(stack[-1])
        except StopIteration:
            stack.pop()
            continue
        if sym.is_nonterminal:
            rule = sym.rule()
            if rule.id in seen:
                chunk = lengths[rule.id]
                covered += chunk
                total += chunk
                streams.add(chunk)
            else:
                seen.add(rule.id)
                stack.append(iter(list(rule.symbols())))
        else:
            total += 1  # uncovered singleton miss

    return SequiturAnalysis(
        total_misses=total,
        covered_misses=covered,
        stream_lengths=streams,
        grammar_size=grammar.grammar_size(),
        n_rules=len(grammar.rules()),
    )


def analyze_sequence(sequence: list[int]) -> SequiturAnalysis:
    """Build the grammar over ``sequence`` and decompose it."""
    grammar = Grammar()
    grammar.extend(sequence)
    analysis = analyze_grammar(grammar)
    if analysis.total_misses != len(sequence):
        raise GrammarError("stream decomposition lost misses "
                           f"({analysis.total_misses} != {len(sequence)})")
    return analysis
