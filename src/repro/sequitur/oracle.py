"""Online longest-match oracle predictor.

A cross-check for the grammar-based opportunity: an idealised temporal
predictor with instant, unbounded metadata that, on every miss, either
continues its current replay cursor (a correct prediction — a covered
miss) or re-anchors at the most recent occurrence of the longest
matching suffix of recent events.  The paper describes Sequitur as the
oracle that "always picks the longest stream"; this is the online
equivalent, and its coverage should track the grammar decomposition's
opportunity closely (tests assert this).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..stats.streamstats import StreamLengthStats


@dataclass
class OracleResult:
    """Coverage and stream lengths of the oracle replay."""

    total_misses: int
    covered_misses: int
    stream_lengths: StreamLengthStats = field(default_factory=StreamLengthStats)

    @property
    def coverage(self) -> float:
        if not self.total_misses:
            return 0.0
        return self.covered_misses / self.total_misses

    @property
    def mean_stream_length(self) -> float:
        return self.stream_lengths.mean_length


def oracle_replay(sequence: list[int], max_context: int = 4) -> OracleResult:
    """Replay ``sequence`` with a longest-suffix-match oracle.

    ``max_context`` bounds the suffix length used for re-anchoring;
    beyond three addresses the paper's own Fig. 3 shows negligible
    benefit, so a small bound loses nothing while keeping the index
    linear in the input.
    """
    if max_context <= 0:
        raise ValueError("max_context must be positive")
    indexes: list[dict[tuple[int, ...], int]] = [{} for _ in range(max_context)]
    recent: deque[int] = deque(maxlen=max_context)
    covered = 0
    streak = 0
    cursor: int | None = None
    lengths = StreamLengthStats()

    for i, event in enumerate(sequence):
        if cursor is not None and cursor < i and sequence[cursor] == event:
            covered += 1
            streak += 1
            cursor += 1
        else:
            if streak:
                lengths.add(streak)
            streak = 0
            # Re-anchor on the longest suffix ending at this event.
            suffix = list(recent) + [event]
            cursor = None
            for length in range(min(max_context, len(suffix)), 0, -1):
                pos = indexes[length - 1].get(tuple(suffix[-length:]))
                if pos is not None:
                    cursor = pos + 1
                    break
        # Index every suffix ending at this event.
        recent.append(event)
        suffix = list(recent)
        for length in range(1, len(suffix) + 1):
            indexes[length - 1][tuple(suffix[-length:])] = i

    if streak:
        lengths.add(streak)
    return OracleResult(total_misses=len(sequence), covered_misses=covered,
                        stream_lengths=lengths)
