"""Project-specific invariant rules for the repro simulator stack.

Each rule encodes one convention the repo's correctness rests on; the
rationale lines below are the short form of the discussion in
``docs/ANALYSIS.md``.  Rules are deliberately conservative: they flag
the patterns they can prove from the AST and leave judgement calls to
``# repro: noqa[...]`` suppressions with justifying comments.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..obs import names as obs_names
from .engine import FileContext, Finding, Rule, register

#: Directories whose results feed published numbers; everything here
#: must be bit-reproducible across runs, seeds, and --jobs settings.
DETERMINISTIC_SCOPES = ("sim/", "core/", "prefetchers/", "memory/", "workloads/")


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chains as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


# ---------------------------------------------------------------------------
# DET001 — no unseeded nondeterminism in result-producing code


@register
class NoUnseededNondeterminism(Rule):
    """Reject module-level RNG, wall-clock reads, and set iteration."""

    code = "DET001"
    title = "unseeded nondeterminism in result-producing code"
    severity = "error"
    rationale = ("Domino's evaluation depends on bit-reproducible miss "
                 "streams: every RNG must be a constructor-seeded "
                 "random.Random / numpy Generator, no wall-clock value may "
                 "reach a result, and sets must be sorted before iteration "
                 "feeds anything ordered.")
    scope = DETERMINISTIC_SCOPES

    #: ``random.<fn>`` calls that are fine (constructing seeded RNGs).
    _RANDOM_OK = frozenset({"Random", "SystemRandom"})
    #: ``numpy.random.<fn>`` calls that are fine (seeded generator APIs).
    _NP_RANDOM_OK = frozenset({"default_rng", "Generator", "SeedSequence",
                               "PCG64", "Philox", "MT19937", "SFC64"})
    _CLOCKS = frozenset({"time.time", "time.time_ns"})
    _DATETIME_NOW = frozenset({"now", "utcnow", "today"})
    _UUIDS = frozenset({"uuid.uuid1", "uuid.uuid4"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_calls(ctx)
        yield from self._check_set_iteration(ctx)

    def _check_calls(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx.tree):
            dotted = _dotted(call.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if parts[0] == "random" and len(parts) == 2 \
                    and parts[1] not in self._RANDOM_OK:
                yield self.finding(
                    ctx, call,
                    f"module-level random.{parts[1]}() shares global RNG "
                    "state across cells; use a constructor-seeded "
                    "random.Random instance")
            elif len(parts) >= 2 and parts[-2] == "random" \
                    and parts[0] in ("np", "numpy") \
                    and parts[-1] not in self._NP_RANDOM_OK:
                yield self.finding(
                    ctx, call,
                    f"global numpy RNG call {dotted}() is not seed-scoped; "
                    "use numpy.random.default_rng(seed)")
            elif dotted in self._CLOCKS:
                yield self.finding(
                    ctx, call,
                    f"{dotted}() reads the wall clock; results must depend "
                    "only on (trace, config, seed)")
            elif parts[-1] in self._DATETIME_NOW \
                    and any(p in ("datetime", "date") for p in parts[:-1]):
                yield self.finding(
                    ctx, call,
                    f"{dotted}() reads the wall clock; results must depend "
                    "only on (trace, config, seed)")
            elif dotted in self._UUIDS:
                yield self.finding(
                    ctx, call, f"{dotted}() is nondeterministic; derive ids "
                               "from the cell key or seed instead")

    def _check_set_iteration(self, ctx: FileContext) -> Iterator[Finding]:
        set_names = self._set_valued_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.comprehension)):
                continue
            target = node.iter
            if self._is_set_expr(target) or self._names_set(target, set_names):
                where = _dotted(target) or "a set"
                yield self.finding(
                    ctx, node if isinstance(node, ast.For) else target,
                    f"iterating {where} is unordered and can reorder "
                    "results between runs; wrap it in sorted(...)")

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    @classmethod
    def _set_valued_names(cls, tree: ast.AST) -> set[str]:
        """Dotted names assigned a set display / set() call anywhere in
        the file (includes annotated ``x: set[int] = set()`` forms)."""
        names: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            else:
                continue
            if not cls._is_set_expr(value):
                continue
            for target in targets:
                dotted = _dotted(target)
                if dotted is not None:
                    names.add(dotted)
        return names

    @staticmethod
    def _names_set(node: ast.AST, set_names: set[str]) -> bool:
        dotted = _dotted(node)
        return dotted is not None and dotted in set_names


# ---------------------------------------------------------------------------
# PICKLE001 — runner-registered callables must be module-level


@register
class PicklableCellFunctions(Rule):
    """Reject lambdas/closures where the pool needs picklable callables."""

    code = "PICKLE001"
    title = "non-picklable callable handed to the runner"
    severity = "error"
    rationale = ("Cells cross the multiprocessing boundary by pickle; "
                 "lambdas and nested functions cannot be pickled, so "
                 "executor/experiment registries and pool submissions must "
                 "reference module-level functions.")
    scope = ("runner/", "experiments/", "serve/")

    #: Call attributes that ship their callable argument to workers.
    _SUBMIT_ATTRS = frozenset({"apply_async", "apply", "map", "map_async",
                               "imap", "imap_unordered", "starmap",
                               "starmap_async", "submit"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_registries(ctx)
        yield from self._check_submissions(ctx)

    def _check_registries(self, ctx: FileContext) -> Iterator[Finding]:
        """Module-level CONSTANT-case dict registries of callables."""
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            named = [t.id for t in targets
                     if isinstance(t, ast.Name) and t.id.strip("_").isupper()]
            if not named or not isinstance(value, ast.Dict):
                continue
            for entry in value.values:
                if isinstance(entry, ast.Lambda):
                    yield self.finding(
                        ctx, entry,
                        f"registry {named[0]} holds a lambda; worker "
                        "processes cannot unpickle it — use a module-level "
                        "function")

    def _check_submissions(self, ctx: FileContext) -> Iterator[Finding]:
        for call in _walk_calls(ctx.tree):
            func = call.func
            is_submit = (isinstance(func, ast.Attribute)
                         and func.attr in self._SUBMIT_ATTRS)
            is_run_cells = (isinstance(func, ast.Name)
                            and func.id == "run_cells")
            if not (is_submit or is_run_cells):
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(arg, ast.Lambda):
                    yield self.finding(
                        ctx, arg,
                        "lambda submitted to the worker pool cannot be "
                        "pickled; pass a module-level function")


# ---------------------------------------------------------------------------
# ERR001 — error discipline: ReproError hierarchy, no assert control flow


@register
class ErrorHierarchyDiscipline(Rule):
    """Reject raise Exception/RuntimeError and assert statements in src."""

    code = "ERR001"
    title = "error raised outside the ReproError hierarchy"
    severity = "error"
    rationale = ("Callers catch library failures via the ReproError tree "
                 "(errors.py); raise Exception/RuntimeError escapes it, and "
                 "assert disappears under python -O, so neither may carry "
                 "control flow in library code.  ValueError/TypeError stay "
                 "allowed for argument-contract violations.")
    scope = ("",)

    #: NotImplementedError stays allowed — it marks abstract hooks.
    _BANNED = frozenset({"Exception", "BaseException", "RuntimeError"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        name = ctx.scope_key.rsplit("/", 1)[-1]
        if name.startswith("test_") or name == "conftest.py":
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                yield from self._check_raise(ctx, node)
            elif isinstance(node, ast.Assert):
                yield self.finding(
                    ctx, node,
                    "assert vanishes under python -O; raise a ReproError "
                    "subclass (or restructure) for runtime invariants")

    def _check_raise(self, ctx: FileContext, node: ast.Raise) -> Iterator[Finding]:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in self._BANNED:
            yield self.finding(
                ctx, node,
                f"raise {exc.id} bypasses the ReproError hierarchy; raise "
                "the matching errors.py class so callers can catch library "
                "failures uniformly")


# ---------------------------------------------------------------------------
# OBS001 — emit sites must use registered event/metric names


@register
class RegisteredObsNames(Rule):
    """Event/metric names at emit sites must come from obs/names.py."""

    code = "OBS001"
    title = "unregistered obs event or metric name"
    severity = "error"
    rationale = ("obs summary and docs/OBSERVABILITY.md explain events by "
                 "name; an emit site using an unregistered or computed name "
                 "silently falls out of both.  Names must be constants from "
                 "repro.obs.names (the literal value or a names.X "
                 "reference).")
    scope = ("",)
    #: The obs framework itself forwards caller-supplied names, and the
    #: analyzer quotes names in messages; both are exempt.
    _EXEMPT = ("obs/", "analyze/")

    _EVENT_ATTRS = frozenset({"emit", "debug", "info", "warning", "error"})
    _METRIC_ATTRS = frozenset({"counter", "histogram"})

    def applies_to(self, scope_key: str) -> bool:
        if any(scope_key.startswith(prefix) for prefix in self._EXEMPT):
            return False
        return super().applies_to(scope_key)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scope_vars = self._scope_bound_names(ctx.tree)
        if not scope_vars:
            return
        names_aliases, imported_constants = self._names_imports(ctx.tree)
        for call in _walk_calls(ctx.tree):
            func = call.func
            if not (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in scope_vars):
                continue
            if func.attr in self._EVENT_ATTRS:
                registry, kind = obs_names.EVENT_NAMES, "event"
            elif func.attr in self._METRIC_ATTRS:
                registry, kind = obs_names.METRIC_NAMES, "metric"
            else:
                continue
            if not call.args:
                continue
            arg = call.args[0]
            problem = self._validate(arg, registry, names_aliases,
                                     imported_constants)
            if problem is not None:
                yield self.finding(
                    ctx, arg,
                    f"{kind} name {problem} at this emit site; register it "
                    "in repro.obs.names and reference the constant")

    @staticmethod
    def _validate(arg: ast.expr, registry: frozenset[str],
                  names_aliases: set[str],
                  imported_constants: set[str]) -> str | None:
        """None when valid, else a description of what is wrong."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value in registry:
                return None
            return f"{arg.value!r} is not registered in repro.obs.names"
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name) \
                and arg.value.id in names_aliases:
            value = getattr(obs_names, arg.attr, None)
            if isinstance(value, str) and value in registry:
                return None
            return f"names.{arg.attr} does not exist (or is the wrong kind)"
        if isinstance(arg, ast.Name) and arg.id in imported_constants:
            value = getattr(obs_names, arg.id, None)
            if isinstance(value, str) and value in registry:
                return None
            return f"{arg.id} does not exist in repro.obs.names"
        return "is not a string constant"

    @classmethod
    def _scope_bound_names(cls, tree: ast.AST) -> set[str]:
        """Variables holding a repro.obs Scope (incl. plain aliases)."""
        bound: set[str] = set()
        # Two passes so `tel = _OBS` resolves regardless of order.
        for _ in range(2):
            for node in ast.walk(tree):
                if not isinstance(node, ast.Assign):
                    continue
                if cls._is_scope_expr(node.value, bound):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
        return bound

    @staticmethod
    def _is_scope_expr(value: ast.expr, bound: set[str]) -> bool:
        if isinstance(value, ast.Name) and value.id in bound:
            return True  # alias of a known scope
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return func.id in ("scope", "obs_scope")
        if isinstance(func, ast.Attribute):
            if func.attr == "scope":
                return True  # obs.scope(...)
            if func.attr == "child" and isinstance(func.value, ast.Name) \
                    and func.value.id in bound:
                return True  # known_scope.child(...)
        return False

    @staticmethod
    def _names_imports(tree: ast.AST) -> tuple[set[str], set[str]]:
        """(aliases of the names module, constants imported from it)."""
        aliases: set[str] = set()
        constants: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith("obs.names") or module == "names":
                    for alias in node.names:
                        constants.add(alias.asname or alias.name)
                elif module.endswith("obs") or module == "repro.obs":
                    for alias in node.names:
                        if alias.name == "names":
                            aliases.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("obs.names"):
                        aliases.add(alias.asname or alias.name.split(".")[0])
        return aliases, constants


# ---------------------------------------------------------------------------
# OBS002 — spans use registered names, context-manager form only


@register
class RegisteredSpanSites(Rule):
    """``span(...)`` sites must use registered names, via ``with``."""

    code = "OBS002"
    title = "unregistered span name or bare span() call"
    severity = "error"
    rationale = ("The span forest is only analysable (critical path, "
                 "chrome trace, cross-process reparenting) if span names "
                 "come from repro.obs.names.SPAN_NAMES and every span is "
                 "opened as `with span(...)` — a bare call leaks an "
                 "unclosed span that corrupts the tree on export.")
    scope = ("",)
    #: trace.py itself constructs spans from caller names, and the
    #: analyzer quotes names in messages; both are exempt (same split
    #: as OBS001).
    _EXEMPT = ("obs/", "analyze/")

    def applies_to(self, scope_key: str) -> bool:
        if any(scope_key.startswith(prefix) for prefix in self._EXEMPT):
            return False
        return super().applies_to(scope_key)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        span_callables, module_aliases = self._span_bindings(ctx.tree)
        if not span_callables and not module_aliases:
            return
        with_items = self._with_context_exprs(ctx.tree)
        names_aliases, imported_constants = \
            RegisteredObsNames._names_imports(ctx.tree)
        for call in _walk_calls(ctx.tree):
            if not self._is_span_call(call, span_callables, module_aliases):
                continue
            if id(call) not in with_items:
                yield self.finding(
                    ctx, call,
                    "bare span() call never records; open spans as "
                    "`with span(...):` so the context manager closes and "
                    "records them")
            if not call.args:
                yield self.finding(
                    ctx, call, "span() call without a name argument")
                continue
            problem = self._validate_name(call.args[0], names_aliases,
                                          imported_constants)
            if problem is not None:
                yield self.finding(
                    ctx, call.args[0],
                    f"span name {problem}; register it as a SPAN_ constant "
                    "in repro.obs.names and reference it")

    @staticmethod
    def _validate_name(arg: ast.expr, names_aliases: set[str],
                       imported_constants: set[str]) -> str | None:
        """None when valid, else a description of what is wrong."""
        registry = obs_names.SPAN_NAMES
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value in registry:
                return None
            return f"{arg.value!r} is not registered in repro.obs.names"
        if isinstance(arg, ast.Attribute) and isinstance(arg.value, ast.Name) \
                and arg.value.id in names_aliases:
            value = getattr(obs_names, arg.attr, None)
            if isinstance(value, str) and value in registry:
                return None
            return f"names.{arg.attr} does not exist (or is not a SPAN_ name)"
        if isinstance(arg, ast.Name) and arg.id in imported_constants:
            value = getattr(obs_names, arg.id, None)
            if isinstance(value, str) and value in registry:
                return None
            return f"{arg.id} is not a SPAN_ name in repro.obs.names"
        return "is not a string constant"

    @staticmethod
    def _span_bindings(tree: ast.AST) -> tuple[set[str], set[str]]:
        """(names bound to trace.span, aliases of obs / obs.trace).

        The first set covers ``from ..obs.trace import span [as X]``;
        the second covers module imports whose ``.span`` attribute is
        the same callable (``from repro import obs``, ``from ..obs
        import trace``, ``import repro.obs.trace as T``).
        """
        callables: set[str] = set()
        modules: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                from_obs_pkg = module.endswith("obs") or module == "repro.obs"
                from_trace = module.endswith("obs.trace") or module == "trace"
                for alias in node.names:
                    if alias.name == "span" and (from_obs_pkg or from_trace):
                        callables.add(alias.asname or alias.name)
                    elif alias.name == "obs" and (module.endswith("repro")
                                                  or module == ""):
                        modules.add(alias.asname or alias.name)
                    elif alias.name == "trace" and from_obs_pkg:
                        modules.add(alias.asname or alias.name)
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith("obs.trace") \
                            or alias.name.endswith("repro.obs"):
                        modules.add(alias.asname or alias.name.split(".")[0])
        return callables, modules

    @staticmethod
    def _is_span_call(call: ast.Call, span_callables: set[str],
                      module_aliases: set[str]) -> bool:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id in span_callables
        return (isinstance(func, ast.Attribute) and func.attr == "span"
                and isinstance(func.value, ast.Name)
                and func.value.id in module_aliases)

    @staticmethod
    def _with_context_exprs(tree: ast.AST) -> set[int]:
        """ids of Call nodes used as `with` context expressions."""
        exprs: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    exprs.add(id(item.context_expr))
        return exprs


# ---------------------------------------------------------------------------
# IO001 — durable writes must fsync


@register
class DurableWritesFsync(Rule):
    """Byte-writing functions in persistence modules must fsync."""

    code = "IO001"
    title = "durable write without fsync"
    severity = "error"
    rationale = ("The checkpoint journal treats a journaled key as durably "
                 "done, which is only true if every byte that reached the "
                 "artifact store was fsync'd before the atomic rename; a "
                 "write path without os.fsync silently weakens crash "
                 "safety.")
    scope = ("runner/store.py", "runner/checkpoint.py")

    _WRITE_ATTRS = frozenset({"write", "writelines"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            writes, fsyncs = self._scan(node)
            for write in writes if not fsyncs else []:
                yield self.finding(
                    ctx, write,
                    f"{node.name}() writes bytes but never calls os.fsync; "
                    "follow the write -> flush -> fsync -> os.replace "
                    "pattern (or suppress with a justification)")

    def _scan(self, func: ast.AST) -> tuple[list[ast.Call], bool]:
        writes: list[ast.Call] = []
        fsyncs = False
        for call in _walk_calls(func):
            dotted = _dotted(call.func)
            if dotted == "os.fsync":
                fsyncs = True
            elif dotted in ("json.dump",):
                writes.append(call)
            elif isinstance(call.func, ast.Attribute) \
                    and call.func.attr in self._WRITE_ATTRS:
                writes.append(call)
        return writes, fsyncs
