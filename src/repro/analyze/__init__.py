"""repro.analyze — whole-program static analyzer for the simulator stack.

Two phases.  Per-file rules encode the repo's determinism, pickling,
error-hierarchy, telemetry-naming, and durability conventions; project
rules build a cross-module symbol table + typed call graph
(``callgraph.py``) over every file in the run and check concurrency
discipline on top of it (``concurrency.py``):

========== ==================================================================
DET001     no unseeded nondeterminism in sim/, core/, prefetchers/,
           memory/, workloads/
PICKLE001  runner-registered callables must be module-level (picklable)
ERR001     no raise Exception/RuntimeError or assert control flow in src/
OBS001     obs event/metric names must come from repro.obs.names
OBS002     spans use registered names, ``with`` form only
IO001      durable writes in runner/store.py + checkpoint.py must fsync
CONC001    thread-shared mutable module state written without the lock
           that guards its other access sites
CONC002    blocking call reachable from ``async def`` without a
           to_thread/executor hop
CONC003    inconsistent lock acquisition order (deadlock candidate)
CONC004    fork-unsafe values crossing the multiprocessing boundary
CONC005    ContextVar.set() whose token is never reset
========== ==================================================================

Run it as ``python -m repro.analyze [paths]`` or
``domino-repro analyze [paths]``; suppress a finding with
``# repro: noqa[RULE]`` (line) or ``# repro: noqa-file[RULE]`` (file).
``--format sarif`` emits SARIF 2.1, ``--baseline`` grandfathers known
findings, ``--changed`` scopes reporting to the git working-tree diff.
See ``docs/ANALYSIS.md`` for each rule's rationale and examples.
"""

from .baseline import apply_baseline, fingerprint, load_baseline, write_baseline
from .callgraph import Project
from .engine import (ALL_RULES, Analyzer, FileContext, Finding, ProjectRule,
                     Rule, all_rules, describe_rules, main, register,
                     render_json, render_text)
from .sarif import render_sarif

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "FileContext",
    "Finding",
    "Project",
    "ProjectRule",
    "Rule",
    "all_rules",
    "apply_baseline",
    "describe_rules",
    "fingerprint",
    "load_baseline",
    "main",
    "register",
    "render_json",
    "render_sarif",
    "render_text",
    "write_baseline",
]
