"""repro.analyze — AST-based invariant linter for the simulator stack.

Encodes the repo's determinism, pickling, error-hierarchy, telemetry-
naming, and durability conventions as machine-checked rules:

========== ==================================================================
DET001     no unseeded nondeterminism in sim/, core/, prefetchers/,
           memory/, workloads/
PICKLE001  runner-registered callables must be module-level (picklable)
ERR001     no raise Exception/RuntimeError or assert control flow in src/
OBS001     obs event/metric names must come from repro.obs.names
IO001      durable writes in runner/store.py + checkpoint.py must fsync
========== ==================================================================

Run it as ``python -m repro.analyze [paths]`` or
``domino-repro analyze [paths]``; suppress a finding with
``# repro: noqa[RULE]`` (line) or ``# repro: noqa-file[RULE]`` (file).
See ``docs/ANALYSIS.md`` for each rule's rationale and examples.
"""

from .engine import (ALL_RULES, Analyzer, FileContext, Finding, Rule,
                     all_rules, describe_rules, main, register, render_json,
                     render_text)

__all__ = [
    "ALL_RULES",
    "Analyzer",
    "FileContext",
    "Finding",
    "Rule",
    "all_rules",
    "describe_rules",
    "main",
    "register",
    "render_json",
    "render_text",
]
