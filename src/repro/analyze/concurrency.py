"""Concurrency-discipline rules over the project call graph (CONC*).

The repo runs three concurrency regimes at once — the asyncio serve
tier, the thread-based cancel/watchdog machinery, and the
multiprocessing runner pool — and the bugs that cross their seams
(an event loop stalled by a store lock, a token shipped into a fork,
a capture contextvar leaked across requests) are exactly the ones
per-file linting cannot see.  These rules run in the engine's second
phase against the :class:`~.callgraph.Project` fact base:

========  ==========================================================
CONC001   writes to shared mutable module globals without the lock
          that guards their other access sites
CONC002   blocking calls reachable from ``async def`` without a
          ``to_thread``/executor hop in between
CONC003   lock-ordering cycles across ``with lock:`` nests in the
          call graph (deadlock candidates)
CONC004   threads, locks, sockets, or contextvars crossing the
          multiprocessing boundary into worker processes
CONC005   ``ContextVar.set()`` whose token is never ``reset()``
========  ==========================================================

All five reason across function and module boundaries; suppression
(``# repro: noqa[CONC00x]``) and scoping work exactly as for the
per-file rules, keyed by the file each finding lands in.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import ClassVar

from .callgraph import (CALL, TASK, THREAD_KINDS, Edge, GlobalAccess,
                        ModuleInfo, Project)
from .engine import Finding, ProjectRule, register

#: Callables that block the calling thread.  Matched against
#: import-normalised dotted names of *unresolved* calls (a call that
#: resolves to a project function is analysed through the graph
#: instead).
_BLOCKING_PRIMITIVES = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "socket.create_connection", "socket.getaddrinfo",
    "os.fsync", "os.fdatasync",
    "select.select",
    "open",
})

#: Blocking method suffixes (receiver type unknowable statically;
#: these names are distinctive enough to flag on an event loop).
_BLOCKING_SUFFIXES = (".read_text", ".write_text", ".read_bytes",
                      ".write_bytes")


def _edge_order(edge: Edge) -> tuple:
    return (edge.path, edge.node.lineno, edge.node.col_offset, edge.kind,
            edge.dotted or "")


def _normalize_dotted(dotted: str | None, module: ModuleInfo | None,
                      ) -> str | None:
    """Expand the leading alias of a dotted call through the imports."""
    if dotted is None or module is None:
        return dotted
    head, _, rest = dotted.partition(".")
    if head in module.import_symbols:
        src, original = module.import_symbols[head]
        base = f"{src}.{original}" if src else original
        return f"{base}.{rest}" if rest else base
    if head in module.import_modules:
        target = module.import_modules[head]
        return f"{target}.{rest}" if rest else target
    return dotted


def _modules_by_path(project: Project) -> dict[str, ModuleInfo]:
    return {info.path: info for info in project.modules.values()}


def _blocking_primitive(edge: Edge, module: ModuleInfo | None) -> str | None:
    """The blocking primitive an unresolved call edge names, if any."""
    if edge.callee is not None:
        return None
    dotted = _normalize_dotted(edge.dotted, module)
    if dotted is None:
        return None
    if dotted in _BLOCKING_PRIMITIVES:
        return dotted
    if dotted.endswith(_BLOCKING_SUFFIXES):
        return dotted
    return None


# -- CONC001 ----------------------------------------------------------------


@register
class SharedStateWriteRule(ProjectRule):
    """CONC001: unguarded writes to thread-shared mutable globals."""

    code: ClassVar[str] = "CONC001"
    title: ClassVar[str] = "shared mutable global written without its lock"
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = (
        "A module-level dict/list/set reachable from more than one thread "
        "is a data race unless every write holds the lock that guards the "
        "other access sites; a torn update here corrupts results silently "
        "instead of failing a test.")
    scope: ClassVar[tuple[str, ...]] = ("",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        contexts = self._thread_contexts(project)
        if len(contexts) < 2:
            return
        by_global: dict[str, list[GlobalAccess]] = {}
        for access in project.global_accesses:
            by_global.setdefault(access.target, []).append(access)
        for target in sorted(by_global):
            accesses = sorted(by_global[target],
                              key=lambda a: (a.path, a.node.lineno,
                                             a.node.col_offset))
            if not self._is_thread_shared(accesses, contexts):
                continue
            yield from self._check_writes(target, accesses)

    @staticmethod
    def _thread_contexts(project: Project) -> list[tuple[str, set[str]]]:
        """(context id, functions running in it) per thread of control."""
        spawned = project.spawn_targets(THREAD_KINDS)
        spawn_roots = set(spawned)
        main_roots = {q for q in project.entry_points()
                      if q not in spawn_roots}
        contexts = [("main", project.reachable(main_roots,
                                               frozenset({CALL, TASK})))]
        for root in sorted(spawn_roots):
            contexts.append((root, project.reachable(
                {root}, frozenset({CALL, TASK}))))
        return contexts

    @staticmethod
    def _is_thread_shared(accesses: list[GlobalAccess],
                          contexts: list[tuple[str, set[str]]]) -> bool:
        """True when a worker thread and a second context both touch it."""
        touched: set[str] = set()
        for access in accesses:
            for name, members in contexts:
                if access.function in members:
                    touched.add(name)
        if len(touched) < 2:
            return False
        return any(name != "main" for name in touched)

    def _check_writes(self, target: str, accesses: list[GlobalAccess],
                      ) -> Iterator[Finding]:
        if not any(a.is_write for a in accesses):
            return
        for access in accesses:
            if not access.is_write:
                continue
            guards: set[str] = set()
            witness: GlobalAccess | None = None
            for other in accesses:
                if other is access:
                    continue
                guards.update(other.locks_held)
                if other.locks_held and witness is None:
                    witness = other
            if guards and witness is not None \
                    and not (set(access.locks_held) & guards):
                where = f"{witness.path}:{witness.node.lineno}"
                yield self.project_finding(
                    access.path, access.node,
                    f"write to thread-shared global '{target}' without "
                    f"holding {self._lock_list(guards)} that guards its "
                    f"other access sites (e.g. {where})")
            elif not guards and not access.locks_held:
                yield self.project_finding(
                    access.path, access.node,
                    f"write to thread-shared global '{target}' with no "
                    f"lock held at any access site; guard it or confine "
                    f"it to one thread")

    @staticmethod
    def _lock_list(guards: set[str]) -> str:
        names = ", ".join(f"'{g}'" for g in sorted(guards))
        return f"lock {names}" if len(guards) == 1 else f"locks {names}"


# -- CONC002 ----------------------------------------------------------------


@register
class AsyncBlockingCallRule(ProjectRule):
    """CONC002: blocking work on the event loop thread."""

    code: ClassVar[str] = "CONC002"
    title: ClassVar[str] = "blocking call reachable from async def"
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = (
        "A blocking call inside an async function stalls the whole event "
        "loop — every connection, watchdog, and worker task — for its "
        "duration; hop through asyncio.to_thread or an executor instead. "
        "Blocking-ness propagates through sync calls, so a store-lock "
        "acquisition that sleeps internally is flagged at the async call "
        "site that reaches it.")
    scope: ClassVar[tuple[str, ...]] = ("",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        modules = _modules_by_path(project)
        edges = sorted(project.edges, key=_edge_order)
        blocking = self._blocking_chains(project, edges, modules)
        for edge in edges:
            if edge.kind != CALL:
                continue
            caller = project.functions.get(edge.caller)
            if caller is None or not caller.is_async:
                continue
            primitive = _blocking_primitive(edge, modules.get(edge.path))
            if primitive is not None:
                yield self.project_finding(
                    edge.path, edge.node,
                    f"blocking call '{primitive}' inside async function "
                    f"'{edge.caller}'; hop through asyncio.to_thread or an "
                    f"executor")
                continue
            if edge.callee is None:
                continue
            callee = project.functions.get(edge.callee)
            if callee is None or callee.is_async:
                # An async callee with blocking work is flagged at its
                # own call site, not at every awaiter.
                continue
            chain = blocking.get(edge.callee)
            if chain is not None:
                via = " -> ".join((edge.callee, *chain))
                yield self.project_finding(
                    edge.path, edge.node,
                    f"call from async function '{edge.caller}' blocks the "
                    f"event loop ({via}); hop through asyncio.to_thread or "
                    f"an executor")

    @staticmethod
    def _blocking_chains(project: Project, edges: list[Edge],
                         modules: dict[str, ModuleInfo],
                         ) -> dict[str, tuple[str, ...]]:
        """Fixpoint: sync function -> witness chain down to a primitive."""
        blocking: dict[str, tuple[str, ...]] = {}
        changed = True
        while changed:
            changed = False
            for edge in edges:
                if edge.kind != CALL or not edge.caller:
                    continue
                if edge.caller in blocking:
                    continue
                primitive = _blocking_primitive(edge, modules.get(edge.path))
                if primitive is not None:
                    blocking[edge.caller] = (primitive,)
                    changed = True
                    continue
                if edge.callee is None or edge.callee not in blocking:
                    continue
                callee = project.functions.get(edge.callee)
                if callee is None or callee.is_async:
                    continue
                blocking[edge.caller] = (edge.callee,
                                         *blocking[edge.callee])[:6]
                changed = True
        return blocking


# -- CONC003 ----------------------------------------------------------------


@register
class LockOrderCycleRule(ProjectRule):
    """CONC003: inconsistent lock acquisition order (deadlock candidates)."""

    code: ClassVar[str] = "CONC003"
    title: ClassVar[str] = "lock-ordering cycle in the call graph"
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = (
        "Two code paths that take the same pair of locks in opposite "
        "orders deadlock the first time they interleave under load; the "
        "call graph makes the transitive orders visible (a function that "
        "acquires a lock deep in a callee still orders it after every "
        "lock its callers hold).")
    scope: ClassVar[tuple[str, ...]] = ("",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        order: dict[tuple[str, str], tuple[str, int]] = {}

        def note(first: str, second: str, path: str, line: int) -> None:
            if first == second and "RLock" in project.locks.get(first, ""):
                return
            order.setdefault((first, second), (path, line))

        acquisitions = sorted(
            project.acquisitions,
            key=lambda a: (a.path, a.node.lineno, a.node.col_offset, a.lock))
        for acq in acquisitions:
            for held in acq.held:
                note(held, acq.lock, acq.path, acq.node.lineno)
        transitive = self._transitive_acquisitions(project, acquisitions)
        for edge in sorted(project.edges, key=_edge_order):
            if edge.kind != CALL or edge.callee is None \
                    or not edge.locks_held:
                continue
            for held in edge.locks_held:
                for acquired in sorted(transitive.get(edge.callee, ())):
                    note(held, acquired, edge.path, edge.node.lineno)
        yield from self._report_cycles(order)

    @staticmethod
    def _transitive_acquisitions(project: Project, acquisitions: list,
                                 ) -> dict[str, set[str]]:
        acquired: dict[str, set[str]] = {}
        for acq in acquisitions:
            acquired.setdefault(acq.function, set()).add(acq.lock)
        changed = True
        while changed:
            changed = False
            for edge in project.edges:
                if edge.kind != CALL or edge.callee is None:
                    continue
                down = acquired.get(edge.callee)
                if not down:
                    continue
                up = acquired.setdefault(edge.caller, set())
                before = len(up)
                up |= down
                if len(up) != before:
                    changed = True
        return acquired

    def _report_cycles(self, order: dict[tuple[str, str], tuple[str, int]],
                       ) -> Iterator[Finding]:
        locks = sorted({lock for pair in order for lock in pair})
        adjacency = {lock: sorted(b for (a, b) in order if a == lock)
                     for lock in locks}
        closure: dict[str, set[str]] = {}
        for lock in locks:
            seen: set[str] = set()
            stack = list(adjacency[lock])
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(adjacency.get(current, ()))
            closure[lock] = seen
        reported: set[frozenset[str]] = set()
        for lock in locks:
            if lock not in closure[lock]:
                continue
            component = frozenset(
                {lock} | {other for other in closure[lock]
                          if lock in closure.get(other, set())})
            if component in reported:
                continue
            reported.add(component)
            members = sorted(component)
            witnesses = sorted(
                (pair, where) for pair, where in order.items()
                if pair[0] in component and pair[1] in component)
            sites = "; ".join(
                f"'{b}' taken while holding '{a}' at {path}:{line}"
                for (a, b), (path, line) in witnesses)
            path, line = witnesses[0][1]
            anchor = _LineAnchor(line)
            yield self.project_finding(
                path, anchor,
                f"lock-ordering cycle among {', '.join(repr(m) for m in members)}"
                f" — potential deadlock ({sites})")


class _LineAnchor:
    """Minimal node stand-in so a finding can point at a bare line."""

    def __init__(self, lineno: int) -> None:
        self.lineno = lineno
        self.col_offset = 0


# -- CONC004 ----------------------------------------------------------------


@register
class ForkSafetyRule(ProjectRule):
    """CONC004: fork-unsafe state crossing the multiprocessing boundary."""

    code: ClassVar[str] = "CONC004"
    title: ClassVar[str] = "fork-unsafe value shipped to a worker process"
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = (
        "Locks, threads, live sockets, and contextvars do not survive the "
        "pickle/fork boundary: at best they fail to pickle, at worst the "
        "child inherits a lock frozen in the acquired state or a socket "
        "shared with the parent. Ship plain data and reconstruct state in "
        "the worker.")
    scope: ClassVar[tuple[str, ...]] = ("",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        spawns = sorted(project.process_spawns,
                        key=lambda s: (s.path, s.node.lineno,
                                       s.node.col_offset))
        for spawn in spawns:
            if spawn.callee_class is not None:
                unsafe = project.class_unsafe_attrs.get(spawn.callee_class)
                if unsafe:
                    attr, ctor = sorted(unsafe.items())[0]
                    yield self.project_finding(
                        spawn.path, spawn.node,
                        f"bound method of '{spawn.callee_class}' shipped to "
                        f"a worker process, but its instances hold "
                        f"fork-unsafe state (self.{attr} = {ctor}()); pass "
                        f"a module-level function and plain data instead")
            for arg in spawn.args:
                kind, detail = arg.origin
                if kind == "unsafe":
                    yield self.project_finding(
                        spawn.path, arg.node,
                        f"fork-unsafe value ({detail}) crosses the "
                        f"multiprocessing boundary here; workers must "
                        f"receive plain picklable data")
                elif kind == "instance" \
                        and detail in project.class_unsafe_attrs:
                    attr, ctor = sorted(
                        project.class_unsafe_attrs[detail].items())[0]
                    yield self.project_finding(
                        spawn.path, arg.node,
                        f"instance of '{detail}' crosses the multiprocessing "
                        f"boundary here, but it holds fork-unsafe state "
                        f"(self.{attr} = {ctor}()); ship plain data instead")


# -- CONC005 ----------------------------------------------------------------


@register
class ContextVarResetRule(ProjectRule):
    """CONC005: ContextVar.set() whose token is never reset."""

    code: ClassVar[str] = "CONC005"
    title: ClassVar[str] = "ContextVar.set() without a matching reset"
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = (
        "A set() whose token is dropped leaks the new value into every "
        "later task that shares the context — the serve-tier capture-leak "
        "bug class. Hold the token and reset() it (same function, or a "
        "paired method storing it on self) so the previous value is "
        "restored even on error paths.")
    scope: ClassVar[tuple[str, ...]] = ("",)

    def check_project(self, project: Project) -> Iterator[Finding]:
        sets = sorted(project.ctx_sets,
                      key=lambda s: (s.path, s.node.lineno,
                                     s.node.col_offset))
        for ctx_set in sets:
            kind, name = ctx_set.token
            if kind == "discarded":
                yield self.project_finding(
                    ctx_set.path, ctx_set.node,
                    f"'{ctx_set.var}'.set() discards its token; capture it "
                    f"and reset() in a finally block so the previous value "
                    f"is restored")
                continue
            if self._has_matching_reset(project, ctx_set, kind, name):
                continue
            where = (f"function '{ctx_set.function}'" if kind == "local"
                     else f"class of '{ctx_set.function}'")
            yield self.project_finding(
                ctx_set.path, ctx_set.node,
                f"token of '{ctx_set.var}'.set() is never reset() in "
                f"{where}; the new value leaks into unrelated tasks")

    @staticmethod
    def _has_matching_reset(project: Project, ctx_set, kind: str,
                            name: str) -> bool:
        for reset in project.ctx_resets:
            if reset.var != ctx_set.var or reset.token != (kind, name):
                continue
            if kind == "local" and reset.function == ctx_set.function:
                return True
            # self.<attr>: any method of the same class qualifies.
            if (kind == "self" and reset.class_name is not None
                    and reset.class_name == ctx_set.class_name
                    and reset.function.rsplit(".", 1)[0]
                    == ctx_set.function.rsplit(".", 1)[0]):
                return True
        return False


__all__ = ["AsyncBlockingCallRule", "ContextVarResetRule", "ForkSafetyRule",
           "LockOrderCycleRule", "SharedStateWriteRule"]
