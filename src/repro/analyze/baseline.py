"""Finding baselines: grandfather existing findings, fail on new ones.

A baseline is a committed JSON file mapping finding *fingerprints* to
counts.  A fingerprint is ``(scope key, rule code, message)`` — no line
or column — so unrelated edits that shift a grandfathered finding up or
down the file do not break CI, while a *second* occurrence of the same
problem (count exceeded) or a different message (new problem) fails
loudly.  Scope keys (the path tail after the last ``repro/`` or
``fixtures/`` component, see :func:`.engine._scope_key`) make the
fingerprint independent of where the checkout lives and how the
analyzer was invoked.

The workflow:

* ``python -m repro.analyze src --baseline analyze-baseline.json``
  reports only *new* findings and exits 1 on any; grandfathered ones
  are counted in the report footer so they stay visible.
* ``... --baseline analyze-baseline.json --write-baseline`` regenerates
  the file from the current tree (review the diff before committing —
  a growing baseline is a decision, not an accident).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..errors import AnalysisError
from .engine import Finding, _scope_key

#: Format marker so a future shape change can migrate old files.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Location-stable identity of a finding (see module docstring)."""
    return "::".join((_scope_key(Path(finding.path)), finding.code,
                      finding.message))


def load_baseline(path: Path) -> dict[str, int]:
    """Read a baseline file into ``{fingerprint: allowed count}``."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(raw, dict) or "findings" not in raw:
        raise AnalysisError(
            f"baseline {path} has no 'findings' key; regenerate it with "
            f"--write-baseline")
    findings = raw["findings"]
    if not isinstance(findings, dict) or not all(
            isinstance(v, int) and v > 0 for v in findings.values()):
        raise AnalysisError(
            f"baseline {path}: 'findings' must map fingerprints to "
            f"positive counts")
    return dict(findings)


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, trailing newline)."""
    counts: dict[str, int] = {}
    for finding in findings:
        key = fingerprint(finding)
        counts[key] = counts.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro-analyze",
        "findings": dict(sorted(counts.items())),
    }
    try:
        path.write_text(json.dumps(payload, indent=2) + "\n",
                        encoding="utf-8")
    except OSError as exc:
        raise AnalysisError(f"cannot write baseline {path}: {exc}") from exc


def apply_baseline(findings: list[Finding], counts: dict[str, int],
                   ) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, grandfathered)`` against a baseline.

    For each fingerprint the first *count* occurrences (in the
    engine's deterministic sort order) are grandfathered; any excess
    is new.  Returns both lists still in sorted order.
    """
    remaining = dict(counts)
    fresh: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered.append(finding)
        else:
            fresh.append(finding)
    return fresh, grandfathered


__all__ = ["BASELINE_VERSION", "apply_baseline", "fingerprint",
           "load_baseline", "write_baseline"]
