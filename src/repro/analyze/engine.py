"""The invariant-linter engine: rule registry, suppressions, reporting.

The simulator stack's correctness rests on conventions that ordinary
tests cannot see — seeded RNGs, picklable cells, the ``ReproError``
hierarchy, registered obs event names, fsync-before-rename persistence.
This module turns those conventions into *rules*: small classes that
walk a file's ``ast`` and yield :class:`Finding` objects.  The engine
owns everything around the rules — discovering files, parsing, scoping
rules to the subtrees they guard, honouring suppression comments, and
rendering text or JSON reports — so a rule is nothing but a ``check``
method and a few class attributes.

Suppressions mirror the linter idiom the repo already uses, under a
distinct marker so they never collide with ruff's:

* ``# repro: noqa[DET001]`` on the offending line silences the named
  rule(s) for that line (comma-separate several codes);
* a bare ``# repro: noqa`` silences every rule for that line;
* ``# repro: noqa-file[DET001]`` anywhere in the file silences the
  named rule(s) for the whole file.

Every suppression should carry a justification in the surrounding
comment — the analyzer cannot enforce that, but review can.

Scoping: each rule declares ``scope`` — path prefixes (or exact file
paths) *relative to the repro package root*.  For files inside the
package the engine matches against the part of the path after the last
``repro/`` component; for analyzer test fixtures it matches after
``fixtures/`` (so fixtures mirror the package layout); anything else is
matched against the path as given.  An empty scope entry (``""``)
matches everything.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

from ..errors import AnalysisError

#: Severities, in increasing order of gravity.
SEVERITIES = ("warning", "error")

#: Marker for an all-rules suppression.
ALL_RULES = "*"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    severity: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.severity}] {self.message}")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class FileContext:
    """Everything a rule may want to know about the file under analysis."""

    path: Path
    source: str
    tree: ast.Module
    #: Scope key: package-relative path used for rule scoping (see module
    #: docstring).  Posix separators, e.g. ``"runner/store.py"``.
    scope_key: str
    #: line -> suppressed rule codes (or :data:`ALL_RULES`).
    line_noqa: dict[int, set[str]] = field(default_factory=dict)
    #: rule codes suppressed for the whole file (or :data:`ALL_RULES`).
    file_noqa: set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        if ALL_RULES in self.file_noqa or code in self.file_noqa:
            return True
        codes = self.line_noqa.get(line)
        return codes is not None and (ALL_RULES in codes or code in codes)


class Rule:
    """Base class: subclass, set the class attributes, implement check().

    ``scope`` entries ending in ``/`` are directory prefixes; entries
    ending in ``.py`` are exact files; ``""`` matches every file.
    """

    code: ClassVar[str] = ""
    title: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...]] = ("",)

    def applies_to(self, scope_key: str) -> bool:
        for entry in self.scope:
            if not entry:
                return True
            if entry.endswith("/") and scope_key.startswith(entry):
                return True
            if scope_key == entry:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(path=str(ctx.path), line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=self.code, severity=self.severity, message=message)


class ProjectRule(Rule):
    """Base class for whole-program rules (phase two of the analyzer).

    Per-file :class:`Rule` subclasses see one ``ast.Module``;
    ``ProjectRule`` subclasses see the :class:`~.callgraph.Project`
    fact base built from *every* parse-clean file of the run, so they
    can reason across module boundaries (call graphs, lock sets,
    spawn edges).  ``check`` is intentionally a no-op — the engine
    calls :meth:`check_project` exactly once per run instead.

    Scoping and suppressions still apply, keyed by the file each
    finding is anchored in.
    """

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Any) -> Iterator[Finding]:
        raise NotImplementedError

    def project_finding(self, path: str, node: ast.AST,
                        message: str) -> Finding:
        return Finding(path=path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=self.code, severity=self.severity,
                       message=message)


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not rule_cls.code:
        raise AnalysisError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.severity not in SEVERITIES:
        raise AnalysisError(
            f"rule {rule_cls.code}: unknown severity {rule_cls.severity!r}")
    if rule_cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    """The default rule registry (populated by the rule modules on import)."""
    from . import concurrency as _concurrency  # noqa: F401
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return dict(_REGISTRY)


# -- suppression parsing ----------------------------------------------------

def _parse_noqa(source: str) -> tuple[dict[int, set[str]], set[str]]:
    line_noqa: dict[int, set[str]] = {}
    file_noqa: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        codes = ({c.strip() for c in raw.split(",") if c.strip()}
                 if raw else {ALL_RULES})
        if match.group("file"):
            file_noqa |= codes
        else:
            line_noqa.setdefault(lineno, set()).update(codes)
    return line_noqa, file_noqa


def _scope_key(path: Path) -> str:
    """Package-relative scoping key for ``path`` (see module docstring)."""
    parts = path.as_posix().split("/")
    for anchor in ("repro", "fixtures"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            rest = parts[idx + 1:]
            if rest:
                return "/".join(rest)
    return path.as_posix()


# -- the analyzer -----------------------------------------------------------

#: Deterministic finding order: byte-stable across filesystems and
#: dict-iteration accidents (satellite: registry determinism).
_FINDING_ORDER = (lambda f: (f.path, f.line, f.col, f.code, f.message))


class Analyzer:
    """Run rules over files in two phases and collect findings.

    Phase one runs the per-file :class:`Rule` set on each file; phase
    two builds a :class:`~.callgraph.Project` from every parse-clean
    file of the run and hands it to each :class:`ProjectRule` once.
    Rules execute in sorted code order and findings are globally
    sorted by ``(path, line, col, code, message)``, so reports are
    byte-stable regardless of filesystem enumeration order.
    """

    def __init__(self, rules: Iterable[type[Rule]] | None = None) -> None:
        registry = all_rules()
        selected = list(rules) if rules is not None else list(registry.values())
        selected.sort(key=lambda cls: cls.code)
        instances = [cls() for cls in selected]
        self.rules: list[Rule] = instances
        self.file_rules: list[Rule] = [
            r for r in instances if not isinstance(r, ProjectRule)]
        self.project_rules: list[ProjectRule] = [
            r for r in instances if isinstance(r, ProjectRule)]

    def _context_for(self, source: str, path: Path,
                     ) -> tuple[FileContext | None, list[Finding]]:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return None, [Finding(path=str(path), line=exc.lineno or 1,
                                  col=(exc.offset or 0) + 1, code="PARSE000",
                                  severity="error",
                                  message=f"cannot parse file: {exc.msg}")]
        line_noqa, file_noqa = _parse_noqa(source)
        return FileContext(path=path, source=source, tree=tree,
                           scope_key=_scope_key(path),
                           line_noqa=line_noqa, file_noqa=file_noqa), []

    def _run_file_rules(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.file_rules:
            if not rule.applies_to(ctx.scope_key):
                continue
            findings.extend(f for f in rule.check(ctx)
                            if not ctx.is_suppressed(f.code, f.line))
        return findings

    def _run_project_rules(self, contexts: list[FileContext]) -> list[Finding]:
        if not self.project_rules or not contexts:
            return []
        from .callgraph import Project

        project = Project.build(contexts)
        by_path = {str(ctx.path): ctx for ctx in contexts}
        findings: list[Finding] = []
        for rule in self.project_rules:
            for f in rule.check_project(project):
                ctx = by_path.get(f.path)
                if ctx is None or not rule.applies_to(ctx.scope_key):
                    continue
                if not ctx.is_suppressed(f.code, f.line):
                    findings.append(f)
        return findings

    def check_source(self, source: str, path: str | Path = "<string>") -> list[Finding]:
        """Analyze one in-memory source blob (the unit tests' entry point).

        Runs both phases, with the project built from just this file —
        cross-file resolution needs :meth:`check_paths`.
        """
        ctx, parse_findings = self._context_for(source, Path(path))
        if ctx is None:
            return parse_findings
        findings = self._run_file_rules(ctx)
        findings.extend(self._run_project_rules([ctx]))
        findings.sort(key=_FINDING_ORDER)
        return findings

    def check_file(self, path: str | Path) -> list[Finding]:
        return self.check_paths([path])

    def check_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        contexts: list[FileContext] = []
        for path in self.iter_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise AnalysisError(f"cannot read {path}: {exc}") from exc
            ctx, parse_findings = self._context_for(source, path)
            if ctx is None:
                findings.extend(parse_findings)
                continue
            contexts.append(ctx)
            findings.extend(self._run_file_rules(ctx))
        findings.extend(self._run_project_rules(contexts))
        findings.sort(key=_FINDING_ORDER)
        return findings

    @staticmethod
    def iter_files(paths: Iterable[str | Path]) -> Iterator[Path]:
        """Expand files and directories into sorted ``.py`` files."""
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                candidates: Iterable[Path] = sorted(
                    p for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                    and not any(part.startswith(".") for part in p.parts))
            elif path.is_file():
                candidates = [path]
            else:
                raise AnalysisError(f"no such file or directory: {path}")
            for candidate in candidates:
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate


# -- reporting --------------------------------------------------------------

def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "no findings"
    lines = [f.render() for f in findings]
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    lines.append(f"{len(findings)} finding(s): {n_err} error(s), "
                 f"{n_warn} warning(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps([f.to_dict() for f in findings], indent=2)


def describe_rules() -> str:
    rows = []
    for code in sorted(all_rules()):
        rule = all_rules()[code]
        scope = ", ".join(s or "(everywhere)" for s in rule.scope)
        rows.append(f"{code} [{rule.severity}] {rule.title}\n"
                    f"    scope: {scope}\n"
                    f"    {rule.rationale}")
    return "\n".join(rows)


# -- CLI --------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST-based invariant linter for the repro simulator stack")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text", help="report format (default text)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run (default all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file: fingerprinted findings in it are "
                             "reported as pre-existing and do not fail the run")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to --baseline "
                             "and exit 0")
    parser.add_argument("--changed", action="store_true",
                        help="report only findings in files changed vs git "
                             "HEAD (the call graph is still built over all "
                             "paths, so cross-module resolution stays exact)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    return parser


def _resolve_rules(select: str | None, ignore: str | None) -> list[type[Rule]]:
    registry = all_rules()
    if select:
        codes = [c.strip() for c in select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in registry]
        if unknown:
            raise AnalysisError(
                f"unknown rule code(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}")
        chosen = [registry[c] for c in codes]
    else:
        chosen = list(registry.values())
    if ignore:
        dropped = {c.strip() for c in ignore.split(",") if c.strip()}
        unknown = sorted(dropped - set(registry))
        if unknown:
            raise AnalysisError(
                f"unknown rule code(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}")
        chosen = [cls for cls in chosen if cls.code not in dropped]
    return chosen


def _git_changed_files() -> set[Path]:
    """Python files changed vs HEAD (staged + unstaged + untracked)."""
    import subprocess

    changed: set[Path] = set()
    commands = (["git", "diff", "--name-only", "HEAD", "--"],
                ["git", "ls-files", "--others", "--exclude-standard"])
    for command in commands:
        try:
            out = subprocess.run(command, capture_output=True, text=True,
                                 check=True, timeout=30)
        except (OSError, subprocess.SubprocessError) as exc:
            raise AnalysisError(
                f"--changed needs a git checkout: {exc}") from exc
        for line in out.stdout.splitlines():
            if line.endswith(".py"):
                changed.add(Path(line).resolve())
    return changed


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analyze`` / ``domino-repro analyze``.

    Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error
    (including paths that contain no Python files at all — a run that
    analyzed nothing must not look like a clean run).
    """
    from .baseline import apply_baseline, load_baseline, write_baseline

    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        print(describe_rules())
        return 0
    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline PATH",
              file=sys.stderr)
        return 2
    if args.write_baseline and args.changed:
        print("error: --write-baseline must cover the whole tree; "
              "drop --changed", file=sys.stderr)
        return 2
    try:
        files = list(Analyzer.iter_files(args.paths))
        if not files:
            raise AnalysisError(
                "no Python files found under: "
                + " ".join(str(p) for p in args.paths))
        analyzer = Analyzer(_resolve_rules(args.select, args.ignore))
        findings = analyzer.check_paths(files)
        if args.changed:
            changed = _git_changed_files()
            findings = [f for f in findings
                        if Path(f.path).resolve() in changed]
        if args.write_baseline:
            write_baseline(Path(args.baseline), findings)
            print(f"wrote baseline for {len(findings)} finding(s) "
                  f"to {args.baseline}")
            return 0
        baselined: list[Finding] = []
        if args.baseline:
            counts = load_baseline(Path(args.baseline))
            findings, baselined = apply_baseline(findings, counts)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(findings))
    elif args.format == "sarif":
        from .sarif import render_sarif

        print(render_sarif(findings, baselined))
    else:
        print(render_text(findings))
        if baselined:
            print(f"{len(baselined)} pre-existing finding(s) suppressed "
                  f"by baseline {args.baseline}")
    return 1 if findings else 0
