"""The invariant-linter engine: rule registry, suppressions, reporting.

The simulator stack's correctness rests on conventions that ordinary
tests cannot see — seeded RNGs, picklable cells, the ``ReproError``
hierarchy, registered obs event names, fsync-before-rename persistence.
This module turns those conventions into *rules*: small classes that
walk a file's ``ast`` and yield :class:`Finding` objects.  The engine
owns everything around the rules — discovering files, parsing, scoping
rules to the subtrees they guard, honouring suppression comments, and
rendering text or JSON reports — so a rule is nothing but a ``check``
method and a few class attributes.

Suppressions mirror the linter idiom the repo already uses, under a
distinct marker so they never collide with ruff's:

* ``# repro: noqa[DET001]`` on the offending line silences the named
  rule(s) for that line (comma-separate several codes);
* a bare ``# repro: noqa`` silences every rule for that line;
* ``# repro: noqa-file[DET001]`` anywhere in the file silences the
  named rule(s) for the whole file.

Every suppression should carry a justification in the surrounding
comment — the analyzer cannot enforce that, but review can.

Scoping: each rule declares ``scope`` — path prefixes (or exact file
paths) *relative to the repro package root*.  For files inside the
package the engine matches against the part of the path after the last
``repro/`` component; for analyzer test fixtures it matches after
``fixtures/`` (so fixtures mirror the package layout); anything else is
matched against the path as given.  An empty scope entry (``""``)
matches everything.
"""

from __future__ import annotations

import argparse
import ast
import dataclasses
import json
import re
import sys
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, ClassVar

from ..errors import AnalysisError

#: Severities, in increasing order of gravity.
SEVERITIES = ("warning", "error")

#: Marker for an all-rules suppression.
ALL_RULES = "*"

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<file>-file)?(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    severity: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} [{self.severity}] {self.message}")

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class FileContext:
    """Everything a rule may want to know about the file under analysis."""

    path: Path
    source: str
    tree: ast.Module
    #: Scope key: package-relative path used for rule scoping (see module
    #: docstring).  Posix separators, e.g. ``"runner/store.py"``.
    scope_key: str
    #: line -> suppressed rule codes (or :data:`ALL_RULES`).
    line_noqa: dict[int, set[str]] = field(default_factory=dict)
    #: rule codes suppressed for the whole file (or :data:`ALL_RULES`).
    file_noqa: set[str] = field(default_factory=set)

    def is_suppressed(self, code: str, line: int) -> bool:
        if ALL_RULES in self.file_noqa or code in self.file_noqa:
            return True
        codes = self.line_noqa.get(line)
        return codes is not None and (ALL_RULES in codes or code in codes)


class Rule:
    """Base class: subclass, set the class attributes, implement check().

    ``scope`` entries ending in ``/`` are directory prefixes; entries
    ending in ``.py`` are exact files; ``""`` matches every file.
    """

    code: ClassVar[str] = ""
    title: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = ""
    scope: ClassVar[tuple[str, ...]] = ("",)

    def applies_to(self, scope_key: str) -> bool:
        for entry in self.scope:
            if not entry:
                return True
            if entry.endswith("/") and scope_key.startswith(entry):
                return True
            if scope_key == entry:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(path=str(ctx.path), line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       code=self.code, severity=self.severity, message=message)


# -- registry ---------------------------------------------------------------

_REGISTRY: dict[str, type[Rule]] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the default registry."""
    if not rule_cls.code:
        raise AnalysisError(f"rule {rule_cls.__name__} has no code")
    if rule_cls.severity not in SEVERITIES:
        raise AnalysisError(
            f"rule {rule_cls.code}: unknown severity {rule_cls.severity!r}")
    if rule_cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {rule_cls.code}")
    _REGISTRY[rule_cls.code] = rule_cls
    return rule_cls


def all_rules() -> dict[str, type[Rule]]:
    """The default rule registry (populated by :mod:`.rules` on import)."""
    from . import rules as _rules  # noqa: F401  (import registers the rules)

    return dict(_REGISTRY)


# -- suppression parsing ----------------------------------------------------

def _parse_noqa(source: str) -> tuple[dict[int, set[str]], set[str]]:
    line_noqa: dict[int, set[str]] = {}
    file_noqa: set[str] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        raw = match.group("codes")
        codes = ({c.strip() for c in raw.split(",") if c.strip()}
                 if raw else {ALL_RULES})
        if match.group("file"):
            file_noqa |= codes
        else:
            line_noqa.setdefault(lineno, set()).update(codes)
    return line_noqa, file_noqa


def _scope_key(path: Path) -> str:
    """Package-relative scoping key for ``path`` (see module docstring)."""
    parts = path.as_posix().split("/")
    for anchor in ("repro", "fixtures"):
        if anchor in parts:
            idx = len(parts) - 1 - parts[::-1].index(anchor)
            rest = parts[idx + 1:]
            if rest:
                return "/".join(rest)
    return path.as_posix()


# -- the analyzer -----------------------------------------------------------

class Analyzer:
    """Run a set of rules over files and collect findings."""

    def __init__(self, rules: Iterable[type[Rule]] | None = None) -> None:
        registry = all_rules()
        selected = list(rules) if rules is not None else list(registry.values())
        self.rules: list[Rule] = [cls() for cls in selected]

    def check_source(self, source: str, path: str | Path = "<string>") -> list[Finding]:
        """Analyze one in-memory source blob (the unit tests' entry point)."""
        path = Path(path)
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            return [Finding(path=str(path), line=exc.lineno or 1,
                            col=(exc.offset or 0) + 1, code="PARSE000",
                            severity="error",
                            message=f"cannot parse file: {exc.msg}")]
        line_noqa, file_noqa = _parse_noqa(source)
        ctx = FileContext(path=path, source=source, tree=tree,
                          scope_key=_scope_key(path),
                          line_noqa=line_noqa, file_noqa=file_noqa)
        findings: list[Finding] = []
        for rule in self.rules:
            if not rule.applies_to(ctx.scope_key):
                continue
            findings.extend(f for f in rule.check(ctx)
                            if not ctx.is_suppressed(f.code, f.line))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    def check_file(self, path: str | Path) -> list[Finding]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise AnalysisError(f"cannot read {path}: {exc}") from exc
        return self.check_source(source, path)

    def check_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        findings: list[Finding] = []
        for path in self.iter_files(paths):
            findings.extend(self.check_file(path))
        return findings

    @staticmethod
    def iter_files(paths: Iterable[str | Path]) -> Iterator[Path]:
        """Expand files and directories into sorted ``.py`` files."""
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                candidates: Iterable[Path] = sorted(
                    p for p in path.rglob("*.py")
                    if "__pycache__" not in p.parts
                    and not any(part.startswith(".") for part in p.parts))
            elif path.is_file():
                candidates = [path]
            else:
                raise AnalysisError(f"no such file or directory: {path}")
            for candidate in candidates:
                if candidate not in seen:
                    seen.add(candidate)
                    yield candidate


# -- reporting --------------------------------------------------------------

def render_text(findings: list[Finding]) -> str:
    if not findings:
        return "no findings"
    lines = [f.render() for f in findings]
    n_err = sum(1 for f in findings if f.severity == "error")
    n_warn = len(findings) - n_err
    lines.append(f"{len(findings)} finding(s): {n_err} error(s), "
                 f"{n_warn} warning(s)")
    return "\n".join(lines)


def render_json(findings: list[Finding]) -> str:
    return json.dumps([f.to_dict() for f in findings], indent=2)


def describe_rules() -> str:
    rows = []
    for code in sorted(all_rules()):
        rule = all_rules()[code]
        scope = ", ".join(s or "(everywhere)" for s in rule.scope)
        rows.append(f"{code} [{rule.severity}] {rule.title}\n"
                    f"    scope: {scope}\n"
                    f"    {rule.rationale}")
    return "\n".join(rows)


# -- CLI --------------------------------------------------------------------

def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="AST-based invariant linter for the repro simulator stack")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze (default: src)")
    parser.add_argument("--format", choices=["text", "json"], default="text",
                        help="report format (default text)")
    parser.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run (default all)")
    parser.add_argument("--ignore", default=None, metavar="CODES",
                        help="comma-separated rule codes to skip")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule registry and exit")
    return parser


def _resolve_rules(select: str | None, ignore: str | None) -> list[type[Rule]]:
    registry = all_rules()
    if select:
        codes = [c.strip() for c in select.split(",") if c.strip()]
        unknown = [c for c in codes if c not in registry]
        if unknown:
            raise AnalysisError(
                f"unknown rule code(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}")
        chosen = [registry[c] for c in codes]
    else:
        chosen = list(registry.values())
    if ignore:
        dropped = {c.strip() for c in ignore.split(",") if c.strip()}
        unknown = sorted(dropped - set(registry))
        if unknown:
            raise AnalysisError(
                f"unknown rule code(s): {', '.join(unknown)}; "
                f"known: {', '.join(sorted(registry))}")
        chosen = [cls for cls in chosen if cls.code not in dropped]
    return chosen


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro.analyze`` / ``domino-repro analyze``.

    Exit codes: 0 = clean, 1 = findings, 2 = usage or I/O error.
    """
    args = build_arg_parser().parse_args(argv)
    if args.list_rules:
        print(describe_rules())
        return 0
    try:
        analyzer = Analyzer(_resolve_rules(args.select, args.ignore))
        findings = analyzer.check_paths(args.paths)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_json(findings) if args.format == "json"
          else render_text(findings))
    return 1 if findings else 0
