"""SARIF 2.1.0 emitter for analyzer findings.

SARIF (Static Analysis Results Interchange Format, OASIS standard) is
what code-scanning UIs ingest — emitting it lets CI upload analyzer
results as a reviewable artifact instead of a log grep.  The emitter
targets the 2.1.0 schema:

* one ``run`` with a ``tool.driver`` describing every registered rule
  (id, short/full description, default severity level);
* one ``result`` per finding with ``ruleId``/``ruleIndex``, the SARIF
  ``level`` (our ``error``/``warning`` map 1:1), and a
  ``physicalLocation`` with 1-based line/column;
* baseline-grandfathered findings are still emitted, marked with an
  ``external`` suppression, so they stay visible in viewers without
  failing the gate.

URIs are the finding paths converted to POSIX form — relative when the
analyzer was invoked with relative paths, which is what CI does.
"""

from __future__ import annotations

import json
from pathlib import PurePath

from .engine import Finding, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

#: Analyzer severities → SARIF levels (they coincide, but keep the
#: mapping explicit so a future "note" severity has a seam).
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptors() -> tuple[list[dict], dict[str, int]]:
    rules = []
    index: dict[str, int] = {}
    for position, code in enumerate(sorted(all_rules())):
        cls = all_rules()[code]
        rules.append({
            "id": code,
            "name": cls.__name__,
            "shortDescription": {"text": cls.title},
            "fullDescription": {"text": cls.rationale},
            "defaultConfiguration": {
                "level": _LEVELS.get(cls.severity, "warning")},
        })
        index[code] = position
    return rules, index


def _result(finding: Finding, rule_index: dict[str, int],
            suppressed: bool) -> dict:
    result: dict = {
        "ruleId": finding.code,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {
                    "uri": PurePath(finding.path).as_posix()},
                "region": {
                    "startLine": max(finding.line, 1),
                    "startColumn": max(finding.col, 1),
                },
            },
        }],
    }
    if finding.code in rule_index:
        result["ruleIndex"] = rule_index[finding.code]
    if suppressed:
        result["suppressions"] = [{"kind": "external",
                                   "justification": "analyzer baseline"}]
    return result


def sarif_log(findings: list[Finding],
              baselined: list[Finding] | None = None) -> dict:
    """The SARIF log as a plain dict (tests validate its structure)."""
    rules, rule_index = _rule_descriptors()
    results = [_result(f, rule_index, suppressed=False) for f in findings]
    results.extend(_result(f, rule_index, suppressed=True)
                   for f in (baselined or []))
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analyze",
                    "rules": rules,
                },
            },
            "results": results,
            "columnKind": "unicodeCodePoints",
        }],
    }


def render_sarif(findings: list[Finding],
                 baselined: list[Finding] | None = None) -> str:
    return json.dumps(sarif_log(findings, baselined), indent=2)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "render_sarif", "sarif_log"]
