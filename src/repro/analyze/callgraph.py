"""Project-wide symbol table and call graph for flow-aware rules.

The per-file rules in :mod:`.rules` see one ``ast.Module`` at a time;
the concurrency rules in :mod:`.concurrency` need to answer questions
that span files: *which thread can reach this write?  does this async
function transitively hit a blocking call?  who holds which lock when
this one is acquired?*  This module builds the shared substrate those
rules stand on:

* a **symbol table** per module — top-level functions, classes and
  their methods, module-level assignments, and the import map that
  resolves local names to other modules' symbols;
* a **call graph** whose edges are *typed* by how control transfers:

  ========== ==========================================================
  call       plain (possibly awaited) call — same thread, same context
  task       ``asyncio.create_task`` / ``ensure_future`` / ``gather`` —
             concurrent, but on the same event-loop thread
  to_thread  ``asyncio.to_thread`` / ``loop.run_in_executor`` — the
             callee runs on a worker thread (context is copied)
  thread     ``threading.Thread(target=...)`` — a new thread with an
             empty contextvars context
  executor   ``executor.submit(...)`` — a pooled worker thread
  process    ``pool.apply_async/map/...``, ``multiprocessing.Process``
             — the callee and its arguments cross a pickle boundary
  ========== ==========================================================

* **lock identities** (module-level ``_LOCK = threading.Lock()`` and
  instance ``self._lock = threading.Lock()`` attributes) plus every
  ``with lock:`` acquisition, annotated with the locks already held;
* **module-global accesses** (reads, writes, and mutating method
  calls) annotated with the locks held at the access site;
* **contextvars discipline facts**: every ``ContextVar.set()`` with
  where its token went, and every ``.reset()`` with what it restores.

Resolution is deliberately *static and conservative*: a call the table
cannot resolve stays an edge with a dotted name and no callee, and the
rules treat unresolved as "assume nothing".  Method calls on unknown
receivers fall back to **unique-name dispatch** — if exactly one class
in the project defines the method, the call resolves there; if several
do, the edge stays unresolved rather than guessing.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# -- edge kinds -------------------------------------------------------------

CALL = "call"
TASK = "task"
TO_THREAD = "to_thread"
THREAD = "thread"
EXECUTOR = "executor"
PROCESS = "process"

#: Edges that leave the spawning thread (same process).
THREAD_KINDS = frozenset({TO_THREAD, THREAD, EXECUTOR})
#: Edges that leave the spawning execution context entirely.
SPAWN_KINDS = frozenset({TO_THREAD, THREAD, EXECUTOR, PROCESS, TASK})

#: Pool submission attributes whose first argument crosses the pickle
#: boundary into a worker *process*.  The distinctive names match on
#: any receiver; ``apply``/``map`` are common enough method names that
#: they additionally require a pool-looking receiver.
_POOL_ATTRS = frozenset({"apply_async", "map_async", "imap",
                         "imap_unordered", "starmap", "starmap_async"})
_POOL_ATTRS_GENERIC = frozenset({"apply", "map"})

#: Constructors whose product is a lock usable in ``with``.
_LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                         "BoundedSemaphore"})

#: Constructors whose product must not cross a fork/pickle boundary:
#: OS threads, their synchronisation primitives, live sockets, and
#: contextvars (which a forked child inherits but cannot share).
_FORK_UNSAFE_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                                "BoundedSemaphore", "Event", "Barrier",
                                "Thread", "local", "socket", "ContextVar"})

#: Modules the fork-unsafe constructors are expected to come from.
_FORK_UNSAFE_MODULES = frozenset({"threading", "socket", "contextvars",
                                  "asyncio", "multiprocessing"})


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` attribute chains as a dotted string, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# -- facts ------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method: the call graph's node."""

    qname: str                      # module-qualified, e.g. "serve.server.ExperimentServer._worker"
    module: str
    name: str
    class_name: str | None
    is_async: bool
    path: str
    scope_key: str
    node: ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True)
class Edge:
    """One call site: caller → (maybe resolved) callee, typed."""

    caller: str                     # FunctionInfo qname ("" = module top level)
    callee: str | None              # resolved qname, or None
    kind: str                       # CALL | TASK | TO_THREAD | THREAD | EXECUTOR | PROCESS
    dotted: str | None              # raw dotted call text ("time.sleep"), if any
    node: ast.Call
    path: str
    locks_held: tuple[str, ...] = ()


@dataclass(frozen=True)
class Acquisition:
    """One ``with lock:`` entry and the locks already held there."""

    function: str
    lock: str
    held: tuple[str, ...]
    node: ast.AST
    path: str


@dataclass(frozen=True)
class GlobalAccess:
    """One read/write of a module-level global inside a function."""

    function: str
    target: str                     # global qname, e.g. "runner.scheduler._POLICY"
    is_write: bool
    locks_held: tuple[str, ...]
    node: ast.AST
    path: str


@dataclass(frozen=True)
class CtxVarSet:
    """One ``ContextVar.set()`` and where its token went.

    ``token`` is ``("discarded", "")``, ``("local", name)``, or
    ``("self", attr)``.
    """

    function: str
    class_name: str | None
    var: str
    token: tuple[str, str]
    node: ast.AST
    path: str


@dataclass(frozen=True)
class CtxVarReset:
    """One ``ContextVar.reset(token)``; mirror of :class:`CtxVarSet`."""

    function: str
    class_name: str | None
    var: str
    token: tuple[str, str]


@dataclass(frozen=True)
class SpawnArgument:
    """One value shipped across a process boundary at a spawn site.

    ``origin`` classifies what the static table knows about it:
    ``("unsafe", detail)`` for a known fork-unsafe value,
    ``("instance", class_qname)`` for an instance of a project class,
    ``("callable", qname)``, or ``("plain", "")``.
    """

    origin: tuple[str, str]
    node: ast.AST


@dataclass(frozen=True)
class ProcessSpawn:
    """One call site shipping work to a worker process."""

    function: str
    callee: str | None              # resolved target callable, if any
    callee_class: str | None        # class qname when target is a bound method
    args: tuple[SpawnArgument, ...]
    node: ast.Call
    path: str


@dataclass
class ModuleInfo:
    """Symbol table for one parsed module."""

    name: str
    path: str
    scope_key: str
    tree: ast.Module
    functions: dict[str, str] = field(default_factory=dict)     # local name -> qname
    classes: dict[str, dict[str, str]] = field(default_factory=dict)  # class -> method -> qname
    import_modules: dict[str, str] = field(default_factory=dict)      # alias -> dotted module
    import_symbols: dict[str, tuple[str, str]] = field(default_factory=dict)  # alias -> (module, name)
    #: Module-level names assigned a mutable display/constructor.
    mutable_globals: set[str] = field(default_factory=set)
    #: Module-level name -> dotted constructor that produced it.
    global_ctors: dict[str, str] = field(default_factory=dict)


def module_name_for(scope_key: str) -> str:
    """Dotted module name derived from a scope key (see engine)."""
    name = scope_key[:-3] if scope_key.endswith(".py") else scope_key
    name = name.replace("/", ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


class Project:
    """The whole-program fact base the concurrency rules query.

    Build one with :meth:`build` from the engine's parsed
    ``FileContext`` objects (anything with ``path``, ``tree`` and
    ``scope_key`` attributes works).
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.edges: list[Edge] = []
        self.locks: dict[str, str] = {}          # lock qname -> ctor dotted name
        self.acquisitions: list[Acquisition] = []
        self.global_accesses: list[GlobalAccess] = []
        self.context_vars: set[str] = set()      # ContextVar global qnames
        self.ctx_sets: list[CtxVarSet] = []
        self.ctx_resets: list[CtxVarReset] = []
        self.process_spawns: list[ProcessSpawn] = []
        #: class qname -> {attr -> ctor dotted} for fork-unsafe attrs.
        self.class_unsafe_attrs: dict[str, dict[str, str]] = {}
        #: class qname -> {attr} assigned a lock ctor in any method.
        self._method_names: dict[str, list[str]] = {}
        self._edges_from: dict[str, list[Edge]] | None = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, contexts: list) -> Project:
        project = cls()
        ordered = sorted(contexts, key=lambda c: str(c.path))
        for ctx in ordered:
            project._collect_symbols(str(ctx.path), ctx.scope_key, ctx.tree)
        for ctx in ordered:
            module = project.modules[module_name_for(ctx.scope_key)]
            _FunctionWalker(project, module).walk()
        return project

    def _collect_symbols(self, path: str, scope_key: str,
                         tree: ast.Module) -> None:
        name = module_name_for(scope_key)
        module = ModuleInfo(name=name, path=path, scope_key=scope_key,
                            tree=tree)
        self.modules[name] = module
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{name}.{stmt.name}"
                module.functions[stmt.name] = qname
                self._add_function(qname, module, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                methods: dict[str, str] = {}
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        qname = f"{name}.{stmt.name}.{sub.name}"
                        methods[sub.name] = qname
                        self._add_function(qname, module, sub,
                                           class_name=stmt.name)
                        self._method_names.setdefault(sub.name, []).append(qname)
                module.classes[stmt.name] = methods
                self._collect_class_attrs(module, stmt)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    module.import_modules[bound] = (
                        alias.name if alias.asname else alias.name.split(".")[0])
                    if alias.asname:
                        module.import_modules[alias.asname] = alias.name
            elif isinstance(stmt, ast.ImportFrom):
                target = self._resolve_import_from(name, stmt)
                for alias in stmt.names:
                    bound = alias.asname or alias.name
                    module.import_symbols[bound] = (target, alias.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                self._collect_global_assign(module, stmt)

    def _add_function(self, qname: str, module: ModuleInfo,
                      node: ast.FunctionDef | ast.AsyncFunctionDef,
                      class_name: str | None) -> None:
        self.functions[qname] = FunctionInfo(
            qname=qname, module=module.name, name=node.name,
            class_name=class_name,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            path=module.path, scope_key=module.scope_key, node=node)

    @staticmethod
    def _resolve_import_from(module_name: str, stmt: ast.ImportFrom) -> str:
        """Dotted target of a (possibly relative) ``from X import ...``."""
        if not stmt.level:
            return stmt.module or ""
        parts = module_name.split(".")
        # level 1 = current package (drop the file component), each
        # further level climbs one package.
        base = parts[:-stmt.level] if stmt.level <= len(parts) else []
        if stmt.module:
            base = base + stmt.module.split(".")
        return ".".join(base)

    def _collect_global_assign(self, module: ModuleInfo,
                               stmt: ast.Assign | ast.AnnAssign) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        else:
            if stmt.value is None:
                return
            targets, value = [stmt.target], stmt.value
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        if not names:
            return
        ctor = self._ctor_of(value)
        for bound in names:
            qname = f"{module.name}.{bound}"
            if ctor is not None:
                module.global_ctors[bound] = ctor
                last = ctor.rsplit(".", 1)[-1]
                if last in _LOCK_CTORS:
                    self.locks[qname] = ctor
                if last == "ContextVar":
                    self.context_vars.add(qname)
            if self._is_mutable_value(value):
                module.mutable_globals.add(bound)

    @staticmethod
    def _ctor_of(value: ast.expr) -> str | None:
        if isinstance(value, ast.Call):
            return dotted_name(value.func)
        return None

    @staticmethod
    def _is_mutable_value(value: ast.expr) -> bool:
        if isinstance(value, (ast.Dict, ast.List, ast.Set)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("dict", "list", "set", "defaultdict",
                                     "deque", "Counter", "OrderedDict")
        return False

    def _collect_class_attrs(self, module: ModuleInfo,
                             cls_node: ast.ClassDef) -> None:
        """``self.x = <ctor>()`` assignments anywhere in the class."""
        class_qname = f"{module.name}.{cls_node.name}"
        unsafe: dict[str, str] = {}
        for node in ast.walk(cls_node):
            if not isinstance(node, ast.Assign):
                continue
            ctor = self._ctor_of(node.value)
            if ctor is None:
                continue
            last = ctor.rsplit(".", 1)[-1]
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    attr_qname = f"{class_qname}.{target.attr}"
                    if last in _LOCK_CTORS:
                        self.locks[attr_qname] = ctor
                    if self._ctor_is_fork_unsafe(ctor):
                        unsafe[target.attr] = ctor
        if unsafe:
            self.class_unsafe_attrs[class_qname] = unsafe

    @staticmethod
    def _ctor_is_fork_unsafe(ctor: str) -> bool:
        parts = ctor.split(".")
        if parts[-1] not in _FORK_UNSAFE_CTORS:
            return False
        # Unqualified ctors ("Lock()") count only for the unambiguous
        # names; qualified ones must come from a concurrency module.
        if len(parts) == 1:
            return parts[0] in ("ContextVar", "Thread")
        return parts[0] in _FORK_UNSAFE_MODULES

    # -- lookup -------------------------------------------------------------

    def lookup_module(self, target: str) -> ModuleInfo | None:
        """Resolve a dotted import target against the project.

        Tries the exact name, then unique suffix matches in both
        directions — analysed trees are rooted below their package
        (``serve.server`` vs ``repro.serve.server``).
        """
        if not target:
            return None
        if target in self.modules:
            return self.modules[target]
        matches = sorted(
            name for name in self.modules
            if name.endswith("." + target) or target.endswith("." + name))
        if len(matches) == 1:
            return self.modules[matches[0]]
        return None

    def resolve_name(self, name: str, module: ModuleInfo) -> str | None:
        """A bare name at module scope → qname of a project symbol."""
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return f"{module.name}.{name}"
        if name in module.import_symbols:
            src, original = module.import_symbols[name]
            target = self.lookup_module(src)
            if target is not None:
                if original in target.functions:
                    return target.functions[original]
                if original in target.classes:
                    return f"{target.name}.{original}"
                if original in target.global_ctors or original in target.mutable_globals:
                    return f"{target.name}.{original}"
                # ``from pkg import submodule``
                sub = self.lookup_module(f"{src}.{original}")
                if sub is not None:
                    return sub.name
        if name in module.global_ctors or name in module.mutable_globals:
            return f"{module.name}.{name}"
        return None

    def resolve_method(self, name: str) -> str | None:
        """Unique-name dynamic dispatch fallback (see module docstring)."""
        candidates = self._method_names.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_call(self, func: ast.expr, module: ModuleInfo,
                     class_name: str | None) -> tuple[str | None, str | None]:
        """Resolve a call's target: ``(qname or None, dotted text)``."""
        dotted = dotted_name(func)
        if isinstance(func, ast.Name):
            resolved = self.resolve_name(func.id, module)
            if resolved is not None and resolved in self.functions:
                return resolved, dotted
            if resolved is not None:
                # A class: the call constructs it — resolve to __init__.
                methods = self._class_methods(resolved)
                if methods is not None:
                    return methods.get("__init__"), dotted
            return None, dotted
        if isinstance(func, ast.Attribute):
            head = func.value
            if isinstance(head, ast.Name):
                if head.id == "self" and class_name is not None:
                    methods = module.classes.get(class_name, {})
                    if func.attr in methods:
                        return methods[func.attr], dotted
                    return self.resolve_method(func.attr), dotted
                target = self._module_for_alias(head.id, module)
                if target is not None:
                    if func.attr in target.functions:
                        return target.functions[func.attr], dotted
                    if func.attr in target.classes:
                        return (target.classes[func.attr].get("__init__"),
                                dotted)
                    return None, dotted
            # Unknown receiver: unique-name dispatch fallback.
            return self.resolve_method(func.attr), dotted
        return None, dotted

    def _module_for_alias(self, name: str, module: ModuleInfo,
                          ) -> ModuleInfo | None:
        if name in module.import_modules:
            return self.lookup_module(module.import_modules[name])
        if name in module.import_symbols:
            src, original = module.import_symbols[name]
            return self.lookup_module(f"{src}.{original}" if src else original)
        return None

    def _class_methods(self, class_qname: str) -> dict[str, str] | None:
        module_name, _, cls = class_qname.rpartition(".")
        info = self.modules.get(module_name)
        if info is None:
            return None
        return info.classes.get(cls)

    def resolve_lock_expr(self, expr: ast.expr, module: ModuleInfo,
                          class_name: str | None) -> str | None:
        """``with <expr>:`` → lock qname, when expr names a known lock."""
        if isinstance(expr, ast.Name):
            resolved = self.resolve_name(expr.id, module)
            if resolved in self.locks:
                return resolved
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            if expr.value.id == "self" and class_name is not None:
                qname = f"{module.name}.{class_name}.{expr.attr}"
                if qname in self.locks:
                    return qname
                return None
            target = self._module_for_alias(expr.value.id, module)
            if target is not None:
                qname = f"{target.name}.{expr.attr}"
                if qname in self.locks:
                    return qname
        return None

    def resolve_global_target(self, expr: ast.expr, module: ModuleInfo,
                              ) -> str | None:
        """Name → qname of the module-level mutable global it denotes."""
        if not isinstance(expr, ast.Name):
            return None
        if expr.id in module.mutable_globals:
            return f"{module.name}.{expr.id}"
        if expr.id in module.import_symbols:
            src, original = module.import_symbols[expr.id]
            target = self.lookup_module(src)
            if target is not None and original in target.mutable_globals:
                return f"{target.name}.{original}"
        return None

    def resolve_context_var(self, expr: ast.expr, module: ModuleInfo,
                            ) -> str | None:
        """Receiver of ``.set()/.reset()`` → ContextVar qname, if known."""
        if isinstance(expr, ast.Name):
            resolved = self.resolve_name(expr.id, module)
            if resolved in self.context_vars:
                return resolved
            return None
        if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name):
            target = self._module_for_alias(expr.value.id, module)
            if target is not None:
                qname = f"{target.name}.{expr.attr}"
                if qname in self.context_vars:
                    return qname
        return None

    # -- graph queries ------------------------------------------------------

    def edges_from(self, qname: str) -> list[Edge]:
        if self._edges_from is None:
            index: dict[str, list[Edge]] = {}
            for edge in self.edges:
                index.setdefault(edge.caller, []).append(edge)
            self._edges_from = index
        return self._edges_from.get(qname, [])

    def reachable(self, roots: set[str],
                  kinds: frozenset[str] = frozenset({CALL}),
                  ) -> set[str]:
        """Functions reachable from ``roots`` over edges of ``kinds``."""
        seen = set(root for root in roots if root in self.functions)
        stack = sorted(seen)
        while stack:
            current = stack.pop()
            for edge in self.edges_from(current):
                if edge.kind not in kinds or edge.callee is None:
                    continue
                if edge.callee not in seen and edge.callee in self.functions:
                    seen.add(edge.callee)
                    stack.append(edge.callee)
        return seen

    def spawn_targets(self, kinds: frozenset[str]) -> dict[str, Edge]:
        """Resolved targets of spawn edges of ``kinds`` (first edge wins)."""
        targets: dict[str, Edge] = {}
        for edge in self.edges:
            if edge.kind in kinds and edge.callee is not None \
                    and edge.callee not in targets:
                targets[edge.callee] = edge
        return targets

    def entry_points(self) -> set[str]:
        """Functions no project edge targets: the outside-world surface."""
        targeted = {e.callee for e in self.edges if e.callee is not None}
        return {q for q in self.functions if q not in targeted}


# -- per-function AST walking ----------------------------------------------


class _FunctionWalker:
    """Extracts edges, acquisitions, global accesses, and ctxvar facts
    from every function of one module (plus its top-level code)."""

    #: Mutating methods on the builtin containers (a call through one of
    #: these on a module global is a write to shared state).
    _MUTATORS = frozenset({"append", "extend", "insert", "add", "update",
                           "pop", "popitem", "clear", "remove", "discard",
                           "setdefault", "__setitem__"})

    def __init__(self, project: Project, module: ModuleInfo) -> None:
        self.project = project
        self.module = module
        #: Call nodes consumed as spawn arguments (``create_task(f())``
        #: builds a coroutine, it does not run ``f`` synchronously) —
        #: skipped when the expression walk reaches them.
        self._consumed: set[int] = set()

    def walk(self) -> None:
        for qname, info in sorted(self.project.functions.items()):
            if info.module != self.module.name:
                continue
            globals_declared = self._global_decls(info.node)
            self._walk_body(info.node, qname, info.class_name,
                            held=(), globals_declared=globals_declared)
        self._walk_top_level()

    def _walk_top_level(self) -> None:
        for stmt in self.module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            self._walk_stmt(stmt, caller="", class_name=None, held=(),
                            globals_declared=set())

    @staticmethod
    def _global_decls(node: ast.AST) -> set[str]:
        names: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Global):
                names.update(sub.names)
        return names

    def _walk_body(self, node: ast.FunctionDef | ast.AsyncFunctionDef,
                   caller: str, class_name: str | None,
                   held: tuple[str, ...], globals_declared: set[str]) -> None:
        for stmt in node.body:
            self._walk_stmt(stmt, caller, class_name, held, globals_declared)

    def _walk_stmt(self, stmt: ast.stmt, caller: str,
                   class_name: str | None, held: tuple[str, ...],
                   globals_declared: set[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function: its body is its own node in the graph.
            qname = f"{caller}.<locals>.{stmt.name}" if caller \
                else f"{self.module.name}.{stmt.name}"
            if qname not in self.project.functions:
                self.project.functions[qname] = FunctionInfo(
                    qname=qname, module=self.module.name, name=stmt.name,
                    class_name=class_name,
                    is_async=isinstance(stmt, ast.AsyncFunctionDef),
                    path=self.module.path, scope_key=self.module.scope_key,
                    node=stmt)
                self._walk_body(stmt, qname, class_name, (),
                                self._global_decls(stmt))
            return
        if isinstance(stmt, ast.ClassDef):
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = held
            for item in stmt.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    self._visit_exprs(expr, caller, class_name, held,
                                      globals_declared)
                    continue
                lock = self.project.resolve_lock_expr(expr, self.module,
                                                      class_name)
                if lock is not None:
                    self.project.acquisitions.append(Acquisition(
                        function=caller, lock=lock, held=inner,
                        node=stmt, path=self.module.path))
                    if lock not in inner:
                        inner = inner + (lock,)
            for sub in stmt.body:
                self._walk_stmt(sub, caller, class_name, inner,
                                globals_declared)
            return
        # Assignments: global writes.
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._note_assign_writes(stmt, caller, held, globals_declared)
        # Recurse into compound statements, visiting expressions.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._walk_stmt(child, caller, class_name, held,
                                globals_declared)
            elif isinstance(child, ast.expr):
                self._visit_exprs(child, caller, class_name, held,
                                  globals_declared)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._walk_stmt(sub, caller, class_name, held,
                                        globals_declared)

    def _note_assign_writes(self, stmt: ast.stmt, caller: str,
                            held: tuple[str, ...],
                            globals_declared: set[str]) -> None:
        targets: list[ast.expr]
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        else:
            return
        for target in targets:
            base: ast.expr | None = None
            if isinstance(target, ast.Name):
                # Rebinding a module global needs a ``global`` decl
                # inside a function; at top level every Name binds the
                # module scope (but top-level init is not a race).
                if caller and target.id in globals_declared:
                    base = target
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base = target.value
            if base is None:
                continue
            qname = self.project.resolve_global_target(base, self.module)
            if qname is not None and caller:
                self.project.global_accesses.append(GlobalAccess(
                    function=caller, target=qname, is_write=True,
                    locks_held=held, node=target, path=self.module.path))

    # -- expression visiting -------------------------------------------

    def _visit_exprs(self, expr: ast.expr, caller: str,
                     class_name: str | None, held: tuple[str, ...],
                     globals_declared: set[str]) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._note_call(node, caller, class_name, held)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                qname = self.project.resolve_global_target(node, self.module)
                if qname is not None and caller:
                    self.project.global_accesses.append(GlobalAccess(
                        function=caller, target=qname, is_write=False,
                        locks_held=held, node=node, path=self.module.path))

    def _note_call(self, call: ast.Call, caller: str,
                   class_name: str | None, held: tuple[str, ...]) -> None:
        if id(call) in self._consumed:
            return
        func = call.func
        dotted = dotted_name(func)
        if dotted in ("asyncio.gather", "gather"):
            for arg in call.args:
                inner: ast.expr = arg
                if isinstance(inner, ast.Call):
                    self._consumed.add(id(inner))
                    inner = inner.func
                if isinstance(inner, (ast.Name, ast.Attribute)):
                    callee, inner_dotted = self.project.resolve_call(
                        inner, self.module, class_name)
                    self._add_edge(caller, callee, TASK, inner_dotted,
                                   call, held)
            return
        kind, target_expr = self._spawn_of(call, dotted)
        if kind is not None:
            if target_expr is not None:
                callee, target_dotted = self.project.resolve_call(
                    target_expr, self.module, class_name)
                self._add_edge(caller, callee, kind, target_dotted, call, held)
                if kind == PROCESS:
                    self._note_process_spawn(call, caller, class_name,
                                             callee, target_expr)
            return
        # Mutating method call on a module global is a write.
        if isinstance(func, ast.Attribute) and func.attr in self._MUTATORS:
            qname = self.project.resolve_global_target(func.value, self.module)
            if qname is not None and caller:
                self.project.global_accesses.append(GlobalAccess(
                    function=caller, target=qname, is_write=True,
                    locks_held=held, node=call, path=self.module.path))
        # ContextVar set/reset discipline facts.
        if isinstance(func, ast.Attribute) and func.attr in ("set", "reset"):
            var = self.project.resolve_context_var(func.value, self.module)
            if var is not None:
                self._note_ctxvar(call, func.attr, var, caller, class_name)
                return
        callee, _ = self.project.resolve_call(func, self.module, class_name)
        self._add_edge(caller, callee, CALL, dotted, call, held)

    def _spawn_of(self, call: ast.Call, dotted: str | None,
                  ) -> tuple[str | None, ast.expr | None]:
        """Classify spawn-shaped calls: ``(kind, target expr)``."""
        func = call.func
        attr = func.attr if isinstance(func, ast.Attribute) else None
        if dotted in ("asyncio.to_thread", "to_thread"):
            return TO_THREAD, call.args[0] if call.args else None
        if attr == "run_in_executor":
            return TO_THREAD, call.args[1] if len(call.args) > 1 else None
        if dotted in ("asyncio.create_task", "create_task",
                      "asyncio.ensure_future", "ensure_future"):
            arg = call.args[0] if call.args else None
            if isinstance(arg, ast.Call):
                self._consumed.add(id(arg))
                return TASK, arg.func
            return TASK, arg
        if dotted in ("threading.Thread", "Thread", "multiprocessing.Process",
                      "Process"):
            kind = PROCESS if dotted is not None and "Process" in dotted \
                else THREAD
            for keyword in call.keywords:
                if keyword.arg == "target":
                    return kind, keyword.value
            return kind, None
        if attr in _POOL_ATTRS:
            return PROCESS, call.args[0] if call.args else None
        if attr in _POOL_ATTRS_GENERIC and isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value) or ""
            if "pool" in receiver.lower():
                return PROCESS, call.args[0] if call.args else None
        if attr == "submit":
            return EXECUTOR, call.args[0] if call.args else None
        return None, None

    def _add_edge(self, caller: str, callee: str | None, kind: str,
                  dotted: str | None, node: ast.Call,
                  held: tuple[str, ...]) -> None:
        self.project.edges.append(Edge(
            caller=caller, callee=callee, kind=kind, dotted=dotted,
            node=node, path=self.module.path, locks_held=held))

    def _note_process_spawn(self, call: ast.Call, caller: str,
                            class_name: str | None, callee: str | None,
                            target_expr: ast.expr) -> None:
        args: list[SpawnArgument] = []
        payloads: list[ast.expr] = [a for a in call.args[1:]]
        for keyword in call.keywords:
            if keyword.arg in ("args", "kwds", "kwargs") or keyword.arg is None:
                payloads.append(keyword.value)
        for payload in payloads:
            elements = payload.elts if isinstance(
                payload, (ast.Tuple, ast.List)) else [payload]
            for element in elements:
                args.append(SpawnArgument(
                    origin=self._classify_value(element, class_name),
                    node=element))
        args.append(SpawnArgument(
            origin=self._classify_value(target_expr, class_name),
            node=target_expr))
        self.project.process_spawns.append(ProcessSpawn(
            function=caller, callee=callee,
            callee_class=self._bound_method_class(target_expr, class_name),
            args=tuple(args), node=call, path=self.module.path))

    def _bound_method_class(self, expr: ast.expr,
                            class_name: str | None) -> str | None:
        """Class qname when ``expr`` is a bound method reference."""
        if not isinstance(expr, ast.Attribute):
            return None
        if isinstance(expr.value, ast.Name) and expr.value.id == "self" \
                and class_name is not None:
            return f"{self.module.name}.{class_name}"
        resolved = self.project.resolve_method(expr.attr)
        if resolved is not None:
            return resolved.rsplit(".", 1)[0]
        return None

    def _classify_value(self, expr: ast.expr,
                        class_name: str | None) -> tuple[str, str]:
        """What a spawn-site argument expression is, statically."""
        if isinstance(expr, ast.Call):
            ctor = dotted_name(expr.func)
            if ctor is not None and Project._ctor_is_fork_unsafe(ctor):
                return ("unsafe", ctor)
            return ("plain", "")
        if isinstance(expr, ast.Name):
            resolved = self.project.resolve_name(expr.id, self.module)
            if resolved is not None:
                if resolved in self.project.locks:
                    return ("unsafe", self.project.locks[resolved])
                if resolved in self.project.context_vars:
                    return ("unsafe", "contextvars.ContextVar")
                module_name, _, bound = resolved.rpartition(".")
                info = self.project.modules.get(module_name)
                if info is not None:
                    ctor = info.global_ctors.get(bound)
                    if ctor is not None:
                        if Project._ctor_is_fork_unsafe(ctor):
                            return ("unsafe", ctor)
                        ctor_q = self.project.resolve_name(
                            ctor.split(".")[0], info)
                        if ctor_q in self.project.class_unsafe_attrs:
                            return ("instance", ctor_q)
                if resolved in self.project.functions:
                    return ("callable", resolved)
            local = self._local_ctor(expr.id)
            if local is not None:
                if Project._ctor_is_fork_unsafe(local):
                    return ("unsafe", local)
                local_q = self.project.resolve_name(local.split(".")[0],
                                                    self.module)
                if local_q in self.project.class_unsafe_attrs:
                    return ("instance", local_q)
            return ("plain", "")
        if (isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self" and class_name is not None):
            class_qname = f"{self.module.name}.{class_name}"
            unsafe = self.project.class_unsafe_attrs.get(class_qname, {})
            if expr.attr in unsafe:
                return ("unsafe", unsafe[expr.attr])
        return ("plain", "")

    def _local_ctor(self, name: str) -> str | None:
        """Constructor assigned to local ``name`` in the current function.

        The walker runs statement-by-statement, so a full per-function
        local table would complicate the traversal; a module-wide scan
        for ``name = ctor()`` inside function bodies is a close,
        deterministic approximation (false resolution requires the same
        local name bound to different ctors in different functions —
        and then the rule errs on the loud side).
        """
        for node in ast.walk(self.module.tree):
            if not isinstance(node, ast.Assign):
                continue
            ctor = Project._ctor_of(node.value)
            if ctor is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return ctor
        return None

    def _note_ctxvar(self, call: ast.Call, op: str, var: str,
                     caller: str, class_name: str | None) -> None:
        if op == "reset":
            token = ("discarded", "")
            if call.args:
                arg = call.args[0]
                if isinstance(arg, ast.Name):
                    token = ("local", arg.id)
                elif isinstance(arg, ast.Attribute) \
                        and isinstance(arg.value, ast.Name) \
                        and arg.value.id == "self":
                    token = ("self", arg.attr)
            self.project.ctx_resets.append(CtxVarReset(
                function=caller, class_name=class_name, var=var, token=token))
            return
        token = self._token_binding(call)
        self.project.ctx_sets.append(CtxVarSet(
            function=caller, class_name=class_name, var=var, token=token,
            node=call, path=self.module.path))

    def _token_binding(self, call: ast.Call) -> tuple[str, str]:
        """Where a ``.set()`` call's token goes, from the enclosing
        assignment (if any) in the module tree."""
        for node in ast.walk(self.module.tree):
            if isinstance(node, ast.Assign) and node.value is call:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    return ("local", target.id)
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    return ("self", target.attr)
                return ("local", "?")
            if isinstance(node, ast.AnnAssign) and node.value is call \
                    and isinstance(node.target, ast.Name):
                return ("local", node.target.id)
        return ("discarded", "")


def build_project(contexts: list) -> Project:
    """Convenience wrapper mirroring :meth:`Project.build`."""
    return Project.build(contexts)


__all__ = [
    "CALL", "TASK", "TO_THREAD", "THREAD", "EXECUTOR", "PROCESS",
    "THREAD_KINDS", "SPAWN_KINDS",
    "Acquisition", "CtxVarReset", "CtxVarSet", "Edge", "FunctionInfo",
    "GlobalAccess", "ModuleInfo", "ProcessSpawn", "Project",
    "SpawnArgument", "build_project", "dotted_name", "module_name_for",
]
