"""``python -m repro.analyze`` entry point."""

import sys

from .engine import main

sys.exit(main())
