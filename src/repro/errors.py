"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A configuration value is out of range or inconsistent."""


class TraceError(ReproError):
    """A trace file or trace object is malformed."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class GrammarError(ReproError):
    """The Sequitur grammar violated one of its invariants."""


class UnknownWorkloadError(ReproError, KeyError):
    """A workload name was requested that is not in the registry."""


class UnknownPrefetcherError(ReproError, KeyError):
    """A prefetcher name was requested that is not in the registry."""


class UnknownExperimentError(ReproError, KeyError):
    """An experiment id was requested that is not in the registry."""


class AnalysisError(ReproError):
    """The static analyzer was misconfigured or given unusable input."""


class RunnerError(ReproError):
    """The execution engine was given an invalid cell or policy."""


class RunnerTimeoutError(RunnerError):
    """A cell exceeded its per-cell wall-clock timeout."""


class CellFailedError(RunnerError):
    """A cell exhausted its retry budget and the run is not degradable."""


class CheckpointError(RunnerError):
    """A checkpoint journal is missing, unreadable, or inconsistent."""


class JobCancelled(ReproError):
    """A job was cooperatively cancelled mid-run.

    Raised from a :class:`repro.cancel.CancelToken` checkpoint inside
    the simulation engine (or the runner's retry loop) when a cancel
    frame, deadline, quota, or shutdown asked the job to stop.  Not a
    failure: carries the structured ``reason`` and the ``progress``
    (simulated accesses completed) at the moment work stopped, so the
    serve tier can bill only the work actually done.
    """

    def __init__(self, message: str, reason: str = "cancelled",
                 progress: int = 0) -> None:
        super().__init__(message)
        self.reason = reason
        self.progress = progress


class ObsError(ReproError):
    """The telemetry layer was used incorrectly (unregistered span name,
    malformed span record, or an export over an inconsistent trace)."""


class ServeError(ReproError):
    """The experiment server was misconfigured or reached a bad state."""


class ProtocolError(ServeError):
    """A serve wire message is malformed or violates the protocol."""
