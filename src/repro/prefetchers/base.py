"""The prefetcher interface consumed by the simulators.

The engine notifies a prefetcher of the two *triggering events* the
paper defines — L1-D misses and prefetch-buffer hits — and the
prefetcher responds with prefetch candidates.  Candidates carry the id
of the active stream that produced them so the prefetch buffer can
attribute later hits/evictions back to the stream (LRU promotion,
stream-end detection, stream-replacement buffer discards).

A prefetcher also exposes:

* ``metadata`` — off-chip metadata traffic counters (zero for on-chip
  designs like VLDP/ISB-idealised);
* ``first_prefetch_round_trips`` — how many *serialised* off-chip
  metadata accesses precede the first prefetch of a new stream (2 for
  STMS/Digram, 1 for Domino, 0 for on-chip designs) — the timeliness
  property Figure 6 illustrates;
* ``take_killed_streams()`` — stream ids replaced/discarded since the
  last call, whose prefetch-buffer contents the engine must drop.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..config import SystemConfig
from ..memory.metadata import MetadataTraffic

#: A prefetch candidate: (block address, issuing stream id).
Candidate = tuple[int, int]


class Prefetcher(ABC):
    """Abstract base class for all prefetchers."""

    #: Registry / display name; subclasses override.
    name: str = "base"
    #: Serialised off-chip metadata accesses before a stream's first prefetch.
    first_prefetch_round_trips: int = 0
    #: Whether the design records the global miss history off chip.
    is_temporal: bool = False

    def __init__(self, config: SystemConfig, degree: int | None = None) -> None:
        self.config = config
        self.degree = config.prefetch_degree if degree is None else degree
        if self.degree <= 0:
            raise ValueError("prefetch degree must be positive")
        self.metadata = MetadataTraffic()
        self._killed_streams: list[int] = []

    # -- triggering events ------------------------------------------------
    @abstractmethod
    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        """An L1-D demand miss (not covered by the prefetch buffer)."""

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        """A demand access hit the prefetch buffer; ``stream_id`` is the
        stream whose prefetch is being consumed."""
        return []

    # -- feedback ----------------------------------------------------------
    def on_buffer_eviction(self, block: int, stream_id: int, used: bool) -> None:
        """A block left the prefetch buffer (used or displaced unused)."""

    def take_killed_streams(self) -> list[int]:
        """Stream ids discarded since the last call (engine drops their
        buffered blocks, per Section III-B's replacement semantics)."""
        killed, self._killed_streams = self._killed_streams, []
        return killed

    def _kill_stream(self, stream_id: int) -> None:
        self._killed_streams.append(stream_id)

    # -- bookkeeping --------------------------------------------------------
    def reset_traffic(self) -> None:
        """Clear metadata counters (e.g. after warm-up)."""
        self.metadata.reset()

    def describe(self) -> str:
        """One-line human-readable description."""
        return f"{self.name} (degree {self.degree})"


class NullPrefetcher(Prefetcher):
    """The paper's baseline: no data prefetcher at all."""

    name = "baseline"

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        return []
