"""Idealised ISB (PC-localised address correlation), Jain & Lin, MICRO'13.

The paper compares against "idealized PC/AC with an infinite-size
history table", noting it performs significantly better than ISB's
practical design — so that is what we implement: per-PC miss histories
of unbounded size, with last-occurrence indexes, all held on chip (no
metadata traffic is charged and no round trips precede a prefetch).

On a triggering event from PC *p* to block *b*, the prefetcher finds
the previous occurrence of *b* in *p*'s own miss stream and prefetches
the addresses that followed it *in that PC's stream*.

Section V explains why this loses to global-history prefetchers on
server workloads: PC localisation breaks global temporal correlation,
and the predicted blocks are the next misses *of that instruction*,
which may be far in the future — by the time the PC re-executes, the
32-block prefetch buffer has evicted them.  Both effects emerge
naturally here (the workloads share PCs across documents, and the
buffer is small).
"""

from __future__ import annotations

from ..config import SystemConfig
from .base import Candidate, Prefetcher


class IsbPrefetcher(Prefetcher):
    """Idealised PC-localised address-correlating prefetcher."""

    name = "isb"
    first_prefetch_round_trips = 0  # idealised on-chip metadata
    is_temporal = True

    def __init__(self, config: SystemConfig, degree: int | None = None) -> None:
        super().__init__(config, degree)
        #: pc -> that instruction's observed miss-address sequence.
        self._pc_history: dict[int, list[int]] = {}
        #: (pc, block) -> index of the last occurrence in pc's sequence.
        self._last_occurrence: dict[tuple[int, int], int] = {}

    def _train_and_predict(self, pc: int, block: int) -> list[Candidate]:
        history = self._pc_history.setdefault(pc, [])
        key = (pc, block)
        previous = self._last_occurrence.get(key)
        candidates: list[Candidate] = []
        if previous is not None:
            successors = history[previous + 1: previous + 1 + self.degree]
            # The PC doubles as the stream id: each load instruction owns
            # one logical PC-localised stream.
            candidates = [(b, pc) for b in successors]
        self._last_occurrence[key] = len(history)
        history.append(block)
        return candidates

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        return self._train_and_predict(pc, block)

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        # A prefetch hit would have been a miss of this PC; it both trains
        # the PC's stream and advances the prediction window.
        return self._train_and_predict(pc, block)
