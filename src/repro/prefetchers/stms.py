"""Sampled Temporal Memory Streaming (STMS), Wenisch et al., HPCA 2009.

The state-of-the-art temporal prefetcher Domino is built on.  A per-core
History Table logs the global miss sequence; an Index Table maps each
miss address to its *last occurrence* in the HT.  On a miss the IT row
is fetched from memory (round trip 1), the pointer followed into the HT
(round trip 2), and the addresses after the match are prefetched.

The lookup keys on a **single** address, which is exactly the weakness
the paper identifies: one address cannot distinguish two streams that
pass through the same block, so STMS frequently replays the wrong
stream (short useful streams, Fig. 2; high overpredictions, Fig. 13).

Index updates are sampled at 12.5 % as in the original proposal; the
stream-end detection heuristic and four active streams come from the
shared :class:`~repro.prefetchers.temporal_base.GlobalHistoryPrefetcher`.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import SystemConfig
from .temporal_base import GlobalHistoryPrefetcher


class StmsPrefetcher(GlobalHistoryPrefetcher):
    """STMS: global history, single-address Index Table."""

    name = "stms"
    first_prefetch_round_trips = 2

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 unbounded: bool = True, it_entries: int | None = None,
                 seed: int = 7) -> None:
        super().__init__(config, degree, unbounded=unbounded, seed=seed)
        #: address -> HT position of its last (sampled) occurrence.
        self._index: OrderedDict[int, int] = OrderedDict()
        # Bounded mode sizes the IT like Domino's EIT in total entries.
        self._it_capacity = (None if unbounded else
                             it_entries if it_entries is not None else
                             config.eit_rows * config.eit_assoc)

    def _lookup(self, block: int) -> int | None:
        self.metadata.index_reads += 1
        pos = self._index.get(block)
        if pos is None:
            return None
        if not self.history.contains_position(pos):
            # The HT wrapped past this pointer; the entry is stale.
            del self._index[block]
            return None
        return pos

    def _update_index(self, block: int, pos: int) -> None:
        if block in self._index:
            self._index[block] = pos
            self._index.move_to_end(block)
            return
        if self._it_capacity is not None and len(self._index) >= self._it_capacity:
            self._index.popitem(last=False)
        self._index[block] = pos
