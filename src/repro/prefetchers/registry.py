"""Name -> factory registry for prefetchers.

Experiments and the CLI construct prefetchers by name; factories accept
the system config, an optional degree override, and design-specific
keyword arguments (e.g. ``unbounded`` for the temporal designs or
``depth`` for the multi-lookup prefetcher).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..config import SystemConfig
from ..core.domino import DominoPrefetcher
from ..errors import UnknownPrefetcherError
from .base import NullPrefetcher, Prefetcher
from .best_offset import BestOffsetPrefetcher
from .digram import DigramPrefetcher
from .ghb import GhbPrefetcher
from .isb import IsbPrefetcher
from .markov import MarkovPrefetcher
from .multi_lookup import MultiLookupPrefetcher
from .nextline import NextLinePrefetcher
from .sms import SmsPrefetcher
from .spatio_temporal import SpatioTemporalPrefetcher
from .stms import StmsPrefetcher
from .stride import StridePrefetcher
from .vldp import VldpPrefetcher

Factory = Callable[..., Prefetcher]

PREFETCHERS: dict[str, Factory] = {
    "baseline": NullPrefetcher,
    "nextline": NextLinePrefetcher,
    "stride": StridePrefetcher,
    "markov": MarkovPrefetcher,
    "ghb": GhbPrefetcher,
    "bop": BestOffsetPrefetcher,
    "sms": SmsPrefetcher,
    "vldp": VldpPrefetcher,
    "isb": IsbPrefetcher,
    "stms": StmsPrefetcher,
    "digram": DigramPrefetcher,
    "domino": DominoPrefetcher,
    "multi_lookup": MultiLookupPrefetcher,
    "vldp+domino": SpatioTemporalPrefetcher,
}

#: The comparison set of Section IV-D, in the paper's plotting order.
PAPER_PREFETCHERS = ("vldp", "isb", "stms", "digram", "domino")


def prefetcher_names() -> list[str]:
    """All registered prefetcher names."""
    return list(PREFETCHERS)


def make_prefetcher(name: str, config: SystemConfig,
                    degree: int | None = None, **kwargs: Any) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    try:
        factory = PREFETCHERS[name]
    except KeyError:
        raise UnknownPrefetcherError(
            f"unknown prefetcher {name!r}; known: {', '.join(PREFETCHERS)}"
        ) from None
    return factory(config, degree=degree, **kwargs)
