"""SMS — Spatial Memory Streaming (Somogyi et al., ISCA 2006).

Reference [33] of the paper and the canonical spatial prefetcher for
server workloads: it learns, per *spatial region generation*, the bit
pattern of blocks touched within a region (here: a 4 KB page), keyed by
the (PC, region-offset) of the access that opened the generation.  When
the same trigger recurs, the recorded footprint is prefetched at once.

Structures:

* **Active Generation Table (AGT)** — regions currently being observed;
  accumulates the footprint bit-vector.  A generation ends when its
  region is evicted from the AGT (capacity) — the proxy this
  trace-level model uses for the paper's eviction/invalidation ends.
* **Pattern History Table (PHT)** — (pc, offset) -> footprint, LRU.

Included as a second spatial baseline next to VLDP: SMS prefetches a
whole footprint on the trigger access (degree-insensitive burst), VLDP
chains deltas.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..config import BLOCKS_PER_PAGE, SystemConfig
from ..memory.block import block_in_page, page_of, page_offset_of
from .base import Candidate, Prefetcher


@dataclass
class _Generation:
    """One in-flight spatial region generation."""

    trigger_pc: int
    trigger_offset: int
    footprint: int = 0  # bit i set <=> offset i touched

    def touch(self, offset: int) -> None:
        self.footprint |= 1 << offset


class SmsPrefetcher(Prefetcher):
    """Spatial Memory Streaming over 4 KB regions."""

    name = "sms"
    first_prefetch_round_trips = 0

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 agt_entries: int = 32, pht_entries: int = 2048) -> None:
        super().__init__(config, degree)
        self._agt: OrderedDict[int, _Generation] = OrderedDict()
        self._agt_entries = agt_entries
        self._pht: OrderedDict[tuple[int, int], int] = OrderedDict()
        self._pht_entries = pht_entries

    # -- training ---------------------------------------------------------
    def _close_generation(self, page: int, generation: _Generation) -> None:
        """Commit a finished generation's footprint to the PHT."""
        key = (generation.trigger_pc, generation.trigger_offset)
        if key in self._pht:
            self._pht.move_to_end(key)
        elif len(self._pht) >= self._pht_entries:
            self._pht.popitem(last=False)
        self._pht[key] = generation.footprint

    def _open_generation(self, page: int, pc: int, offset: int) -> None:
        if len(self._agt) >= self._agt_entries:
            old_page, old_gen = self._agt.popitem(last=False)
            self._close_generation(old_page, old_gen)
        generation = _Generation(trigger_pc=pc, trigger_offset=offset)
        generation.touch(offset)
        self._agt[page] = generation

    # -- triggering events ------------------------------------------------
    def _trigger(self, pc: int, block: int) -> list[Candidate]:
        page = page_of(block)
        offset = page_offset_of(block)
        generation = self._agt.get(page)
        if generation is not None:
            generation.touch(offset)
            self._agt.move_to_end(page)
            return []  # generation already streaming/observed
        # New generation: predict from the recorded footprint, if any.
        candidates = self._predict(pc, page, offset)
        self._open_generation(page, pc, offset)
        return candidates

    def _predict(self, pc: int, page: int, offset: int) -> list[Candidate]:
        footprint = self._pht.get((pc, offset))
        if footprint is None:
            return []
        self._pht.move_to_end((pc, offset))
        out: list[Candidate] = []
        for bit in range(BLOCKS_PER_PAGE):
            if bit == offset or not (footprint >> bit) & 1:
                continue
            out.append((block_in_page(page, bit), page))
            if len(out) >= 4 * self.degree:  # burst cap
                break
        return out

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        return self._trigger(pc, block)

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return self._trigger(pc, block)
