"""First-order Markov prefetcher (Joseph & Grunwald, ISCA 1997).

The ancestor of all temporal prefetchers: a correlation table mapping
each miss address to its most recent successors.  Kept here as a
historical baseline for examples and ablations — it is effectively STMS
with a one-address lookup, no history replay (it can only prefetch the
immediate successors stored in the table), and on-chip metadata.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import SystemConfig
from .base import Candidate, Prefetcher


class MarkovPrefetcher(Prefetcher):
    """Correlation table of up to ``ways`` successors per miss address."""

    name = "markov"
    first_prefetch_round_trips = 0
    is_temporal = True

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 table_entries: int = 1 << 16, ways: int = 4) -> None:
        super().__init__(config, degree)
        self._table: OrderedDict[int, OrderedDict[int, None]] = OrderedDict()
        self._table_entries = table_entries
        self._ways = ways
        self._prev: int | None = None

    def _train(self, block: int) -> None:
        if self._prev is not None:
            successors = self._table.get(self._prev)
            if successors is None:
                if len(self._table) >= self._table_entries:
                    self._table.popitem(last=False)
                successors = OrderedDict()
                self._table[self._prev] = successors
            else:
                self._table.move_to_end(self._prev)
            if block in successors:
                successors.move_to_end(block)
            else:
                if len(successors) >= self._ways:
                    successors.popitem(last=False)
                successors[block] = None
        self._prev = block

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        self._train(block)
        successors = self._table.get(block)
        if not successors:
            return []
        # Most recent successors first, clipped to the degree.
        ordered = list(reversed(successors))[: self.degree]
        return [(b, 0) for b in ordered]

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return self.on_miss(pc, block)
