"""Shared machinery for global-history temporal prefetchers.

STMS and Digram differ *only* in how they look up the history — by the
last one miss address or by the last two — so everything else lives
here: the off-chip History Table, the four active streams with LRU
replacement, row-granular stream reads, degree-ahead issue with
per-prefetch-hit advancement, sampled (12.5 %) index updates, HT row
writes (one block per 12 recorded events), and the stream-end detection
heuristic (a stream whose prefetches keep getting evicted unused stops
being followed).

Subclasses implement two hooks:

* :meth:`_lookup` — find the HT position to replay from (charging one
  index-row read);
* :meth:`_update_index` — apply one sampled index update (charging a
  read-modify-write).
"""

from __future__ import annotations

import random

from ..config import SystemConfig
from ..core.history import HistoryTable
from ..core.stream import ActiveStream, StreamTable
from .base import Candidate, Prefetcher

#: History capacity used for the paper's "unlimited storage" variants.
_UNBOUNDED_CAPACITY = 1 << 30
#: Unused evictions after which stream-end detection kills a stream.
_STREAM_END_THRESHOLD = 2


class GlobalHistoryPrefetcher(Prefetcher):
    """Base class for STMS-like prefetchers over the global miss history."""

    is_temporal = True
    first_prefetch_round_trips = 2  # IT read, then HT read (Fig. 6)

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 unbounded: bool = True, seed: int = 7) -> None:
        super().__init__(config, degree)
        capacity = _UNBOUNDED_CAPACITY if unbounded else config.ht_entries
        self.unbounded = unbounded
        self.history = HistoryTable(capacity, row_entries=config.ht_row_entries)
        self.streams = StreamTable(config.active_streams)
        self._rng = random.Random(seed)
        self._prev_event: int | None = None
        self._prev_pos: int | None = None
        self._stream_end = config.stream_end_detection

    # -- subclass hooks ------------------------------------------------------
    def _lookup(self, block: int) -> int | None:
        """HT position whose successors should be replayed, or None."""
        raise NotImplementedError

    def _update_index(self, block: int, pos: int) -> None:
        """Apply one (sampled) index update for ``block`` recorded at ``pos``."""
        raise NotImplementedError

    # -- triggering events ------------------------------------------------
    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        pos = self._lookup(block)
        self._record(block)
        if pos is None:
            # No match: no stream is allocated (and no active stream is
            # sacrificed) — the prefetcher just waits for the next miss.
            return []
        stream, victim = self.streams.allocate()
        if victim is not None:
            self._kill_stream(victim.stream_id)
        self._fill_from_history(stream, pos + 1)
        return self._issue(stream, self.degree)

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        self._record(block)
        stream = self.streams.get(stream_id)
        if stream is None or stream.dead:
            return []
        stream.useful += 1
        self.streams.promote(stream_id)
        return self._issue(stream, 1)

    def on_buffer_eviction(self, block: int, stream_id: int, used: bool) -> None:
        if used:
            return
        stream = self.streams.get(stream_id)
        if stream is None:
            return
        stream.unused_evictions += 1
        if self._stream_end and stream.unused_evictions >= _STREAM_END_THRESHOLD:
            self.streams.remove(stream_id)

    # -- internals ----------------------------------------------------------
    def _record(self, block: int) -> None:
        """Append a triggering event to the HT; sampled index update."""
        pos = self.history.append(block)
        # One HT block write per completed row (the LogMiss flush).
        if (pos + 1) % self.history.row_entries == 0:
            self.metadata.history_writes += 1
        if self._rng.random() < self.config.sampling_probability:
            self._update_index(block, pos)
            self.metadata.index_reads += 1
            self.metadata.index_writes += 1
        self._prev_event = block
        self._prev_pos = pos

    def _fill_from_history(self, stream: ActiveStream, start_pos: int) -> None:
        """Read the HT row containing ``start_pos`` into the stream's
        PointBuf and leave the cursor ready for sequential extension."""
        row_end = (start_pos // self.history.row_entries + 1) * self.history.row_entries
        addrs, rows = self.history.read_forward(start_pos, row_end - start_pos)
        self.metadata.history_reads += rows
        stream.queue.extend(addrs)
        stream.ht_cursor = start_pos + len(addrs) if addrs else None

    def _extend(self, stream: ActiveStream) -> bool:
        """Fetch the next HT row for a running stream."""
        if stream.ht_cursor is None:
            return False
        before = len(stream.queue)
        self._fill_from_history(stream, stream.ht_cursor)
        return len(stream.queue) > before

    def _issue(self, stream: ActiveStream, count: int) -> list[Candidate]:
        """Pop up to ``count`` addresses from the stream for prefetching."""
        out: list[Candidate] = []
        while count > 0:
            address = stream.next_address()
            if address is None:
                if not self._extend(stream):
                    break
                continue
            out.append((address, stream.stream_id))
            stream.issued += 1
            count -= 1
        return out
