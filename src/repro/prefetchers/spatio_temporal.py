"""Spatio-temporal stack: Domino on top of VLDP (Fig. 16).

Section V-E stacks the two orthogonal techniques: VLDP captures spatial
(within-page delta) misses, including compulsory ones Domino can never
predict, while Domino replays previously observed global sequences that
cross pages.  "Domino trains and prefetches on misses that VLDP cannot
capture": in the stacked system a miss — by definition not covered by
either component — trains both, a VLDP prefetch hit trains only VLDP
(it was never a miss of the VLDP-equipped system, so Domino's history
must not contain it), and a Domino prefetch hit *would* have been a
miss of a VLDP-only system, so it trains both.

Stream ids of the two components are disambiguated by parity so buffer
feedback can be routed back to its owner.
"""

from __future__ import annotations

from ..config import SystemConfig
from ..core.domino import DominoPrefetcher
from .base import Candidate, Prefetcher
from .vldp import VldpPrefetcher


class SpatioTemporalPrefetcher(Prefetcher):
    """VLDP + Domino operating as one prefetcher."""

    name = "vldp+domino"
    #: Worst case for a new stream is Domino's single metadata round trip.
    first_prefetch_round_trips = 1
    is_temporal = True

    _VLDP = 0
    _DOMINO = 1

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 unbounded_domino: bool = False, seed: int = 7) -> None:
        super().__init__(config, degree)
        self.vldp = VldpPrefetcher(config, degree=self.degree)
        self.domino = DominoPrefetcher(config, degree=self.degree,
                                       unbounded=unbounded_domino, seed=seed)
        # Metadata traffic is Domino's (VLDP's tables are on chip).
        self.metadata = self.domino.metadata
        #: Prefetch-buffer hits attributed to each component.
        self.component_hits = {"vldp": 0, "domino": 0}

    # -- stream id namespacing --------------------------------------------
    def _tag(self, candidates: list[Candidate], owner: int) -> list[Candidate]:
        return [(block, sid * 2 + owner) for block, sid in candidates]

    @staticmethod
    def _owner_of(stream_id: int) -> int:
        return stream_id & 1

    @staticmethod
    def _inner_sid(stream_id: int) -> int:
        return stream_id >> 1

    # -- triggering events --------------------------------------------------
    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        spatial = self._tag(self.vldp.on_miss(pc, block), self._VLDP)
        temporal = self._tag(self.domino.on_miss(pc, block), self._DOMINO)
        self._collect_kills()
        return spatial + temporal

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        owner = self._owner_of(stream_id)
        inner = self._inner_sid(stream_id)
        if owner == self._VLDP:
            self.component_hits["vldp"] += 1
            out = self._tag(self.vldp.on_prefetch_hit(pc, block, inner), self._VLDP)
        else:
            self.component_hits["domino"] += 1
            # A Domino hit was a miss of the hypothetical VLDP-only system:
            # VLDP trains on it (and may prefetch from it) too.
            spatial = self._tag(self.vldp.on_miss(pc, block), self._VLDP)
            temporal = self._tag(self.domino.on_prefetch_hit(pc, block, inner),
                                 self._DOMINO)
            out = spatial + temporal
        self._collect_kills()
        return out

    def on_buffer_eviction(self, block: int, stream_id: int, used: bool) -> None:
        owner = self._owner_of(stream_id)
        inner = self._inner_sid(stream_id)
        if owner == self._VLDP:
            self.vldp.on_buffer_eviction(block, inner, used)
        else:
            self.domino.on_buffer_eviction(block, inner, used)

    def _collect_kills(self) -> None:
        for sid in self.vldp.take_killed_streams():
            self._kill_stream(sid * 2 + self._VLDP)
        for sid in self.domino.take_killed_streams():
            self._kill_stream(sid * 2 + self._DOMINO)
