"""Prefetcher implementations: the paper's baselines plus Domino.

All prefetchers implement the :class:`~repro.prefetchers.base.Prefetcher`
interface consumed by the simulators:

* :mod:`repro.prefetchers.stms` — Sampled Temporal Memory Streaming
  (single-address lookup; the state of the art the paper improves on).
* :mod:`repro.prefetchers.digram` — two-address (pair) lookup.
* :mod:`repro.prefetchers.isb` — idealised PC-localised address
  correlation (the ISB comparison point).
* :mod:`repro.prefetchers.vldp` — Variable Length Delta Prefetcher
  (the spatial comparison point, and Domino's partner in Fig. 16).
* :mod:`repro.core.domino` — Domino itself (re-exported here).
* :mod:`repro.prefetchers.multi_lookup` — idealised variable-depth
  lookup used by the motivation study (Figs. 3–5).
* :mod:`repro.prefetchers.stride`, ``nextline``, ``markov``, ``ghb``,
  ``sms``, ``best_offset`` — classic and related-work baselines for
  examples and ablations (GHB G/DC, Spatial Memory Streaming, and
  Best-Offset are all cited comparison points in the paper).
* :mod:`repro.prefetchers.spatio_temporal` — the VLDP+Domino stack.
"""

from ..core.domino import DominoPrefetcher
from .base import Prefetcher, NullPrefetcher
from .best_offset import BestOffsetPrefetcher
from .digram import DigramPrefetcher
from .ghb import GhbPrefetcher
from .isb import IsbPrefetcher
from .markov import MarkovPrefetcher
from .multi_lookup import MultiLookupPrefetcher, LookupDepthAnalyzer
from .nextline import NextLinePrefetcher
from .registry import PREFETCHERS, make_prefetcher, prefetcher_names
from .sms import SmsPrefetcher
from .spatio_temporal import SpatioTemporalPrefetcher
from .stms import StmsPrefetcher
from .stride import StridePrefetcher
from .temporal_base import GlobalHistoryPrefetcher
from .vldp import VldpPrefetcher

__all__ = [
    "BestOffsetPrefetcher",
    "DigramPrefetcher",
    "GhbPrefetcher",
    "DominoPrefetcher",
    "GlobalHistoryPrefetcher",
    "IsbPrefetcher",
    "LookupDepthAnalyzer",
    "MarkovPrefetcher",
    "MultiLookupPrefetcher",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "PREFETCHERS",
    "SmsPrefetcher",
    "Prefetcher",
    "SpatioTemporalPrefetcher",
    "StmsPrefetcher",
    "StridePrefetcher",
    "VldpPrefetcher",
    "make_prefetcher",
    "prefetcher_names",
]
