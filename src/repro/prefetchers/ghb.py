"""GHB G/DC — Global History Buffer with delta correlation.

Nesbit & Smith (HPCA 2004), reference [11] of the paper.  The GHB is
the structural ancestor of STMS's History Table: an on-chip FIFO of
recent misses with an index table pointing at each address's last
occurrence.  The G/DC variant correlates *deltas* rather than
addresses: on a miss it computes the last two global deltas, finds the
previous occurrence of that delta pair in the history, and replays the
deltas that followed it.

Included as a reference baseline: on server workloads its small
on-chip history is the binding constraint, which is exactly why the
paper's lineage (TMS → STMS) moved the metadata off chip.
"""

from __future__ import annotations

from ..config import SystemConfig
from .base import Candidate, Prefetcher


class GhbPrefetcher(Prefetcher):
    """Global History Buffer, global delta correlation (G/DC)."""

    name = "ghb"
    first_prefetch_round_trips = 0  # on-chip structure

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 ghb_entries: int = 512) -> None:
        super().__init__(config, degree)
        if ghb_entries < 4:
            raise ValueError("GHB needs at least 4 entries")
        self.ghb_entries = ghb_entries
        #: FIFO of miss addresses (newest last).
        self._history: list[int] = []
        #: Global position of _history[0] (the FIFO's base offset).
        self._base = 0
        #: (delta1, delta2) -> global position where that pair ended.
        self._index: dict[tuple[int, int], int] = {}
        self._prev_block: int | None = None
        self._prev_delta: int | None = None

    def _resident(self, pos: int) -> bool:
        return self._base <= pos < self._base + len(self._history)

    def _at(self, pos: int) -> int:
        return self._history[pos - self._base]

    def _record(self, block: int) -> int:
        pos = self._base + len(self._history)
        self._history.append(block)
        if len(self._history) > self.ghb_entries:
            del self._history[0]
            self._base += 1
        return pos

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        candidates: list[Candidate] = []
        delta = None if self._prev_block is None else block - self._prev_block
        if delta is not None and self._prev_delta is not None:
            key = (self._prev_delta, delta)
            match = self._index.get(key)
            if match is not None and self._resident(match + 1):
                candidates = self._replay_deltas(block, match)
            pos = self._record(block)
            self._index[key] = pos
        else:
            self._record(block)
        self._prev_block = block
        self._prev_delta = delta
        return candidates

    def _replay_deltas(self, block: int, match: int) -> list[Candidate]:
        """Apply the delta sequence that followed the matched pair."""
        out: list[Candidate] = []
        cursor = block
        pos = match
        for _ in range(self.degree):
            if not (self._resident(pos) and self._resident(pos + 1)):
                break
            next_delta = self._at(pos + 1) - self._at(pos)
            cursor += next_delta
            if cursor < 0:
                break
            out.append((cursor, 0))
            pos += 1
        return out

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return self.on_miss(pc, block)
