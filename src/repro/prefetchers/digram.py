"""Digram: two-address lookup temporal prefetching (Wenisch's thesis).

Identical machinery to STMS except the Index Table is keyed by the
**pair** of the last two triggering events.  Pair lookup selects longer,
more often correct streams (Fig. 2), but the prefetcher can only act
once *two* addresses of a stream have been observed — it "consumes two
accesses of a stream before issuing prefetch requests".  With the short
streams of server workloads (Fig. 12) that forfeits one useful prefetch
per stream, which is why Digram's coverage ends up slightly *below*
STMS's (Fig. 11) even though its overpredictions are much lower — the
trade-off Domino's combined one-and-two-address lookup resolves.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import SystemConfig
from .temporal_base import GlobalHistoryPrefetcher


class DigramPrefetcher(GlobalHistoryPrefetcher):
    """Pair-indexed variant of temporal memory streaming."""

    name = "digram"
    first_prefetch_round_trips = 2

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 unbounded: bool = True, it_entries: int | None = None,
                 seed: int = 7) -> None:
        super().__init__(config, degree, unbounded=unbounded, seed=seed)
        #: (previous event, event) -> HT position of the event.
        self._index: OrderedDict[tuple[int, int], int] = OrderedDict()
        self._it_capacity = (None if unbounded else
                             it_entries if it_entries is not None else
                             config.eit_rows * config.eit_assoc)

    def _lookup(self, block: int) -> int | None:
        self.metadata.index_reads += 1
        if self._prev_event is None:
            return None
        key = (self._prev_event, block)
        pos = self._index.get(key)
        if pos is None:
            return None
        if not self.history.contains_position(pos):
            del self._index[key]
            return None
        return pos

    def _update_index(self, block: int, pos: int) -> None:
        if self._prev_event is None:
            return
        key = (self._prev_event, block)
        if key in self._index:
            self._index[key] = pos
            self._index.move_to_end(key)
            return
        if self._it_capacity is not None and len(self._index) >= self._it_capacity:
            self._index.popitem(last=False)
        self._index[key] = pos
