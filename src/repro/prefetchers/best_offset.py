"""Best-Offset Prefetcher (Michaud, HPCA 2016).

Reference [62] of the paper's related-work discussion.  BOP learns a
single good prefetch *offset* D by testing candidate offsets against a
recent-requests table: candidate D scores a point whenever the current
miss address X arrives and X - D was seen recently (meaning a D-offset
prefetch issued back then would have been timely).  After a learning
round, the best-scoring offset becomes the active one and every trigger
prefetches X + D.

Included as a modern non-temporal baseline: like all offset/stride
prefetchers it cannot capture the pointer-chase misses that motivate
Domino, which shows up as near-zero coverage on OLTP.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import SystemConfig
from .base import Candidate, Prefetcher

#: Offset candidates from the original proposal (small smooth numbers).
DEFAULT_OFFSETS = (1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24,
                   25, 27, 30, 32, 36, 40)


class BestOffsetPrefetcher(Prefetcher):
    """Offset prefetcher with round-based best-offset learning."""

    name = "bop"
    first_prefetch_round_trips = 0

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 offsets: tuple[int, ...] = DEFAULT_OFFSETS,
                 rr_entries: int = 256, round_max: int = 100,
                 score_max: int = 31, bad_score: int = 1) -> None:
        super().__init__(config, degree)
        if not offsets:
            raise ValueError("need at least one candidate offset")
        self.offsets = tuple(offsets)
        self._scores = {d: 0 for d in self.offsets}
        self._round_len = 0
        self._round_max = round_max
        self._score_max = score_max
        self._bad_score = bad_score
        #: Recent requests: block -> None (LRU set).
        self._recent: OrderedDict[int, None] = OrderedDict()
        self._rr_entries = rr_entries
        self._candidate_idx = 0
        #: The currently deployed offset (None while still learning).
        self.active_offset: int | None = None

    # -- learning ---------------------------------------------------------
    def _remember(self, block: int) -> None:
        if block in self._recent:
            self._recent.move_to_end(block)
            return
        if len(self._recent) >= self._rr_entries:
            self._recent.popitem(last=False)
        self._recent[block] = None

    def _learn(self, block: int) -> None:
        candidate = self.offsets[self._candidate_idx]
        self._candidate_idx = (self._candidate_idx + 1) % len(self.offsets)
        if block - candidate in self._recent:
            self._scores[candidate] += 1
            if self._scores[candidate] >= self._score_max:
                self._finish_round()
                return
        self._round_len += 1
        if self._round_len >= self._round_max * len(self.offsets):
            self._finish_round()

    def _finish_round(self) -> None:
        best = max(self.offsets, key=lambda d: self._scores[d])
        # A hopeless best offset turns prefetching off for a round.
        self.active_offset = best if self._scores[best] > self._bad_score else None
        self._scores = {d: 0 for d in self.offsets}
        self._round_len = 0

    # -- triggering events --------------------------------------------------
    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        self._learn(block)
        self._remember(block)
        if self.active_offset is None:
            return []
        return [(block + k * self.active_offset, 0)
                for k in range(1, self.degree + 1)]

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return self.on_miss(pc, block)
