"""The motivation study's idealised variable-depth lookup (Figs. 3–5).

Section II reduces temporal prefetching to "identify the next miss from
the previously observed miss sequence" and studies, as a function of the
number of addresses a lookup matches:

* Fig. 3 — P(correct next-miss prediction | a match was found);
* Fig. 4 — P(a match is found);
* Fig. 5 — coverage/overpredictions of a prefetcher that tries an
  N-address match first and recursively falls back to fewer addresses.

Two classes implement this:

* :class:`LookupDepthAnalyzer` — an offline analysis over a miss
  sequence producing the Fig. 3/4 statistics for every depth at once.
* :class:`MultiLookupPrefetcher` — an idealised (infinite on-chip
  metadata) prefetcher usable in the trace engine; ``depth=1``
  approximates idealised STMS, ``depth=2`` idealised Digram-with-
  fallback, matching the paper's "picks the match with the largest
  number of addresses" semantics.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..core.stream import StreamTable
from .base import Candidate, Prefetcher


@dataclass
class DepthStats:
    """Lookup statistics for one match depth (Fig. 3/4 rows)."""

    depth: int
    attempts: int = 0
    matches: int = 0
    correct: int = 0

    @property
    def match_rate(self) -> float:
        """Fig. 4: fraction of lookups that find a match."""
        return self.matches / self.attempts if self.attempts else 0.0

    @property
    def accuracy_given_match(self) -> float:
        """Fig. 3: fraction of matching lookups whose prediction is right."""
        return self.correct / self.matches if self.matches else 0.0


class LookupDepthAnalyzer:
    """Offline Fig. 3/4 analysis over a triggering-event sequence."""

    def __init__(self, max_depth: int = 5) -> None:
        if max_depth <= 0:
            raise ValueError("max_depth must be positive")
        self.max_depth = max_depth
        self.stats = [DepthStats(depth=n) for n in range(1, max_depth + 1)]

    def analyze(self, events: list[int]) -> list[DepthStats]:
        """Process a miss sequence and return per-depth statistics."""
        indexes: list[dict[tuple[int, ...], int]] = [
            {} for _ in range(self.max_depth)
        ]
        pending: list[int | None] = [None] * self.max_depth
        n = len(events)
        for i, event in enumerate(events):
            # Score the predictions made at the previous event.
            for d in range(self.max_depth):
                if pending[d] is not None:
                    if pending[d] == event:
                        self.stats[d].correct += 1
                    pending[d] = None
            # Look up every depth with the suffix ending at this event.
            for d in range(self.max_depth):
                length = d + 1
                if i + 1 < length:
                    continue
                key = tuple(events[i - length + 1: i + 1])
                self.stats[d].attempts += 1
                pos = indexes[d].get(key)
                if pos is not None:
                    self.stats[d].matches += 1
                    if pos + 1 < n:
                        pending[d] = events[pos + 1]
                indexes[d][key] = i
        return self.stats


class MultiLookupPrefetcher(Prefetcher):
    """Idealised temporal prefetcher with recursive N..1-address lookup."""

    name = "multi_lookup"
    first_prefetch_round_trips = 0  # idealised metadata
    is_temporal = True

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 depth: int = 2) -> None:
        super().__init__(config, degree)
        if depth <= 0:
            raise ValueError("lookup depth must be positive")
        self.depth = depth
        self._history: list[int] = []
        self._indexes: list[dict[tuple[int, ...], int]] = [{} for _ in range(depth)]
        self._recent: deque[int] = deque(maxlen=depth)
        self.streams = StreamTable(config.active_streams)
        #: stream id -> history cursor for idealised extension.
        self._cursors: dict[int, int] = {}

    def _find_match(self, block: int) -> int | None:
        """Deepest-first recursive lookup ending at the current event."""
        suffix = list(self._recent) + [block]
        for length in range(min(self.depth, len(suffix)), 0, -1):
            key = tuple(suffix[-length:])
            pos = self._indexes[length - 1].get(key)
            if pos is not None:
                return pos
        return None

    def _train(self, block: int) -> None:
        self._recent.append(block)
        pos = len(self._history)
        self._history.append(block)
        suffix = list(self._recent)
        for length in range(1, min(self.depth, len(suffix)) + 1):
            self._indexes[length - 1][tuple(suffix[-length:])] = pos

    def _issue(self, stream_id: int, count: int) -> list[Candidate]:
        cursor = self._cursors.get(stream_id)
        if cursor is None:
            return []
        out: list[Candidate] = []
        while count > 0 and cursor < len(self._history):
            out.append((self._history[cursor], stream_id))
            cursor += 1
            count -= 1
        self._cursors[stream_id] = cursor
        return out

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        pos = self._find_match(block)
        self._train(block)
        if pos is None:
            return []
        stream, victim = self.streams.allocate()
        if victim is not None:
            self._kill_stream(victim.stream_id)
            self._cursors.pop(victim.stream_id, None)
        self._cursors[stream.stream_id] = pos + 1
        return self._issue(stream.stream_id, self.degree)

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        self._train(block)
        stream = self.streams.get(stream_id)
        if stream is None or stream.dead:
            return []
        self.streams.promote(stream_id)
        return self._issue(stream_id, 1)
