"""Classic per-PC stride prefetcher (Baer & Chen style reference table).

Not part of the paper's comparison set — prior work had already shown
simple stride prefetching ineffective for server workloads, which is why
the paper's baseline carries no data prefetcher — but included as a
reference baseline for the examples and ablation benches, and to
demonstrate that our synthetic workloads reproduce that ineffectiveness.

Each load PC owns a reference-table entry with the classic two-state
confirmation: a stride must repeat once before prefetches are issued.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import SystemConfig
from .base import Candidate, Prefetcher


class _RptEntry:
    __slots__ = ("last_block", "stride", "confirmed")

    def __init__(self, last_block: int) -> None:
        self.last_block = last_block
        self.stride = 0
        self.confirmed = False


class StridePrefetcher(Prefetcher):
    """Per-PC stride detection with single-confirmation state machine."""

    name = "stride"
    first_prefetch_round_trips = 0

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 table_entries: int = 256) -> None:
        super().__init__(config, degree)
        self._table: OrderedDict[int, _RptEntry] = OrderedDict()
        self._table_entries = table_entries

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self._table_entries:
                self._table.popitem(last=False)
            self._table[pc] = _RptEntry(block)
            return []
        self._table.move_to_end(pc)
        stride = block - entry.last_block
        if stride != 0 and stride == entry.stride:
            entry.confirmed = True
        elif stride != 0:
            entry.stride = stride
            entry.confirmed = False
        entry.last_block = block
        if not entry.confirmed or entry.stride == 0:
            return []
        return [(block + k * entry.stride, pc) for k in range(1, self.degree + 1)]

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return self.on_miss(pc, block)
