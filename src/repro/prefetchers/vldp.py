"""Variable Length Delta Prefetcher (VLDP), Shevgoor et al., MICRO 2015.

The paper's spatial comparison point (and Domino's partner in the
Fig. 16 spatio-temporal stack).  VLDP predicts the next block *within a
page* from the recent history of deltas in that page, preferring the
prediction of the deepest delta-history table that matches:

* **DHB** — Delta History Buffer: per-page last offset and up to three
  most recent deltas; 16 entries, LRU (per Section IV-D).
* **DPT-1..3** — Delta Prediction Tables mapping the last 1, 2, or 3
  deltas to the next delta; infinite size (per Section IV-D).
* **OPT** — Offset Prediction Table: predicts the first delta of a page
  from the offset of its first access; 64 entries.

For degrees above one, VLDP feeds its own predictions back through the
DPTs ("uses the prediction as input to the metadata tables to make more
predictions") — the mechanism Section V-B blames for its accuracy
collapse at degree 4 on server workloads.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..config import BLOCKS_PER_PAGE, SystemConfig
from ..memory.block import block_in_page, page_of, page_offset_of
from .base import Candidate, Prefetcher

_MAX_DELTA_HISTORY = 3


@dataclass
class _DhbEntry:
    """Per-page state in the Delta History Buffer."""

    last_offset: int
    deltas: list[int] = field(default_factory=list)

    def push_delta(self, delta: int) -> None:
        self.deltas.append(delta)
        if len(self.deltas) > _MAX_DELTA_HISTORY:
            del self.deltas[0]


class VldpPrefetcher(Prefetcher):
    """Multi-degree delta prefetcher with variable-length matching."""

    name = "vldp"
    first_prefetch_round_trips = 0  # on-chip metadata

    def __init__(self, config: SystemConfig, degree: int | None = None,
                 dhb_entries: int = 16, opt_entries: int = 64) -> None:
        super().__init__(config, degree)
        self._dhb: OrderedDict[int, _DhbEntry] = OrderedDict()
        self._dhb_entries = dhb_entries
        #: One table per history length; keys are delta tuples.
        self._dpt: list[dict[tuple[int, ...], int]] = [
            {} for _ in range(_MAX_DELTA_HISTORY)
        ]
        self._opt: OrderedDict[int, int] = OrderedDict()
        self._opt_entries = opt_entries

    # -- training -----------------------------------------------------------
    def _observe(self, page: int, offset: int) -> _DhbEntry:
        entry = self._dhb.get(page)
        if entry is None:
            if len(self._dhb) >= self._dhb_entries:
                self._dhb.popitem(last=False)
            entry = _DhbEntry(last_offset=offset)
            self._dhb[page] = entry
            return entry
        self._dhb.move_to_end(page)
        delta = offset - entry.last_offset
        if delta != 0:
            if not entry.deltas:
                # Second access of the page trains the OPT.
                self._update_opt(entry.last_offset, delta)
            self._update_dpts(entry.deltas, delta)
            entry.push_delta(delta)
            entry.last_offset = offset
        return entry

    def _update_dpts(self, history: list[int], delta: int) -> None:
        for length in range(1, min(len(history), _MAX_DELTA_HISTORY) + 1):
            key = tuple(history[-length:])
            self._dpt[length - 1][key] = delta

    def _update_opt(self, first_offset: int, delta: int) -> None:
        if first_offset in self._opt:
            self._opt[first_offset] = delta
            self._opt.move_to_end(first_offset)
            return
        if len(self._opt) >= self._opt_entries:
            self._opt.popitem(last=False)
        self._opt[first_offset] = delta

    # -- prediction ----------------------------------------------------------
    def _predict_delta(self, history: list[int]) -> int | None:
        """Deepest-table-first delta prediction."""
        for length in range(min(len(history), _MAX_DELTA_HISTORY), 0, -1):
            delta = self._dpt[length - 1].get(tuple(history[-length:]))
            if delta is not None:
                return delta
        return None

    def _chain_predictions(self, page: int, offset: int,
                           history: list[int]) -> list[Candidate]:
        """Feed predictions back through the DPTs up to the degree."""
        candidates: list[Candidate] = []
        speculative = list(history)
        cursor = offset
        for _ in range(self.degree):
            delta = self._predict_delta(speculative)
            if delta is None:
                break
            cursor += delta
            if not (0 <= cursor < BLOCKS_PER_PAGE):
                break  # VLDP never crosses a page
            candidates.append((block_in_page(page, cursor), page))
            speculative.append(delta)
            if len(speculative) > _MAX_DELTA_HISTORY:
                del speculative[0]
        return candidates

    def _trigger(self, block: int) -> list[Candidate]:
        page = page_of(block)
        offset = page_offset_of(block)
        known = page in self._dhb
        entry = self._observe(page, offset)
        if not known:
            # First touch of the page: only the OPT can help.
            delta = self._opt.get(offset)
            if delta is None:
                return []
            target = offset + delta
            if not (0 <= target < BLOCKS_PER_PAGE):
                return []
            first = [(block_in_page(page, target), page)]
            return first + self._chain_predictions(page, target, [delta])[: self.degree - 1]
        return self._chain_predictions(page, offset, entry.deltas)

    # -- triggering events -----------------------------------------------
    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        return self._trigger(block)

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return self._trigger(block)
