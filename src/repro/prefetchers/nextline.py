"""Next-line prefetcher.

The paper's baseline uses a next-line *instruction* prefetcher; the
data-side equivalent is the simplest possible spatial prefetcher and is
included as a reference point for examples and sanity tests (it should
do modestly on the spatial fraction of a workload and nothing for its
temporal fraction).
"""

from __future__ import annotations

from ..config import SystemConfig
from .base import Candidate, Prefetcher


class NextLinePrefetcher(Prefetcher):
    """Prefetch the next ``degree`` sequential blocks on every miss."""

    name = "nextline"
    first_prefetch_round_trips = 0

    def __init__(self, config: SystemConfig, degree: int | None = None) -> None:
        super().__init__(config, degree)

    def on_miss(self, pc: int, block: int) -> list[Candidate]:
        return [(block + k, 0) for k in range(1, self.degree + 1)]

    def on_prefetch_hit(self, pc: int, block: int, stream_id: int) -> list[Candidate]:
        return [(block + k, 0) for k in range(1, self.degree + 1)]
