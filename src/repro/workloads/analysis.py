"""Workload characterisation: the statistics behind the Table II knobs.

Given a generated trace (plus the system config for L1 filtering), this
module measures the properties the paper's discussion leans on —
misses per kilo-instruction, miss-stream repetitiveness, address reuse,
dependence density, spatial locality — so a workload configuration can
be validated against its intended character (tests do exactly that)
and users can characterise their own custom workloads before choosing
a prefetcher.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SystemConfig
from ..memory.block import page_of
from ..sequitur.analysis import analyze_sequence
from ..sim.engine import collect_miss_stream
from ..sim.trace import MemoryTrace


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured characteristics of one trace under one system config."""

    name: str
    accesses: int
    instructions: int
    misses: int
    footprint_blocks: int
    miss_footprint_blocks: int
    mpki: float                 # L1-D misses per kilo-instruction
    miss_repetitiveness: float  # Sequitur opportunity of the miss stream
    mean_stream_length: float
    dependent_frac: float       # fraction of accesses flagged dependent
    page_locality: float        # fraction of misses in the same page as
                                # the previous miss (spatial signal)
    unique_pcs: int

    def summary(self) -> str:
        return (f"{self.name}: mpki={self.mpki:.1f} "
                f"repetitiveness={self.miss_repetitiveness:.1%} "
                f"streams~{self.mean_stream_length:.1f} "
                f"dependent={self.dependent_frac:.1%} "
                f"page-local={self.page_locality:.1%}")


def profile_trace(trace: MemoryTrace, config: SystemConfig | None = None,
                  max_sequitur_misses: int = 120_000) -> WorkloadProfile:
    """Characterise ``trace`` (L1-filtered under ``config``).

    ``max_sequitur_misses`` caps the grammar-inference input so very
    long traces stay cheap to profile; repetitiveness is estimated on
    the prefix beyond that length.
    """
    config = config if config is not None else SystemConfig()
    miss_stream = collect_miss_stream(trace, config)
    miss_blocks = [block for _, block in miss_stream]

    analysis = analyze_sequence(miss_blocks[:max_sequitur_misses])

    same_page = 0
    for prev, cur in zip(miss_blocks, miss_blocks[1:], strict=False):
        if page_of(prev) == page_of(cur):
            same_page += 1
    page_locality = same_page / (len(miss_blocks) - 1) if len(miss_blocks) > 1 else 0.0

    instructions = trace.instructions
    mpki = len(miss_blocks) / instructions * 1000 if instructions else 0.0

    return WorkloadProfile(
        name=trace.name,
        accesses=len(trace),
        instructions=instructions,
        misses=len(miss_blocks),
        footprint_blocks=trace.footprint_blocks,
        miss_footprint_blocks=len(set(miss_blocks)),
        mpki=mpki,
        miss_repetitiveness=analysis.opportunity,
        mean_stream_length=analysis.mean_stream_length,
        dependent_frac=float(trace.deps.mean()) if len(trace) else 0.0,
        page_locality=page_locality,
        unique_pcs=len(set(trace.pcs.tolist())),
    )
