"""Synthetic server workload generators (the Table II substitute).

The paper drives its evaluation with Flexus traces of nine commercial
server workloads (CloudSuite, SPECweb99, TPC-C).  Those traces are not
available, so this package synthesises memory-access traces with the
statistical properties temporal prefetchers are sensitive to — see
:mod:`repro.workloads.synthetic` for the generative model and
:mod:`repro.workloads.server` for the nine named configurations.
"""

from .analysis import WorkloadProfile, profile_trace
from .base import WorkloadConfig
from .synthetic import SyntheticWorkload, generate_trace
from .server import SERVER_WORKLOADS, workload_names, get_workload
from .mixes import STANDARD_MIXES, WorkloadMix, get_mix, mix_names, mix_traces
from .suite import WorkloadSuite, default_suite

__all__ = [
    "SERVER_WORKLOADS",
    "STANDARD_MIXES",
    "WorkloadMix",
    "get_mix",
    "mix_names",
    "mix_traces",
    "SyntheticWorkload",
    "WorkloadConfig",
    "WorkloadProfile",
    "profile_trace",
    "WorkloadSuite",
    "default_suite",
    "generate_trace",
    "get_workload",
    "workload_names",
]
