"""Workload configuration: the knobs of the synthetic trace model.

Temporal prefetchers care about a handful of statistical properties of
the miss stream; each maps to one field here:

===========================  =====================================================
property                     field(s)
===========================  =====================================================
repetitiveness               ``mutation_rate`` (low = repetitive), ``noise_rate``
temporal stream length       ``doc_length_mean``, ``truncation_prob``
one-address ambiguity        ``shared_frac``, ``hot_pool_blocks`` (addresses that
                             begin/continue several different streams — the very
                             effect that makes STMS pick wrong streams)
spatial predictability       ``spatial_doc_frac`` (what VLDP can capture)
pointer-chase serialisation  ``dependent_frac`` (drives MLP in the timing model)
working-set pressure         ``dataset_blocks``, ``hot_pool_blocks``
PC-locality breakdown        ``pc_pool`` shared across documents (why ISB's
                             PC-localisation hurts on server workloads)
compute intensity            ``work_mean`` (non-memory instructions per access)
===========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..errors import ConfigError


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of one synthetic server workload."""

    name: str
    description: str = ""

    # -- address space ---------------------------------------------------
    #: Size of the cold dataset in 64 B blocks (must exceed the LLC).
    dataset_blocks: int = 1 << 21
    #: Size of the hot shared pool the documents draw from.
    hot_pool_blocks: int = 1 << 14

    # -- temporal documents (recurring miss sequences) ---------------------
    #: Number of distinct recurring sequences ("temporal documents").
    n_documents: int = 2048
    #: Mean document length (geometric distribution).
    doc_length_mean: float = 10.0
    #: Minimum document length.
    doc_length_min: int = 3
    #: Zipf skew of document popularity (0 = uniform).
    zipf_alpha: float = 0.8
    #: Probability a document element is drawn from the shared hot pool
    #: (shared addresses create the one-address lookup ambiguity).
    shared_frac: float = 0.35
    #: Fraction of documents that are sequential runs inside one page.
    spatial_doc_frac: float = 0.12
    #: Documents are generated in *families* of this many variants that
    #: share their first ``family_prefix`` addresses and then diverge —
    #: the paper's "two streams that begin with the same miss address",
    #: the case where a single-address lookup (STMS) picks wrong streams.
    family_size: int = 1
    #: Shared head length within a family.
    family_prefix: int = 1

    # -- concurrency texture ------------------------------------------------
    #: Number of concurrently replaying contexts (server request handlers
    #: interleaving their miss streams in the global history).
    interleave: int = 1
    #: Per-element probability of switching to another live context
    #: (lower = burstier interleaving).
    switch_prob: float = 0.2

    # -- replay perturbation ----------------------------------------------
    #: Per-element probability of abandoning the current replay early.
    truncation_prob: float = 0.06
    #: Per-element probability of substituting a random address.
    mutation_rate: float = 0.02
    #: Per-element probability of injecting a cold random access first.
    noise_rate: float = 0.05

    # -- core/ISA texture ---------------------------------------------------
    #: Probability an element is a dependent (pointer-chase) access.
    dependent_frac: float = 0.25
    #: Number of distinct PCs in the binary's miss-causing loop bodies.
    pc_pool: int = 96
    #: PCs a single document cycles through.
    pcs_per_doc: int = 4
    #: Mean non-memory instructions between accesses (Poisson).
    work_mean: float = 6.0
    #: Memory-level-parallelism texture: accesses arrive in bursts of
    #: this many (on average) with near-zero instruction gaps inside a
    #: burst and proportionally longer gaps between bursts (the overall
    #: ``work_mean`` is preserved).  Independent accesses within a burst
    #: fit in one ROB window and overlap their misses — high values
    #: reproduce the paper's high-MLP workloads (Web Search, Media
    #: Streaming) whose miss latency is already hidden.
    mlp_cluster: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("workload name must be non-empty")
        if self.dataset_blocks <= 0 or self.hot_pool_blocks <= 0:
            raise ConfigError("address-space sizes must be positive")
        if self.hot_pool_blocks > self.dataset_blocks:
            raise ConfigError("hot pool cannot exceed the dataset")
        if self.n_documents <= 0:
            raise ConfigError("n_documents must be positive")
        if self.doc_length_mean < self.doc_length_min:
            raise ConfigError("doc_length_mean must be >= doc_length_min")
        for frac_name in ("shared_frac", "spatial_doc_frac", "truncation_prob",
                          "mutation_rate", "noise_rate", "dependent_frac"):
            value = getattr(self, frac_name)
            if not (0.0 <= value <= 1.0):
                raise ConfigError(f"{frac_name} must lie in [0, 1], got {value}")
        if self.pc_pool <= 0 or self.pcs_per_doc <= 0:
            raise ConfigError("PC parameters must be positive")
        if self.work_mean < 0:
            raise ConfigError("work_mean must be non-negative")
        if self.family_size <= 0 or self.family_prefix <= 0:
            raise ConfigError("family parameters must be positive")
        if self.family_prefix >= self.doc_length_min:
            raise ConfigError("family_prefix must be shorter than the "
                              "minimum document length")
        if self.interleave <= 0:
            raise ConfigError("interleave must be positive")
        if self.mlp_cluster < 1.0:
            raise ConfigError("mlp_cluster must be >= 1")
        if not (0.0 < self.switch_prob <= 1.0):
            raise ConfigError("switch_prob must lie in (0, 1]")

    def scaled(self, **overrides: Any) -> "WorkloadConfig":
        """Copy with fields replaced (mirrors :meth:`SystemConfig.scaled`)."""
        return replace(self, **overrides)
