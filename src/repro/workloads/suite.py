"""Workload suite: iteration and trace caching across experiments.

Every figure in the paper sweeps the same nine workloads, and most
experiments want the very same trace (same workload, length, seed) so
results are comparable across prefetchers.  :class:`WorkloadSuite`
memoises generated traces keyed by (name, length, seed).
"""

from __future__ import annotations

from collections.abc import Iterator

from ..sim.trace import MemoryTrace
from .base import WorkloadConfig
from .server import SERVER_WORKLOADS, get_workload
from .synthetic import SyntheticWorkload


class WorkloadSuite:
    """A set of workload configs plus a trace cache."""

    def __init__(self, configs: dict[str, WorkloadConfig] | None = None,
                 seed: int = 1234) -> None:
        self.configs = dict(configs) if configs is not None else dict(SERVER_WORKLOADS)
        self.seed = seed
        self._workloads: dict[str, SyntheticWorkload] = {}
        self._traces: dict[tuple[str, int, int], MemoryTrace] = {}

    @property
    def names(self) -> list[str]:
        return list(self.configs)

    def workload(self, name: str) -> SyntheticWorkload:
        """Instantiated (document library built) workload, memoised."""
        if name not in self._workloads:
            config = self.configs.get(name) or get_workload(name)
            self._workloads[name] = SyntheticWorkload(config, seed=self.seed)
        return self._workloads[name]

    def trace(self, name: str, n_accesses: int, seed: int | None = None) -> MemoryTrace:
        """Generated trace, memoised by (name, length, seed)."""
        eff_seed = self.seed if seed is None else seed
        key = (name, n_accesses, eff_seed)
        if key not in self._traces:
            self._traces[key] = self.workload(name).generate(n_accesses, seed=eff_seed)
        return self._traces[key]

    def core_traces(self, name: str, n_accesses: int,
                    n_cores: int = 4) -> list[MemoryTrace]:
        """Per-core traces for the multicore timing simulation: every
        core runs the same application (same document library) over its
        own request stream (distinct generation seeds)."""
        return [self.trace(name, n_accesses, seed=self.seed + 1000 + core)
                for core in range(n_cores)]

    def traces(self, n_accesses: int) -> Iterator[tuple[str, MemoryTrace]]:
        """Iterate (name, trace) over the whole suite."""
        for name in self.configs:
            yield name, self.trace(name, n_accesses)

    def clear_cache(self) -> None:
        self._traces.clear()


def default_suite(seed: int = 1234) -> WorkloadSuite:
    """The nine paper workloads with the default seed."""
    return WorkloadSuite(seed=seed)
