"""Multiprogrammed workload mixes for the multicore timing model.

The paper runs homogeneous quad-core workloads (four cores of the same
server application).  Consolidated servers also run *mixes*; this
module builds per-core trace lists where each core runs a different
named workload, enabling heterogeneous contention studies on the same
shared-LLC/shared-bandwidth substrate (an extension experiment beyond
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import UnknownWorkloadError
from ..sim.trace import MemoryTrace
from .server import SERVER_WORKLOADS
from .suite import WorkloadSuite


@dataclass(frozen=True)
class WorkloadMix:
    """A named assignment of workloads to cores."""

    name: str
    per_core: tuple[str, ...]

    def __post_init__(self) -> None:
        unknown = [w for w in self.per_core if w not in SERVER_WORKLOADS]
        if unknown:
            raise UnknownWorkloadError(
                f"mix {self.name!r} references unknown workloads: {unknown}")


#: Ready-made four-core mixes spanning the behaviour space.
STANDARD_MIXES: dict[str, WorkloadMix] = {
    "web_tier": WorkloadMix(
        "web_tier", ("web_apache", "web_zeus", "web_search", "web_apache")),
    "data_tier": WorkloadMix(
        "data_tier", ("oltp", "data_serving", "oltp", "data_serving")),
    "analytics": WorkloadMix(
        "analytics", ("mapreduce_c", "mapreduce_w", "mapreduce_c", "sat_solver")),
    "consolidated": WorkloadMix(
        "consolidated", ("oltp", "web_apache", "media_streaming", "mapreduce_w")),
}


def mix_names() -> list[str]:
    return list(STANDARD_MIXES)


def get_mix(name: str) -> WorkloadMix:
    try:
        return STANDARD_MIXES[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown mix {name!r}; known: {', '.join(STANDARD_MIXES)}"
        ) from None


def mix_traces(mix: WorkloadMix | str, n_accesses_per_core: int,
               suite: WorkloadSuite | None = None,
               seed: int = 1234) -> list[MemoryTrace]:
    """Per-core traces for a mix, one independent seed per core."""
    if isinstance(mix, str):
        mix = get_mix(mix)
    suite = suite if suite is not None else WorkloadSuite(seed=seed)
    return [suite.trace(workload, n_accesses_per_core, seed=seed + 31 * core)
            for core, workload in enumerate(mix.per_core)]
