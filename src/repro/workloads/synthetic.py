"""The synthetic temporal-correlated trace generator.

Generative model
----------------

A workload owns a library of *temporal documents*: short sequences of
block addresses that recur during execution (the paper's "streams",
which exist because programs consist of loops).  The trace is produced
by repeatedly sampling a document (Zipf-weighted, so some sequences are
hot) and replaying it with perturbations:

* **truncation** — the replay may stop early, producing the short-stream
  distribution of Fig. 12;
* **mutation** — an element may be substituted, degrading repetitiveness
  (high for SAT Solver, whose dataset is generated on the fly);
* **noise** — cold random accesses interleave with the replay.

Crucially, documents draw a configurable fraction of their addresses
from a *shared hot pool*, so the same block address appears inside many
different documents.  That is exactly the first-order ambiguity the
paper identifies: a single miss address cannot distinguish two streams
that begin with (or pass through) the same address, so STMS picks wrong
streams while two-address lookups disambiguate.

PCs come from a small pool shared across documents, reproducing the
paper's observation that PC localisation breaks global temporal
correlation in server code.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, TraceError
from ..sim.trace import MemoryTrace
from .base import WorkloadConfig

# Offset separating hot-pool block numbers from cold dataset blocks so
# noise/mutation addresses never collide with document addresses.
_COLD_BASE = 1 << 40


class SyntheticWorkload:
    """Instantiated document library for one workload + seed.

    Instantiation is separated from generation so tests can inspect the
    document library, and so several traces (e.g. the four cores of the
    multicore run) can be drawn from the *same* library — the cores of a
    server run the same binary over the same hot structures.
    """

    def __init__(self, config: WorkloadConfig, seed: int = 1234) -> None:
        self.config = config
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._hot_pool = self._build_hot_pool(rng)
        self.documents, self.doc_pcs, self.doc_deps = self._build_documents(rng)
        self._weights = self._zipf_weights(rng)

    # -- construction ---------------------------------------------------
    def _build_hot_pool(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        # Spread hot blocks over the dataset so they do not alias into a
        # few cache sets.
        pool = rng.choice(cfg.dataset_blocks, size=cfg.hot_pool_blocks, replace=False)
        return pool.astype(np.int64)

    def _doc_length(self, rng: np.random.Generator) -> int:
        cfg = self.config
        # Geometric with the configured mean, floored at the minimum.
        mean_excess = max(cfg.doc_length_mean - cfg.doc_length_min, 0.01)
        return cfg.doc_length_min + int(rng.geometric(1.0 / (1.0 + mean_excess)) - 1)

    def _build_documents(
        self, rng: np.random.Generator
    ) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Create the document library, grouped into families.

        A family shares its first ``family_prefix`` addresses across
        ``family_size`` variants and diverges afterwards.  Shared heads
        are what defeat a single-address lookup: the last occurrence of
        the head in the global history belongs to whichever variant ran
        most recently.
        """
        cfg = self.config
        docs: list[np.ndarray] = []
        pcs: list[np.ndarray] = []
        deps: list[np.ndarray] = []
        family_head: np.ndarray | None = None
        family_pcs: np.ndarray | None = None
        family_left = 0
        for _ in range(cfg.n_documents):
            length = self._doc_length(rng)
            spatial = rng.random() < cfg.spatial_doc_frac
            if spatial:
                elements = self._spatial_document(rng, length)
                family_left = 0  # spatial runs do not join families
            else:
                elements = self._temporal_document(rng, length)
            doc_pc_count = min(cfg.pcs_per_doc, length)
            doc_pc_set = rng.integers(0, cfg.pc_pool, size=doc_pc_count)
            pc_seq = doc_pc_set[np.arange(length) % doc_pc_count].astype(np.int64)
            if not spatial and cfg.family_size > 1:
                if family_left <= 0:
                    # This document founds a new family.
                    family_head = elements[: cfg.family_prefix].copy()
                    family_pcs = pc_seq[: cfg.family_prefix].copy()
                    family_left = cfg.family_size
                else:
                    # Variant: same head addresses, executed by the same
                    # instructions, diverging afterwards.
                    if family_head is None or family_pcs is None:
                        raise TraceError(
                            "family_left > 0 before any family head was founded")
                    elements[: len(family_head)] = family_head
                    pc_seq[: len(family_pcs)] = family_pcs
                family_left -= 1
            dep_seq = (rng.random(length) < cfg.dependent_frac).astype(np.int8)
            dep_seq[0] = 0  # a stream head cannot depend on a prior miss
            docs.append(elements)
            pcs.append(pc_seq)
            deps.append(dep_seq)
        return docs, pcs, deps

    def _temporal_document(self, rng: np.random.Generator, length: int) -> np.ndarray:
        cfg = self.config
        from_pool = rng.random(length) < cfg.shared_frac
        elements = np.where(
            from_pool,
            self._hot_pool[rng.integers(0, len(self._hot_pool), size=length)],
            rng.integers(0, cfg.dataset_blocks, size=length),
        )
        return elements.astype(np.int64)

    def _spatial_document(self, rng: np.random.Generator, length: int) -> np.ndarray:
        cfg = self.config
        blocks_per_page = 64
        length = min(length, blocks_per_page)
        page = int(rng.integers(0, max(cfg.dataset_blocks // blocks_per_page, 1)))
        start = int(rng.integers(0, blocks_per_page - length + 1))
        base = page * blocks_per_page + start
        return np.arange(base, base + length, dtype=np.int64)

    def _zipf_weights(self, rng: np.random.Generator) -> np.ndarray:
        cfg = self.config
        ranks = np.arange(1, cfg.n_documents + 1, dtype=np.float64)
        weights = ranks ** (-cfg.zipf_alpha)
        rng.shuffle(weights)  # decouple popularity from creation order
        return weights / weights.sum()

    # -- generation -------------------------------------------------------
    def generate(self, n_accesses: int, seed: int | None = None) -> MemoryTrace:
        """Emit a trace of (at least) ``n_accesses`` accesses.

        The replay loop appends whole (possibly truncated) document
        replays until the target length is reached, then trims.
        """
        if n_accesses <= 0:
            raise ConfigError("n_accesses must be positive")
        cfg = self.config
        rng = np.random.default_rng(self.seed + 1 if seed is None else seed)

        if cfg.interleave > 1:
            blocks, pcs, deps = self._generate_interleaved(rng, n_accesses)
        else:
            blocks, pcs, deps = self._generate_sequential(rng, n_accesses)
        works = self._generate_works(rng, n_accesses)
        return MemoryTrace(pcs=pcs, blocks=blocks, deps=deps, works=works,
                           name=cfg.name)

    def _generate_works(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Instruction gaps; bursty when ``mlp_cluster`` > 1.

        Burst members follow each other within a couple of instructions
        (so independent misses overlap in the ROB); burst leaders carry
        a proportionally longer gap so the mean instructions-per-access
        stays at ``work_mean``.
        """
        cfg = self.config
        if cfg.mlp_cluster <= 1.0:
            return rng.poisson(cfg.work_mean, size=n).astype(np.int32)
        leader_prob = 1.0 / cfg.mlp_cluster
        leaders = rng.random(n) < leader_prob
        long_gaps = rng.poisson(cfg.work_mean * cfg.mlp_cluster, size=n)
        short_gaps = rng.integers(0, 3, size=n)
        return np.where(leaders, long_gaps, short_gaps).astype(np.int32)

    def _pick_documents(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.choice(self.config.n_documents, size=count, p=self._weights)

    def _generate_sequential(
        self, rng: np.random.Generator, n_accesses: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Replays run back to back (single-context execution)."""
        cfg = self.config
        out_pcs: list[np.ndarray] = []
        out_blocks: list[np.ndarray] = []
        out_deps: list[np.ndarray] = []
        total = 0
        # Draw document choices in batches to amortise rng overhead.
        batch = max(256, n_accesses // max(int(cfg.doc_length_mean), 1) // 4)
        while total < n_accesses:
            for doc_id in self._pick_documents(rng, batch):
                blocks, pcs, deps = self._replay_document(rng, int(doc_id))
                out_blocks.append(blocks)
                out_pcs.append(pcs)
                out_deps.append(deps)
                total += len(blocks)
                if total >= n_accesses:
                    break
        return (np.concatenate(out_blocks)[:n_accesses],
                np.concatenate(out_pcs)[:n_accesses],
                np.concatenate(out_deps)[:n_accesses])

    def _generate_interleaved(
        self, rng: np.random.Generator, n_accesses: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``interleave`` contexts replay concurrently, emitting bursts.

        A server's global miss sequence is the interleaving of many
        request handlers; burst length follows a geometric distribution
        with mean ``1/switch_prob``.
        """
        cfg = self.config
        out_blocks: list[int] = []
        out_pcs: list[int] = []
        out_deps: list[int] = []
        # Each live context: [blocks, pcs, deps, cursor].
        contexts: list[list] = []
        while len(out_blocks) < n_accesses:
            while len(contexts) < cfg.interleave:
                doc_id = int(self._pick_documents(rng, 1)[0])
                blocks, pcs, deps = self._replay_document(rng, doc_id)
                contexts.append([blocks.tolist(), pcs.tolist(), deps.tolist(), 0])
            ctx = contexts[rng.integers(len(contexts))]
            burst = int(rng.geometric(cfg.switch_prob))
            blocks, pcs, deps, cursor = ctx
            stop = min(cursor + burst, len(blocks))
            out_blocks.extend(blocks[cursor:stop])
            out_pcs.extend(pcs[cursor:stop])
            out_deps.extend(deps[cursor:stop])
            if stop >= len(blocks):
                contexts.remove(ctx)
            else:
                ctx[3] = stop
        return (np.asarray(out_blocks[:n_accesses], dtype=np.int64),
                np.asarray(out_pcs[:n_accesses], dtype=np.int64),
                np.asarray(out_deps[:n_accesses], dtype=np.int8))

    def _replay_document(
        self, rng: np.random.Generator, doc_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One perturbed replay of document ``doc_id``."""
        cfg = self.config
        doc = self.documents[doc_id]
        pcs = self.doc_pcs[doc_id]
        deps = self.doc_deps[doc_id]
        length = len(doc)

        # Truncation: geometric stopping point.
        if cfg.truncation_prob > 0.0:
            keep = int(rng.geometric(cfg.truncation_prob))
            length = min(length, max(keep, 1))
        blocks = doc[:length].copy()
        doc_pcs = pcs[:length].copy()
        doc_deps = deps[:length].copy()

        # Mutation: substitute random cold addresses in place.
        if cfg.mutation_rate > 0.0:
            mutate = rng.random(length) < cfg.mutation_rate
            n_mut = int(mutate.sum())
            if n_mut:
                blocks[mutate] = _COLD_BASE + rng.integers(
                    0, cfg.dataset_blocks, size=n_mut)

        # Noise: interleave cold accesses before randomly chosen elements.
        if cfg.noise_rate > 0.0:
            noisy = rng.random(length) < cfg.noise_rate
            n_noise = int(noisy.sum())
            if n_noise:
                noise_blocks = _COLD_BASE + rng.integers(
                    0, cfg.dataset_blocks, size=n_noise)
                noise_pcs = rng.integers(0, cfg.pc_pool, size=n_noise)
                positions = np.flatnonzero(noisy)
                blocks = np.insert(blocks, positions, noise_blocks)
                doc_pcs = np.insert(doc_pcs, positions, noise_pcs)
                doc_deps = np.insert(doc_deps, positions, 0)

        return blocks, doc_pcs, doc_deps.astype(np.int8)


def generate_trace(config: WorkloadConfig, n_accesses: int,
                   seed: int = 1234) -> MemoryTrace:
    """Convenience wrapper: instantiate the workload and generate a trace."""
    return SyntheticWorkload(config, seed=seed).generate(n_accesses)
