"""The nine named server workloads (Table II analogues).

Each configuration encodes the paper's qualitative description of the
corresponding commercial workload into the generative knobs of
:class:`~repro.workloads.base.WorkloadConfig`:

* **Data Serving** (Cassandra/YCSB) — key-value reads over a large LSM
  store; moderate temporal correlation, a visible spatial component
  (spatio-temporal prefetching lifts VLDP's coverage strongly, Fig. 16).
* **MapReduce-C** (Hadoop Bayes classification) — scan-dominated, long
  repetitive sequences, lowest bandwidth demand of the suite.
* **MapReduce-W** (Hadoop/Mahout) — "temporal streams … are drastically
  short", so metadata latency cannot be amortised (Fig. 14 discussion).
* **Media Streaming** (Darwin) — long sequential segment reads, almost
  no pointer-chasing, so misses already overlap (high MLP) and
  prefetching buys little time even at high coverage.
* **OLTP** (Oracle/TPC-C) — B-tree and tuple pointer chasing: long
  dependent chains, many concurrent transactions interleaving their
  misses, and *heavy* stream-head sharing (big families), the case
  where two-address lookup beats STMS by the widest margin (19 %
  coverage at degree 4).
* **SAT Solver** (Cloud9) — "produces its dataset on-the-fly", i.e. low
  repetitiveness: high mutation and noise; every prefetcher shows low
  coverage and high overpredictions.
* **Web Apache / Web Zeus** (SPECweb99) — many concurrent connections,
  hot request-handling structures shared across streams; the most
  bandwidth-hungry workloads.
* **Web Search** (Nutch/Lucene) — independent posting-list probes:
  moderate correlation, high MLP.

The knob-to-symptom mapping is documented in
:mod:`repro.workloads.base`; DESIGN.md §2 records why the substitution
for the paper's Flexus traces preserves the evaluated behaviours.
"""

from __future__ import annotations

from ..errors import UnknownWorkloadError
from .base import WorkloadConfig

SERVER_WORKLOADS: dict[str, WorkloadConfig] = {
    "data_serving": WorkloadConfig(
        name="data_serving",
        description="Cassandra 0.7.3 / YCSB (CloudSuite Data Serving)",
        n_documents=3000, doc_length_mean=12.0, doc_length_min=5,
        zipf_alpha=0.7, hot_pool_blocks=8192,
        shared_frac=0.85, spatial_doc_frac=0.15,
        family_size=3, family_prefix=1, interleave=2, switch_prob=0.15,
        truncation_prob=0.03, mutation_rate=0.015, noise_rate=0.04,
        dependent_frac=0.30, pc_pool=512, pcs_per_doc=8, work_mean=45.0, mlp_cluster=1.5,
    ),
    "mapreduce_c": WorkloadConfig(
        name="mapreduce_c",
        description="Hadoop 0.20.2 Bayesian classification (MapReduce-C)",
        n_documents=2000, doc_length_mean=16.0, doc_length_min=6,
        zipf_alpha=0.7, hot_pool_blocks=8192,
        shared_frac=0.70, spatial_doc_frac=0.30,
        family_size=2, family_prefix=1, interleave=1,
        truncation_prob=0.02, mutation_rate=0.01, noise_rate=0.02,
        dependent_frac=0.10, pc_pool=256, pcs_per_doc=14, work_mean=18.0, mlp_cluster=5.0,
    ),
    "mapreduce_w": WorkloadConfig(
        name="mapreduce_w",
        description="Hadoop 0.20.2 / Mahout 0.4 (MapReduce-W)",
        n_documents=4000, doc_length_mean=5.0, doc_length_min=3,
        zipf_alpha=0.7, hot_pool_blocks=8192,
        shared_frac=0.80, spatial_doc_frac=0.15,
        family_size=3, family_prefix=1, interleave=2, switch_prob=0.25,
        truncation_prob=0.15, mutation_rate=0.02, noise_rate=0.06,
        dependent_frac=0.12, pc_pool=384, pcs_per_doc=4, work_mean=50.0, mlp_cluster=2.0,
    ),
    "media_streaming": WorkloadConfig(
        name="media_streaming",
        description="Darwin Streaming Server 6.0.3, 7500 clients",
        n_documents=1500, doc_length_mean=18.0, doc_length_min=8,
        zipf_alpha=0.6, hot_pool_blocks=8192,
        shared_frac=0.60, spatial_doc_frac=0.35,
        family_size=1, interleave=1,
        truncation_prob=0.01, mutation_rate=0.008, noise_rate=0.02,
        dependent_frac=0.02, pc_pool=192, pcs_per_doc=16, work_mean=15.0, mlp_cluster=6.0,
    ),
    "oltp": WorkloadConfig(
        name="oltp",
        description="Oracle 10g, TPC-C 100 warehouses (OLTP)",
        n_documents=4000, doc_length_mean=13.0, doc_length_min=6,
        zipf_alpha=0.5, hot_pool_blocks=8192,
        shared_frac=0.90, spatial_doc_frac=0.04,
        family_size=4, family_prefix=1, interleave=3, switch_prob=0.12,
        truncation_prob=0.03, mutation_rate=0.015, noise_rate=0.04,
        dependent_frac=0.60, pc_pool=640, pcs_per_doc=10, work_mean=50.0, mlp_cluster=1.0,),
    "sat_solver": WorkloadConfig(
        name="sat_solver",
        description="Cloud9 parallel symbolic execution (SAT Solver)",
        n_documents=5000, doc_length_mean=7.0, doc_length_min=3,
        zipf_alpha=0.4, hot_pool_blocks=8192,
        shared_frac=0.80, spatial_doc_frac=0.06,
        family_size=3, family_prefix=1, interleave=3, switch_prob=0.25,
        truncation_prob=0.10, mutation_rate=0.18, noise_rate=0.18,
        dependent_frac=0.30, pc_pool=768, pcs_per_doc=6, work_mean=55.0, mlp_cluster=1.5,
    ),
    "web_apache": WorkloadConfig(
        name="web_apache",
        description="Apache HTTP Server v2.0, SPECweb99, 16 K connections",
        n_documents=3500, doc_length_mean=12.0, doc_length_min=5,
        zipf_alpha=1.0, hot_pool_blocks=8192,
        shared_frac=0.85, spatial_doc_frac=0.10,
        family_size=3, family_prefix=1, interleave=2, switch_prob=0.15,
        truncation_prob=0.04, mutation_rate=0.02, noise_rate=0.06,
        dependent_frac=0.30, pc_pool=512, pcs_per_doc=9, work_mean=30.0, mlp_cluster=1.0,),
    "web_search": WorkloadConfig(
        name="web_search",
        description="Nutch 1.2 / Lucene 3.0.1 (CloudSuite Web Search)",
        n_documents=3500, doc_length_mean=10.0, doc_length_min=4,
        zipf_alpha=0.7, hot_pool_blocks=8192,
        shared_frac=0.80, spatial_doc_frac=0.15,
        family_size=2, family_prefix=1, interleave=2, switch_prob=0.2,
        truncation_prob=0.06, mutation_rate=0.04, noise_rate=0.08,
        dependent_frac=0.06, pc_pool=384, pcs_per_doc=8, work_mean=18.0, mlp_cluster=5.0,
    ),
    "web_zeus": WorkloadConfig(
        name="web_zeus",
        description="Zeus Web Server v4.3, SPECweb99, 16 K connections",
        n_documents=3000, doc_length_mean=13.0, doc_length_min=5,
        zipf_alpha=1.0, hot_pool_blocks=8192,
        shared_frac=0.82, spatial_doc_frac=0.12,
        family_size=3, family_prefix=1, interleave=2, switch_prob=0.15,
        truncation_prob=0.035, mutation_rate=0.018, noise_rate=0.05,
        dependent_frac=0.28, pc_pool=512, pcs_per_doc=9, work_mean=35.0, mlp_cluster=1.0,),
}


def workload_names() -> list[str]:
    """Names of the nine server workloads, in the paper's order."""
    return list(SERVER_WORKLOADS)


def get_workload(name: str) -> WorkloadConfig:
    """Look up a workload configuration by name."""
    try:
        return SERVER_WORKLOADS[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; known: {', '.join(SERVER_WORKLOADS)}"
        ) from None
