"""Trace-driven prefetcher evaluation engine.

Implements the paper's trace-based methodology (Section IV-C/D): all
prefetchers are trained on the L1-D miss sequence and prefetch into a
32-block buffer near the L1-D.  For each access the engine:

1. looks up the L1-D (allocating on miss);
2. on an L1 miss, consults the prefetch buffer — a hit there is a
   *covered* miss and a triggering event of kind "prefetch hit", a miss
   is an uncovered miss and a triggering event of kind "miss";
3. forwards the triggering event to the prefetcher and inserts the
   returned candidates into the buffer (skipping blocks already
   resident in L1 or buffer);
4. routes buffer evictions and stream discards back to the prefetcher
   (stream-end detection / replacement semantics).

Outputs are :class:`SimulationResult` objects carrying the coverage
metrics, the metadata traffic, per-stream useful-run lengths, and the
raw miss sequence when requested (for Sequitur analysis).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..cancel import NEVER, current_token
from ..config import SystemConfig
from ..errors import SimulationError
from ..memory.cache import Cache
from ..memory.metadata import MetadataTraffic
from ..memory.prefetch_buffer import PrefetchBuffer
from ..obs import DEBUG
from ..obs import names as obs_names
from ..obs import scope as obs_scope
from ..obs import timed
from ..obs.trace import span as trace_span
from ..prefetchers.base import NullPrefetcher, Prefetcher
from ..stats.metrics import CoverageMetrics
from ..stats.streamstats import StreamLengthStats
from .trace import MemoryTrace

if TYPE_CHECKING:
    from ..obs.runtime import Scope
    from .fastpath import L1Filter

#: Engine telemetry scope.  Disabled (one global read per guard) until
#: :func:`repro.obs.configure` turns the process's telemetry on; events
#: and counters only ever observe, so instrumented results are
#: bit-identical to uninstrumented ones.
_OBS = obs_scope("sim.engine")


@dataclass
class SimulationResult:
    """Everything measured by one trace-driven run."""

    workload: str
    prefetcher: str
    degree: int
    metrics: CoverageMetrics
    metadata: MetadataTraffic
    stream_lengths: StreamLengthStats = field(default_factory=StreamLengthStats)
    #: (pc, block) pairs of uncovered misses, when collection was requested.
    miss_stream: list[tuple[int, int]] | None = None
    #: Free-form per-prefetcher extras (e.g. spatio-temporal split).
    extras: dict = field(default_factory=dict)

    # Convenience passthroughs used all over the experiments.
    @property
    def coverage(self) -> float:
        return self.metrics.coverage

    @property
    def overprediction_ratio(self) -> float:
        return self.metrics.overprediction_ratio

    @property
    def accuracy(self) -> float:
        return self.metrics.accuracy

    def summary(self) -> str:
        return (f"{self.workload}/{self.prefetcher} degree={self.degree}: "
                f"coverage={self.coverage:.1%} "
                f"overpred={self.overprediction_ratio:.1%} "
                f"accuracy={self.accuracy:.1%}")


class TraceSimulator:
    """Drives one prefetcher over one trace."""

    def __init__(self, config: SystemConfig, prefetcher: Prefetcher | None = None,
                 collect_misses: bool = False) -> None:
        self.config = config
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher(config)
        self.collect_misses = collect_misses
        self.l1 = Cache(config.l1d)
        self.buffer = PrefetchBuffer(config.prefetch_buffer_blocks)
        self.metrics = CoverageMetrics()
        self._stream_useful: defaultdict[int, int] = defaultdict(int)
        self._streams_seen: set[int] = set()
        self._miss_stream: list[tuple[int, int]] = []

    @staticmethod
    def _validate_warmup(warmup: int, n_accesses: int) -> None:
        """``warmup`` must leave at least one measured access.

        A warm-up window covering the whole trace used to slip through
        silently: the counter reset at ``i == warmup`` never fired and
        the "measured" result quietly included the training window.
        """
        if warmup < 0:
            raise SimulationError(f"warmup must be non-negative, got {warmup}")
        if warmup and warmup >= n_accesses:
            raise SimulationError(
                f"warmup of {warmup} accesses leaves no measured window "
                f"in a trace of {n_accesses} accesses")

    def run(self, trace: MemoryTrace, warmup: int = 0) -> SimulationResult:
        """Simulate the whole trace; ``warmup`` leading accesses train
        state but are excluded from the reported counters."""
        self._validate_warmup(warmup, len(trace))
        pcs, blocks, _, _ = trace.as_lists()
        prefetcher = self.prefetcher
        l1 = self.l1
        buffer = self.buffer
        metrics = self.metrics
        stream_useful = self._stream_useful
        streams_seen = self._streams_seen
        tel = _OBS
        tracing = tel.enabled
        # Hoisted out of the hot loop: per-access debug events are the
        # single most expensive emit path, and at info level and above
        # every one of them would be filtered out after the call anyway.
        emit_debug = tracing and tel.enabled_for(DEBUG)
        # Trigger/prefetch tallies accumulate in locals and flush to the
        # registry once per run: one integer add per access instead of a
        # Counter.inc() call, which is what keeps spans-on overhead
        # inside the bench_obs.py budget.
        n_miss = n_phit = n_issued = n_evict = n_over = 0
        # Cooperative cancellation: bounded-staleness checkpoints every
        # check_every accesses.  Without a token the NEVER sentinel makes
        # the in-loop test a single always-false integer compare, and
        # checkpoints only observe, so results are bit-identical either
        # way (pinned by tests/sim/test_cancel.py).
        cancel = current_token()
        published = 0
        if cancel is not None:
            cancel.raise_if_cancelled()
            check_every = cancel.check_every
            next_check = check_every
        else:
            next_check = NEVER

        with trace_span(obs_names.SPAN_SIMULATE, trace=trace.name,
                        accesses=len(blocks)), \
                timed("simulate", emit=False):
            for i in range(len(blocks)):
                if i >= next_check:
                    cancel.checkpoint(i - published)
                    published = i
                    next_check = i + check_every
                if i == warmup and warmup > 0:
                    self._reset_counters()
                    metrics = self.metrics
                block = blocks[i]
                pc = pcs[i]
                metrics.accesses += 1
                if l1.access(block):
                    metrics.l1_hits += 1
                    continue
                entry = buffer.lookup(block)
                if entry is not None:
                    metrics.prefetch_hits += 1
                    stream_useful[entry.stream_id] += 1
                    if tracing:
                        n_phit += 1
                        if emit_debug:
                            tel.debug(obs_names.EVT_TRIGGER, kind="prefetch_hit", i=i,
                                      pc=pc, block=block, stream=entry.stream_id)
                    candidates = prefetcher.on_prefetch_hit(pc, block, entry.stream_id)
                else:
                    metrics.misses += 1
                    if self.collect_misses:
                        self._miss_stream.append((pc, block))
                    if tracing:
                        n_miss += 1
                        if emit_debug:
                            tel.debug(obs_names.EVT_TRIGGER, kind="miss", i=i,
                                      pc=pc, block=block)
                    candidates = prefetcher.on_miss(pc, block)

                killed = prefetcher.take_killed_streams()
                for sid in killed:
                    buffer.invalidate_stream(sid)

                for cand_block, sid in candidates:
                    if buffer.probe(cand_block) or l1.probe(cand_block):
                        continue
                    metrics.prefetches_issued += 1
                    streams_seen.add(sid)
                    if tracing:
                        n_issued += 1
                        if emit_debug:
                            tel.debug(obs_names.EVT_PREFETCH, block=cand_block,
                                      stream=sid)
                    victim = buffer.insert(cand_block, sid)
                    if victim is not None:
                        if tracing:
                            if victim.used:
                                n_evict += 1
                                if emit_debug:
                                    tel.debug(obs_names.EVT_EVICTION,
                                              block=victim.block,
                                              stream=victim.stream_id)
                            else:
                                n_over += 1
                                if emit_debug:
                                    tel.debug(obs_names.EVT_OVERPREDICTION,
                                              block=victim.block,
                                              stream=victim.stream_id)
                        prefetcher.on_buffer_eviction(
                            victim.block, victim.stream_id, victim.used)

        if cancel is not None:
            cancel.advance(len(blocks) - published)
        if tracing:
            self._flush_tallies(tel, n_miss, n_phit, n_issued, n_evict,
                                n_over)
        return self._emit_result(self._finalise(trace.name))

    def run_filtered(self, filt: "L1Filter", warmup: int = 0) -> SimulationResult:
        """Replay only the L1 misses recorded in ``filt``.

        Bit-identical to :meth:`run` on the originating trace (pinned by
        ``tests/sim/test_fastpath.py``): prefetches never fill the L1,
        so its hit/miss split and eviction sequence are
        prefetcher-independent and :func:`repro.sim.fastpath.build_l1_filter`
        precomputes them once per ``(trace, l1 config)``.  The replay
        walks the ~miss-rate fraction of accesses, maintains an exact L1
        residency set from the recorded evictions (all the candidate
        filter needs), and reconstructs the hit counters analytically.
        The simulator's own ``self.l1`` is untouched — every L1 fact
        comes from the filter.
        """
        n_accesses = filt.n_accesses
        self._validate_warmup(warmup, n_accesses)
        prefetcher = self.prefetcher
        buffer = self.buffer
        metrics = self.metrics
        stream_useful = self._stream_useful
        streams_seen = self._streams_seen
        tel = _OBS
        tracing = tel.enabled
        emit_debug = tracing and tel.enabled_for(DEBUG)
        if tracing:
            tel.counter(obs_names.MET_FASTPATH_REPLAYS).inc()
        # Local tallies, flushed once after the loop (see run()).
        n_miss = n_phit = n_issued = n_evict = n_over = 0
        # Cancellation checkpoints keyed to the *original* access index,
        # so progress is metered in simulated accesses exactly as run()
        # meters it even though this loop only visits the misses.
        cancel = current_token()
        published = 0
        if cancel is not None:
            cancel.raise_if_cancelled()
            check_every = cancel.check_every
            next_check = check_every
        else:
            next_check = NEVER

        # One packed materialisation, cached on the filter — every cell
        # sharing this filter (memo or store mmap) reuses the same rows.
        rows = filt.replay_rows()
        resident: set[int] = set()
        reset_done = warmup == 0

        with trace_span(obs_names.SPAN_SIMULATE, trace=filt.trace_name,
                        accesses=n_accesses, mode="replay"), \
                timed("simulate", emit=False):
            for i, pc, block, victim_block in rows:
                if i >= next_check:
                    cancel.checkpoint(i - published)
                    published = i
                    next_check = i + check_every
                if not reset_done and i >= warmup:
                    self._reset_counters()
                    metrics = self.metrics
                    reset_done = True
                if victim_block >= 0:
                    resident.discard(victim_block)
                resident.add(block)
                entry = buffer.lookup(block)
                if entry is not None:
                    metrics.prefetch_hits += 1
                    stream_useful[entry.stream_id] += 1
                    if tracing:
                        n_phit += 1
                        if emit_debug:
                            tel.debug(obs_names.EVT_TRIGGER, kind="prefetch_hit", i=i,
                                      pc=pc, block=block, stream=entry.stream_id)
                    candidates = prefetcher.on_prefetch_hit(pc, block, entry.stream_id)
                else:
                    metrics.misses += 1
                    if self.collect_misses:
                        self._miss_stream.append((pc, block))
                    if tracing:
                        n_miss += 1
                        if emit_debug:
                            tel.debug(obs_names.EVT_TRIGGER, kind="miss", i=i,
                                      pc=pc, block=block)
                    candidates = prefetcher.on_miss(pc, block)

                killed = prefetcher.take_killed_streams()
                for sid in killed:
                    buffer.invalidate_stream(sid)

                for cand_block, sid in candidates:
                    if buffer.probe(cand_block) or cand_block in resident:
                        continue
                    metrics.prefetches_issued += 1
                    streams_seen.add(sid)
                    if tracing:
                        n_issued += 1
                        if emit_debug:
                            tel.debug(obs_names.EVT_PREFETCH, block=cand_block,
                                      stream=sid)
                    victim = buffer.insert(cand_block, sid)
                    if victim is not None:
                        if tracing:
                            if victim.used:
                                n_evict += 1
                                if emit_debug:
                                    tel.debug(obs_names.EVT_EVICTION,
                                              block=victim.block,
                                              stream=victim.stream_id)
                            else:
                                n_over += 1
                                if emit_debug:
                                    tel.debug(obs_names.EVT_OVERPREDICTION,
                                              block=victim.block,
                                              stream=victim.stream_id)
                        prefetcher.on_buffer_eviction(
                            victim.block, victim.stream_id, victim.used)

        if not reset_done:
            # Every recorded miss fell inside the warm-up window; the
            # unfiltered loop would still have reset at i == warmup.
            self._reset_counters()
        metrics = self.metrics
        # The skipped hit iterations only ever touched these two
        # counters; the engine's per-access increments reduce to them.
        measured = n_accesses - warmup
        metrics.accesses = measured
        metrics.l1_hits = measured - (metrics.misses + metrics.prefetch_hits)
        if cancel is not None:
            cancel.advance(n_accesses - published)
        if tracing:
            self._flush_tallies(tel, n_miss, n_phit, n_issued, n_evict,
                                n_over)
        return self._emit_result(self._finalise(filt.trace_name))

    @staticmethod
    def _flush_tallies(tel: "Scope", n_miss: int, n_phit: int, n_issued: int,
                       n_evict: int, n_over: int) -> None:
        """Flush the hot loop's local trigger tallies to the registry."""
        if n_miss:
            tel.counter(obs_names.MET_TRIGGER_MISS).inc(n_miss)
        if n_phit:
            tel.counter(obs_names.MET_TRIGGER_PREFETCH_HIT).inc(n_phit)
        if n_issued:
            tel.counter(obs_names.MET_PREFETCH_ISSUED).inc(n_issued)
        if n_evict:
            tel.counter(obs_names.MET_EVICTION_USED).inc(n_evict)
        if n_over:
            tel.counter(obs_names.MET_OVERPREDICTION).inc(n_over)

    def _emit_result(self, result: SimulationResult) -> SimulationResult:
        tel = _OBS
        if tel.enabled:
            tel.info(obs_names.EVT_RUN_COMPLETE, workload=result.workload,
                     prefetcher=result.prefetcher, degree=result.degree,
                     accesses=result.metrics.accesses,
                     misses=result.metrics.misses,
                     prefetch_hits=result.metrics.prefetch_hits,
                     prefetches_issued=result.metrics.prefetches_issued,
                     overpredictions=result.metrics.overpredictions,
                     coverage=round(result.coverage, 6),
                     accuracy=round(result.accuracy, 6))
        return result

    def _reset_counters(self) -> None:
        """Forget warm-up measurements but keep all simulated state."""
        self.metrics = CoverageMetrics()
        self.buffer.reset_stats()
        self.prefetcher.reset_traffic()
        self._stream_useful.clear()
        self._streams_seen.clear()
        self._miss_stream.clear()

    def _finalise(self, workload_name: str) -> SimulationResult:
        self.buffer.drain()
        self.metrics.overpredictions = self.buffer.stats.evicted_unused
        lengths = StreamLengthStats()
        # Sorted so per-stream accumulation order (and thus any
        # order-sensitive downstream rendering) is run-invariant.
        for sid in sorted(self._streams_seen):
            lengths.add(self._stream_useful.get(sid, 0))
        extras = {}
        component_hits = getattr(self.prefetcher, "component_hits", None)
        if component_hits is not None:
            extras["component_hits"] = dict(component_hits)
        return SimulationResult(
            workload=workload_name,
            prefetcher=self.prefetcher.name,
            degree=self.prefetcher.degree,
            metrics=self.metrics,
            metadata=self.prefetcher.metadata,
            stream_lengths=lengths,
            miss_stream=self._miss_stream if self.collect_misses else None,
            extras=extras,
        )


def simulate_trace(trace: MemoryTrace, config: SystemConfig,
                   prefetcher: Prefetcher | None = None,
                   collect_misses: bool = False,
                   warmup: int = 0) -> SimulationResult:
    """One-shot convenience wrapper around :class:`TraceSimulator`."""
    sim = TraceSimulator(config, prefetcher, collect_misses=collect_misses)
    return sim.run(trace, warmup=warmup)


def collect_miss_stream(trace: MemoryTrace, config: SystemConfig) -> list[tuple[int, int]]:
    """The baseline (no-prefetcher) L1-D miss sequence of a trace —
    the input to Sequitur opportunity analysis and the Fig. 3/4 study."""
    result = simulate_trace(trace, config, NullPrefetcher(config),
                            collect_misses=True)
    if result.miss_stream is None:  # collect_misses=True guarantees otherwise
        raise SimulationError("simulate_trace dropped the requested miss stream")
    return result.miss_stream
