"""Prefetcher-independent L1-D filtering (the cross-cell fast path).

In the trace-driven methodology (Section IV-C/D) prefetches only ever
fill the 32-block buffer next to the L1-D — the L1 itself is touched by
demand accesses alone.  The L1 hit/miss split of a trace is therefore a
pure function of ``(trace, l1 config)``: it is identical for every
prefetcher and every degree in a fig11/fig13-style grid.  This module
computes that split **once** and packages everything the engine needs
to replay only the miss events:

* the access ``indices`` of the L1 misses (so warm-up windows still
  land on the right boundary);
* the ``pcs`` and ``blocks`` of those misses (the prefetchers' entire
  input);
* the ``evicted`` block of each miss allocation (``-1`` when the set
  had a free way), which lets the replay maintain an exact L1
  *residency set* for candidate filtering without simulating the cache.

Residency is sufficient because the engine consults the L1 for only two
things: the hit/miss verdict of a demand access and the
``probe(candidate)`` membership test before a buffer insert.  LRU order
influences *which* block a future miss evicts — and that is precisely
what the ``evicted`` array records — so replaying misses against the
residency set is bit-identical to running the full cache
(:meth:`repro.sim.engine.TraceSimulator.run_filtered` carries the
replay; ``tests/sim/test_fastpath.py`` pins the equivalence).

Three build kernels produce identical filters (cross-checked in tests):

``1`` (default)
    A vectorised per-set sweep: accesses are grouped by cache set with
    one stable argsort, a numpy mask proves most re-references are
    *certain hits* (a block re-accessed within ``ways`` set-local
    accesses cannot have been evicted in between), and only the
    remaining uncertain positions run through a small Python sweep that
    tracks residency and LRU recency via per-block occurrence pointers.
``jit``
    An optional numba-compiled per-access kernel.  When numba is not
    importable (it is an optional dependency) the build soft-falls-back
    to the vectorised sweep — ``DOMINO_FASTPATH=jit`` is always safe.
``legacy``
    The original scalar loop over the :class:`~repro.memory.cache.Cache`
    model.  Kept as the reference implementation for cross-checks and
    as the PR 9-era baseline for ``benchmarks/bench_fastpath.py``.

Filters serialise two ways: the original JSON-inline codec (zlib +
base64 over little-endian int64, still accepted on load) and the
binary sidecar codec — a real ``.npy`` file of the four int64 columns
written next to the JSON envelope by :class:`repro.runner.store` and
opened by workers via ``np.load(..., mmap_mode="r")`` (zero-copy, page
cache shared across processes).  The cache *key* of a filter is owned
by :func:`repro.runner.cells.l1_filter_key` — the runner layer knows
what identifies a generated trace; this module only knows how to
build, encode, and replay filters.
"""

from __future__ import annotations

import base64
import io
import os
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from ..cancel import NEVER, current_token
from ..config import SystemConfig
from ..errors import SimulationError
from ..memory.cache import Cache
from ..obs import names as obs_names
from ..obs import scope as obs_scope
from ..obs.trace import span as trace_span
from .trace import MemoryTrace

#: Bump when the filter semantics change (rides next to the runner's
#: ``CODE_VERSION`` inside the artifact key material).  The binary
#: sidecar codec did *not* bump this: the filter content is unchanged,
#: old JSON-inline payloads still load, and keys stay stable.
FASTPATH_VERSION = 1

#: Environment toggle (``DOMINO_FASTPATH``): ``0`` forces every cell
#: through the unfiltered engine loop, ``1`` (default) uses the
#: vectorised build, ``jit`` prefers the numba kernel (falling back to
#: ``1`` when numba is absent), and ``legacy`` keeps the scalar build
#: plus uncached replay prep (benchmark baseline).  Results are
#: bit-identical in every mode.
ENV_TOGGLE = "DOMINO_FASTPATH"

#: Recognised ``DOMINO_FASTPATH`` modes (anything else reads as ``1``).
MODES = ("0", "1", "jit", "legacy")

_OFF_VALUES = ("0", "false", "off", "no")

_ARRAY_FIELDS = ("indices", "pcs", "blocks", "evicted")

#: JSON-inline codec marker (PR 5-era payloads; still loadable).
_CODEC = "zlib+b64:<i8"

#: Binary sidecar codec marker: the envelope stays JSON, the four int64
#: columns live in a ``.npy`` sidecar opened with ``mmap_mode="r"``.
BINARY_CODEC = "npy:<i8"

#: Fastpath telemetry scope (off until obs.configure()).
_OBS = obs_scope("sim.fastpath")


def mode() -> str:
    """The active ``DOMINO_FASTPATH`` mode: ``0``/``1``/``jit``/``legacy``.

    Unset or unrecognised values read as ``1`` (vectorised, on); the
    historical falsy spellings (``false``/``off``/``no``) read as ``0``.
    """
    raw = os.environ.get(ENV_TOGGLE, "1").strip().lower()
    if raw in _OFF_VALUES:
        return "0"
    if raw in ("jit", "legacy"):
        return raw
    return "1"


def enabled() -> bool:
    """Whether the filtered replay path is active (default: yes)."""
    return mode() != "0"


@dataclass(frozen=True)
class L1Filter:
    """The compact uncovered-access stream of one ``(trace, l1)`` pair.

    ``indices[j]``/``pcs[j]``/``blocks[j]`` describe the ``j``-th L1
    miss of the trace; ``evicted[j]`` is the block the miss allocation
    displaced (``-1`` for none).  ``n_accesses`` is the length of the
    originating trace (hits included), which the replay needs to place
    warm-up boundaries and to reconstruct the hit counters.

    All four arrays are **read-only**, whichever way the filter was
    produced — built from a trace, decoded from a JSON payload, or
    mapped from a binary sidecar — so a filter shared through the
    in-process memo or the page cache can never be mutated under
    another cell's feet.
    """

    trace_name: str
    n_accesses: int
    indices: np.ndarray
    pcs: np.ndarray
    blocks: np.ndarray
    evicted: np.ndarray
    #: Packed replay rows, built lazily once per filter object (see
    #: :meth:`replay_rows`); never part of identity or comparisons.
    _rows: list[list[int]] | None = field(default=None, init=False,
                                          repr=False, compare=False)

    def __post_init__(self) -> None:
        n = len(self.indices)
        for fname in _ARRAY_FIELDS:
            arr = getattr(self, fname)
            if arr.ndim != 1 or len(arr) != n:
                raise SimulationError(
                    f"L1 filter field {fname} must be 1-D of length {n}")
            # Uniform ownership semantics on every construction path:
            # freshly built arrays are owned-and-frozen, frombuffer
            # views and read-only memmaps are already non-writable.
            arr.setflags(write=False)
        if n > self.n_accesses:
            raise SimulationError(
                f"L1 filter has {n} misses for {self.n_accesses} accesses")

    @property
    def n_misses(self) -> int:
        return len(self.indices)

    @property
    def miss_rate(self) -> float:
        return self.n_misses / self.n_accesses if self.n_accesses else 0.0

    def misses_from(self, warmup: int) -> int:
        """Number of recorded misses with access index >= ``warmup``."""
        return int(self.n_misses - np.searchsorted(self.indices, warmup))

    def replay_rows(self) -> list[list[int]]:
        """``[index, pc, block, evicted]`` rows for the engine's replay.

        One packed ``np.stack(...).tolist()`` materialisation, cached on
        the filter, so every cell sharing a memoized/store-served filter
        walks plain Python ints with zero per-cell prep — replacing the
        four full ``tolist()`` copies the replay used to make per run.
        In ``legacy`` mode the prep is deliberately rebuilt per call
        (the PR 9-era cost model the benchmark measures against).
        """
        if mode() == "legacy":
            return [list(row) for row in zip(
                self.indices.tolist(), self.pcs.tolist(),
                self.blocks.tolist(), self.evicted.tolist())]
        rows = self._rows
        if rows is None:
            if self.n_misses:
                rows = np.stack(
                    (self.indices, self.pcs, self.blocks, self.evicted),
                    axis=1).tolist()
            else:
                rows = []
            object.__setattr__(self, "_rows", rows)
        return rows


# -- build kernels ----------------------------------------------------------


def _cancel_checks() -> tuple[Any, int]:
    """(token, check_every) with the NEVER sentinel when untokened."""
    cancel = current_token()
    if cancel is None:
        return None, NEVER
    cancel.raise_if_cancelled()
    return cancel, cancel.check_every


def _build_arrays_scalar(
        trace: MemoryTrace, config: SystemConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Reference kernel: one scalar pass through the ``Cache`` model."""
    l1 = Cache(config.l1d)
    access = l1.access_traced
    pcs_list, blocks_list, _, _ = trace.as_lists()
    indices: list[int] = []
    miss_pcs: list[int] = []
    miss_blocks: list[int] = []
    evicted: list[int] = []
    # Cancellation checkpoints only — no progress advance: the replay
    # re-walks these accesses and meters them there, so advancing here
    # would double-bill the tenant's quota.
    cancel, check_every = _cancel_checks()
    next_check = check_every if cancel is not None else NEVER
    for i, block in enumerate(blocks_list):
        if i >= next_check:
            cancel.raise_if_cancelled()
            next_check = i + check_every
        hit, victim = access(block)
        if hit:
            continue
        indices.append(i)
        miss_pcs.append(pcs_list[i])
        miss_blocks.append(block)
        evicted.append(victim if victim is not None else -1)
    return (np.asarray(indices, dtype=np.int64),
            np.asarray(miss_pcs, dtype=np.int64),
            np.asarray(miss_blocks, dtype=np.int64),
            np.asarray(evicted, dtype=np.int64))


def _build_arrays_lru2(
        trace: MemoryTrace, blocks: np.ndarray, set_idx: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form kernel for 2-way LRU sets: pure numpy, no sweep.

    Two classic LRU identities make associativity 2 (both shipped
    configs) fully vectorisable:

    * an access **hits** iff its stack distance is <= 2, i.e. the gap
      back to the block's previous occurrence contains at most one
      distinct block — the gap is empty or a single same-block run;
    * the **resident pair** before any access is the two most recently
      used distinct blocks, so a miss's victim is the closer of the
      two: the block of the last pre-gap run (and no victim at all
      while the set has seen fewer than two distinct blocks).

    Everything reduces to run boundaries and previous-occurrence links,
    each one global stable sort or scan — no per-set work, no python
    loop over accesses.
    """
    n = len(blocks)
    cancel, _ = _cancel_checks()

    def checkpoint() -> None:
        # Cancellation only — no progress advance (the replay re-walks
        # and meters these accesses; advancing here would double-bill).
        if cancel is not None:
            cancel.raise_if_cancelled()

    checkpoint()
    g = np.arange(n, dtype=np.int64)
    order = np.argsort(set_idx, kind="stable")
    sorted_sets = set_idx[order]
    b_s = blocks[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    is_start[1:] = sorted_sets[1:] != sorted_sets[:-1]
    sstart = np.maximum.accumulate(np.where(is_start, g, 0))
    checkpoint()
    # Previous occurrence of the same block, in set-grouped coords
    # (same block => same set, so one value sort links occurrences).
    border = np.argsort(b_s, kind="stable")
    bb = b_s[border]
    prev_g = np.full(n, -1, dtype=np.int64)
    if n > 1:
        same = bb[1:] == bb[:-1]
        prev_g[border[1:][same]] = border[:-1][same]
    checkpoint()
    # Runs of consecutive equal blocks (set boundaries break runs).
    change = is_start.copy()
    change[1:] |= b_s[1:] != b_s[:-1]
    run_start = np.maximum.accumulate(np.where(change, g, 0))
    run_id = np.cumsum(change)
    has_prev = prev_g >= 0
    prev1 = np.minimum(prev_g + 1, n - 1)
    gm1 = np.maximum(g - 1, 0)
    hit = has_prev & ((prev_g == g - 1) | (run_id[prev1] == run_id[gm1]))
    # Distinct blocks seen strictly earlier in the same set.
    first = (~has_prev).astype(np.int64)
    excl = np.cumsum(first) - first
    seen = excl - excl[sstart]
    miss = ~hit
    evict = miss & (seen >= 2)
    # Victim = block of the last run before the current one: the
    # second most recently used distinct block (the first is b_s[g-1],
    # which a missing access never equals).
    ldiff = np.maximum(run_start[gm1] - 1, 0)
    victim_s = np.where(evict, b_s[ldiff], np.int64(-1))
    checkpoint()
    orig = order[miss]
    merge = np.argsort(orig, kind="stable")
    indices = orig[merge]
    return (indices,
            np.ascontiguousarray(trace.pcs, dtype=np.int64)[indices],
            blocks[indices],
            victim_s[miss][merge])


def _build_arrays_vectorised(
        trace: MemoryTrace, config: SystemConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised kernel: global numpy passes, certain-hit masking.

    Sets are independent, so the whole trace is analysed as one batch
    of per-set streams.  A block determines its set, which lets every
    per-set quantity come out of **global** sorts instead of a numpy
    call per set (the fixed cost of small-array numpy ops across
    hundreds of sets would otherwise dominate):

    * ``kpos`` — each access's set-local sequence position, from one
      stable sort grouping accesses by set;
    * the previous occurrence of each access's block, from one stable
      sort of the block ids (same block ⇒ same set);
    * the **certain-hit mask**: a re-reference at set-local position
      ``k`` whose previous occurrence sits at ``p`` is provably a hit
      whenever ``k - p <= ways`` — evicting the block in between would
      take at least ``ways`` accesses to other blocks (``ways - 1``
      promotions to push it to LRU plus the evicting miss), and only
      ``k - p - 1`` happened.

    Only the leftovers — first occurrences and far re-references,
    typically a small fraction of the trace — run through an exact
    residency/LRU python sweep.  Its recency source is each block's
    full occurrence list (in set-local positions), so certain hits
    still "promote" their block without ever being visited.
    """
    blocks = np.ascontiguousarray(trace.blocks, dtype=np.int64)
    n = len(blocks)
    empty = np.empty(0, dtype=np.int64)
    if n == 0:
        return empty, empty.copy(), empty.copy(), empty.copy()
    n_sets = config.l1d.n_sets
    ways = config.l1d.ways
    if n_sets & (n_sets - 1) == 0:
        set_idx = blocks & (n_sets - 1)
    else:
        set_idx = blocks % n_sets
    if ways == 2:
        return _build_arrays_lru2(trace, blocks, set_idx)
    # One stable sort groups every set's accesses contiguously while
    # preserving time order inside each group; kpos is then each
    # access's position within its own set's stream.
    order = np.argsort(set_idx, kind="stable")
    sorted_sets = set_idx[order]
    cuts = np.flatnonzero(np.diff(sorted_sets)) + 1
    starts = np.concatenate(([0], cuts))
    sizes = np.diff(np.concatenate((starts, [n])))
    kpos_sorted = np.arange(n, dtype=np.int64) - np.repeat(starts, sizes)
    kpos = np.empty(n, dtype=np.int64)
    kpos[order] = kpos_sorted
    # Previous occurrence of the same block, in set-local positions.
    uniq, uinv = np.unique(blocks, return_inverse=True)
    border = np.argsort(uinv, kind="stable")
    bsorted = uinv[border]
    prev_k = np.full(n, -1, dtype=np.int64)
    if n > 1:
        same = bsorted[1:] == bsorted[:-1]
        prev_k[border[1:][same]] = kpos[border[:-1][same]]
    certain_hit = (prev_k >= 0) & (kpos - prev_k <= ways)
    # Each block's occurrence list (ascending set-local positions) and
    # a lazily-advanced cursor per block: the LRU recency source.
    occ_k = kpos[border].tolist()
    occ_bounds = np.concatenate(
        ([0], np.cumsum(np.bincount(uinv, minlength=len(uniq)))))
    occ_ends = occ_bounds[1:].tolist()
    ptr = occ_bounds[:-1].tolist()
    uniq_l = uniq.tolist()
    # The sweep's worklist: non-certain accesses, set-grouped, each as
    # (global position, set-local position, block id, set id).
    keep = ~certain_hit[order]
    int_i = order[keep].tolist()
    int_k = kpos_sorted[keep].tolist()
    int_u = uinv[order[keep]].tolist()
    int_s = sorted_sets[keep].tolist()
    cancel, check_every = _cancel_checks()
    next_check = check_every if cancel is not None else NEVER
    resident: set[int] = set()
    current_set = -1
    miss_pos: list[int] = []
    miss_vic: list[int] = []
    for visited, (i, k, u, s) in enumerate(zip(int_i, int_k, int_u, int_s)):
        if visited >= next_check:
            cancel.raise_if_cancelled()
            next_check = visited + check_every
        if s != current_set:
            resident = set()
            current_set = s
        if u in resident:
            continue              # uncertain re-reference that did hit
        if len(resident) >= ways:
            # Victim = resident block with the oldest last access < k;
            # advance each block's occurrence cursor lazily (monotone
            # in k within a set, so the sweep stays linear).
            vic_u = -1
            vic_rec = n
            # Recencies are distinct positions, so the argmin is unique
            # and iteration order cannot change the victim; sorted()
            # keeps the DET001 no-unordered-iteration invariant anyway.
            for ru in sorted(resident):
                p = ptr[ru]
                end = occ_ends[ru]
                while p + 1 < end and occ_k[p + 1] < k:
                    p += 1
                ptr[ru] = p
                rec = occ_k[p]
                if rec < vic_rec:
                    vic_rec = rec
                    vic_u = ru
            resident.discard(vic_u)
            miss_vic.append(uniq_l[vic_u])
        else:
            miss_vic.append(-1)
        resident.add(u)
        miss_pos.append(i)
    if not miss_pos:
        return empty, empty.copy(), empty.copy(), empty.copy()
    all_pos = np.asarray(miss_pos, dtype=np.int64)
    all_vic = np.asarray(miss_vic, dtype=np.int64)
    merge = np.argsort(all_pos, kind="stable")
    indices = all_pos[merge]
    return (indices,
            np.ascontiguousarray(trace.pcs, dtype=np.int64)[indices],
            blocks[indices],
            all_vic[merge])


# -- optional numba kernel (DOMINO_FASTPATH=jit) ----------------------------

#: Chunk size between cancellation checkpoints of the jit kernel.
_JIT_CHUNK = 1 << 16

_JIT_KERNEL: Callable[..., int] | None = None
_JIT_STATE = "unloaded"          # unloaded | ready | unavailable


def _load_jit_kernel() -> Callable[..., int] | None:
    """Compile (once) and return the numba build kernel, or ``None``.

    Soft dependency: an absent or broken numba leaves the state
    ``unavailable`` and every ``jit``-mode build falls back to the
    vectorised kernel, reported once per process through obs.
    """
    global _JIT_KERNEL, _JIT_STATE
    if _JIT_STATE == "unloaded":
        try:
            from numba import njit  # type: ignore[import-not-found]

            @njit(cache=True)
            def _kernel(blocks, start, tags, stamps, out_idx, out_vic, m,
                        n_sets, ways, use_mask):   # pragma: no cover - needs numba
                for i in range(blocks.shape[0]):
                    gi = start + i
                    block = blocks[i]
                    if use_mask:
                        s = block & (n_sets - 1)
                    else:
                        s = block % n_sets
                    base = s * ways
                    hit = False
                    for w in range(base, base + ways):
                        if tags[w] == block:
                            stamps[w] = gi + 1
                            hit = True
                            break
                    if hit:
                        continue
                    slot = -1
                    for w in range(base, base + ways):
                        if tags[w] == -1:
                            slot = w
                            break
                    if slot == -1:
                        slot = base
                        for w in range(base + 1, base + ways):
                            if stamps[w] < stamps[slot]:
                                slot = w
                        out_vic[m] = tags[slot]
                    else:
                        out_vic[m] = -1
                    out_idx[m] = gi
                    m += 1
                    tags[slot] = block
                    stamps[slot] = gi + 1
                return m

            _JIT_KERNEL = _kernel
            _JIT_STATE = "ready"
        except Exception:  # numba missing or failed to compile
            _JIT_KERNEL = None
            _JIT_STATE = "unavailable"
            if _OBS.enabled:
                _OBS.counter(obs_names.MET_FASTPATH_JIT_FALLBACKS).inc()
                _OBS.warning(obs_names.EVT_FASTPATH_JIT_FALLBACK,
                             fallback="vectorised")
    return _JIT_KERNEL


def jit_available() -> bool:
    """Whether the numba kernel can actually run in this process."""
    return _load_jit_kernel() is not None


def _build_arrays_jit(
        trace: MemoryTrace, config: SystemConfig,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Numba kernel build; falls back to vectorised when unavailable."""
    kernel = _load_jit_kernel()
    if kernel is None:
        return _build_arrays_vectorised(trace, config)
    blocks = np.ascontiguousarray(trace.blocks, dtype=np.int64)
    n = len(blocks)
    n_sets = config.l1d.n_sets
    ways = config.l1d.ways
    tags = np.full(n_sets * ways, -1, dtype=np.int64)
    stamps = np.zeros(n_sets * ways, dtype=np.int64)
    out_idx = np.empty(n, dtype=np.int64)
    out_vic = np.empty(n, dtype=np.int64)
    use_mask = n_sets & (n_sets - 1) == 0
    cancel, check_every = _cancel_checks()
    m = 0
    for start in range(0, n, _JIT_CHUNK):
        if cancel is not None:
            cancel.raise_if_cancelled()
        m = kernel(blocks[start:start + _JIT_CHUNK], start, tags, stamps,
                   out_idx, out_vic, m, n_sets, ways, use_mask)
    indices = out_idx[:m].copy()
    return (indices,
            np.ascontiguousarray(trace.pcs, dtype=np.int64)[indices],
            blocks[indices],
            out_vic[:m].copy())


_BUILDERS = {
    "0": _build_arrays_vectorised,    # filter requested despite mode 0
    "1": _build_arrays_vectorised,
    "jit": _build_arrays_jit,
    "legacy": _build_arrays_scalar,
}


def build_l1_filter(trace: MemoryTrace, config: SystemConfig) -> L1Filter:
    """One pass over ``trace`` through the L1-D alone.

    The kernel follows :func:`mode`; every kernel reproduces exactly
    the hit/miss split and eviction sequence of the
    :class:`~repro.memory.cache.Cache` model (via ``access_traced``)
    that the unfiltered engine drives, so the recorded events are
    precisely what every prefetcher cell would observe.
    """
    with trace_span(obs_names.SPAN_FASTPATH_BUILD, trace=trace.name,
                    accesses=len(trace)):
        wall0 = time.perf_counter()
        build = _BUILDERS[mode()]
        indices, pcs, blocks, evicted = build(trace, config)
        filt = L1Filter(trace_name=trace.name, n_accesses=len(trace),
                        indices=indices, pcs=pcs, blocks=blocks,
                        evicted=evicted)
        if _OBS.enabled:
            _OBS.counter(obs_names.MET_FASTPATH_BUILDS).inc()
            _OBS.info(obs_names.EVT_FASTPATH_BUILD, trace=trace.name,
                      accesses=len(trace), misses=filt.n_misses,
                      miss_rate=round(filt.miss_rate, 6),
                      wall_s=round(time.perf_counter() - wall0, 6))
        return filt


def build_l1_filter_scalar(trace: MemoryTrace,
                           config: SystemConfig) -> L1Filter:
    """The reference scalar build, independent of :func:`mode`.

    Used by tests to cross-check the vectorised/jit kernels and by the
    benchmark as the PR 9-era baseline.
    """
    indices, pcs, blocks, evicted = _build_arrays_scalar(trace, config)
    return L1Filter(trace_name=trace.name, n_accesses=len(trace),
                    indices=indices, pcs=pcs, blocks=blocks, evicted=evicted)


# -- payload codecs ---------------------------------------------------------


def _encode(arr: np.ndarray) -> str:
    data = np.ascontiguousarray(arr, dtype="<i8").tobytes()
    return base64.b64encode(zlib.compress(data)).decode("ascii")


def _decode(text: str, expected_len: int) -> np.ndarray:
    try:
        raw = zlib.decompress(base64.b64decode(text.encode("ascii")))
        arr = np.frombuffer(raw, dtype="<i8")
    except (ValueError, zlib.error) as exc:
        raise SimulationError(f"corrupt L1 filter payload: {exc}") from exc
    if len(arr) != expected_len:
        raise SimulationError(
            f"corrupt L1 filter payload: expected {expected_len} values, "
            f"decoded {len(arr)}")
    return arr.astype(np.int64, copy=False)


def filter_to_payload(filt: L1Filter) -> dict[str, Any]:
    """Serialise a filter into a self-contained JSON-safe payload.

    The PR 5-era inline codec: still written by callers that need a
    single JSON document and still accepted by
    :func:`filter_from_payload` for backward compatibility with
    already-stored artifacts.
    """
    payload: dict[str, Any] = {
        "version": FASTPATH_VERSION,
        "codec": _CODEC,
        "trace_name": filt.trace_name,
        "n_accesses": filt.n_accesses,
        "n_misses": filt.n_misses,
    }
    for fname in _ARRAY_FIELDS:
        payload[fname] = _encode(getattr(filt, fname))
    return payload


def filter_to_binary(filt: L1Filter) -> tuple[dict[str, Any], bytes]:
    """Serialise a filter as ``(JSON envelope, .npy sidecar bytes)``.

    The sidecar is a genuine ``.npy`` serialisation of one packed
    ``(4, n_misses)`` little-endian int64 array (rows: indices, pcs,
    blocks, evicted), so any numpy can open it — including with
    ``mmap_mode="r"``, which is how workers load it zero-copy.  The
    envelope records size and CRC so a mismatched or truncated sidecar
    is detected before use.
    """
    packed = np.ascontiguousarray(
        np.stack([getattr(filt, fname) for fname in _ARRAY_FIELDS], axis=0),
        dtype="<i8")
    buf = io.BytesIO()
    np.save(buf, packed, allow_pickle=False)
    data = buf.getvalue()
    payload: dict[str, Any] = {
        "version": FASTPATH_VERSION,
        "codec": BINARY_CODEC,
        "trace_name": filt.trace_name,
        "n_accesses": filt.n_accesses,
        "n_misses": filt.n_misses,
        "sidecar_bytes": len(data),
        "sidecar_crc32": zlib.crc32(data),
    }
    return payload, data


def _filter_from_sidecar(payload: dict[str, Any], n_accesses: int,
                         n_misses: int, name: str) -> L1Filter:
    path = payload.get("sidecar_path")
    if not isinstance(path, str) or not path:
        raise SimulationError(
            "binary L1 filter payload has no sidecar attached")
    expected = payload.get("sidecar_bytes")
    try:
        actual = os.path.getsize(path)
    except OSError as exc:
        raise SimulationError(
            f"L1 filter sidecar unreadable: {exc}") from exc
    if not isinstance(expected, int) or actual != expected:
        raise SimulationError(
            f"L1 filter sidecar size mismatch: recorded {expected!r} bytes, "
            f"found {actual}")
    try:
        # Zero-length arrays cannot be mmapped on every platform; the
        # empty filter is tiny anyway.
        arr = np.load(path, mmap_mode="r" if n_misses else None,
                      allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise SimulationError(f"corrupt L1 filter sidecar: {exc}") from exc
    if (arr.ndim != 2 or arr.shape != (4, n_misses)
            or arr.dtype != np.dtype("<i8")):
        raise SimulationError(
            f"L1 filter sidecar shape mismatch: expected (4, {n_misses}) "
            f"<i8, found {arr.shape} {arr.dtype}")
    return L1Filter(trace_name=name, n_accesses=n_accesses,
                    indices=arr[0], pcs=arr[1], blocks=arr[2],
                    evicted=arr[3])


def filter_from_payload(payload: dict[str, Any]) -> L1Filter:
    """Rebuild a filter from an artifact payload (either codec).

    Binary-codec payloads must carry a ``sidecar_path`` (attached by
    :meth:`repro.runner.store.ResultStore.get` when it resolves the
    envelope's ``payload_path``).  Raises :class:`SimulationError` on
    any structural mismatch so the caller can treat the artifact as a
    miss, quarantine it, and rebuild from the trace.
    """
    codec = payload.get("codec")
    if (payload.get("version") != FASTPATH_VERSION
            or codec not in (_CODEC, BINARY_CODEC)):
        raise SimulationError(
            "L1 filter payload has an incompatible version or codec")
    try:
        n_accesses = int(payload["n_accesses"])
        n_misses = int(payload["n_misses"])
        name = str(payload["trace_name"])
        if codec == BINARY_CODEC:
            return _filter_from_sidecar(payload, n_accesses, n_misses, name)
        arrays = {fname: _decode(payload[fname], n_misses)
                  for fname in _ARRAY_FIELDS}
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed L1 filter payload: {exc}") from exc
    return L1Filter(trace_name=name, n_accesses=n_accesses, **arrays)
