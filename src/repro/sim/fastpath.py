"""Prefetcher-independent L1-D filtering (the cross-cell fast path).

In the trace-driven methodology (Section IV-C/D) prefetches only ever
fill the 32-block buffer next to the L1-D — the L1 itself is touched by
demand accesses alone.  The L1 hit/miss split of a trace is therefore a
pure function of ``(trace, l1 config)``: it is identical for every
prefetcher and every degree in a fig11/fig13-style grid.  This module
computes that split **once** and packages everything the engine needs
to replay only the miss events:

* the access ``indices`` of the L1 misses (so warm-up windows still
  land on the right boundary);
* the ``pcs`` and ``blocks`` of those misses (the prefetchers' entire
  input);
* the ``evicted`` block of each miss allocation (``-1`` when the set
  had a free way), which lets the replay maintain an exact L1
  *residency set* for candidate filtering without simulating the cache.

Residency is sufficient because the engine consults the L1 for only two
things: the hit/miss verdict of a demand access and the
``probe(candidate)`` membership test before a buffer insert.  LRU order
influences *which* block a future miss evicts — and that is precisely
what the ``evicted`` array records — so replaying misses against the
residency set is bit-identical to running the full cache
(:meth:`repro.sim.engine.TraceSimulator.run_filtered` carries the
replay; ``tests/sim/test_fastpath.py`` pins the equivalence).

Filters serialise to JSON-safe payloads (zlib + base64 over
little-endian int64) so the :mod:`repro.runner` artifact store can
share one filter across every cell of a grid, across ``--resume``, and
across worker processes.  The cache *key* of a filter is owned by
:func:`repro.runner.cells.l1_filter_key` — the runner layer knows what
identifies a generated trace; this module only knows how to build,
encode, and replay filters.
"""

from __future__ import annotations

import base64
import os
import time
import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..cancel import NEVER, current_token
from ..config import SystemConfig
from ..errors import SimulationError
from ..memory.cache import Cache
from ..obs import names as obs_names
from ..obs import scope as obs_scope
from ..obs.trace import span as trace_span
from .trace import MemoryTrace

#: Bump when the filter semantics or payload layout change (rides next
#: to the runner's ``CODE_VERSION`` inside the artifact key material).
FASTPATH_VERSION = 1

#: Environment toggle: set ``DOMINO_FASTPATH=0`` to force every cell
#: through the unfiltered engine loop (the results are bit-identical
#: either way; the toggle exists for benchmarking and bisection).
ENV_TOGGLE = "DOMINO_FASTPATH"

_ARRAY_FIELDS = ("indices", "pcs", "blocks", "evicted")
_CODEC = "zlib+b64:<i8"

#: Fastpath telemetry scope (off until obs.configure()).
_OBS = obs_scope("sim.fastpath")


def enabled() -> bool:
    """Whether the filtered replay path is active (default: yes)."""
    return os.environ.get(ENV_TOGGLE, "1").strip().lower() not in (
        "0", "false", "off", "no")


@dataclass(frozen=True)
class L1Filter:
    """The compact uncovered-access stream of one ``(trace, l1)`` pair.

    ``indices[j]``/``pcs[j]``/``blocks[j]`` describe the ``j``-th L1
    miss of the trace; ``evicted[j]`` is the block the miss allocation
    displaced (``-1`` for none).  ``n_accesses`` is the length of the
    originating trace (hits included), which the replay needs to place
    warm-up boundaries and to reconstruct the hit counters.
    """

    trace_name: str
    n_accesses: int
    indices: np.ndarray
    pcs: np.ndarray
    blocks: np.ndarray
    evicted: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.indices)
        for fname in _ARRAY_FIELDS:
            arr = getattr(self, fname)
            if arr.ndim != 1 or len(arr) != n:
                raise SimulationError(
                    f"L1 filter field {fname} must be 1-D of length {n}")
        if n > self.n_accesses:
            raise SimulationError(
                f"L1 filter has {n} misses for {self.n_accesses} accesses")

    @property
    def n_misses(self) -> int:
        return len(self.indices)

    @property
    def miss_rate(self) -> float:
        return self.n_misses / self.n_accesses if self.n_accesses else 0.0

    def misses_from(self, warmup: int) -> int:
        """Number of recorded misses with access index >= ``warmup``."""
        return int(self.n_misses - np.searchsorted(self.indices, warmup))


def build_l1_filter(trace: MemoryTrace, config: SystemConfig) -> L1Filter:
    """One pass over ``trace`` through the L1-D alone.

    Uses the same :class:`~repro.memory.cache.Cache` model (via
    ``access_traced``) that the unfiltered engine drives, so the
    recorded hit/miss split and eviction sequence are exactly what
    every prefetcher cell would observe.
    """
    with trace_span(obs_names.SPAN_FASTPATH_BUILD, trace=trace.name,
                    accesses=len(trace)):
        wall0 = time.perf_counter()
        l1 = Cache(config.l1d)
        access = l1.access_traced
        pcs_list, blocks_list, _, _ = trace.as_lists()
        indices: list[int] = []
        miss_pcs: list[int] = []
        miss_blocks: list[int] = []
        evicted: list[int] = []
        # Cancellation checkpoints only — no progress advance: the
        # replay re-walks these accesses and meters them there, so
        # advancing here would double-bill the tenant's quota.
        cancel = current_token()
        if cancel is not None:
            cancel.raise_if_cancelled()
            check_every = cancel.check_every
            next_check = check_every
        else:
            next_check = NEVER
        for i, block in enumerate(blocks_list):
            if i >= next_check:
                cancel.raise_if_cancelled()
                next_check = i + check_every
            hit, victim = access(block)
            if hit:
                continue
            indices.append(i)
            miss_pcs.append(pcs_list[i])
            miss_blocks.append(block)
            evicted.append(victim if victim is not None else -1)
        filt = L1Filter(
            trace_name=trace.name,
            n_accesses=len(trace),
            indices=np.asarray(indices, dtype=np.int64),
            pcs=np.asarray(miss_pcs, dtype=np.int64),
            blocks=np.asarray(miss_blocks, dtype=np.int64),
            evicted=np.asarray(evicted, dtype=np.int64),
        )
        if _OBS.enabled:
            _OBS.counter(obs_names.MET_FASTPATH_BUILDS).inc()
            _OBS.info(obs_names.EVT_FASTPATH_BUILD, trace=trace.name,
                      accesses=len(trace), misses=filt.n_misses,
                      miss_rate=round(filt.miss_rate, 6),
                      wall_s=round(time.perf_counter() - wall0, 6))
        return filt


# -- payload codec ----------------------------------------------------------


def _encode(arr: np.ndarray) -> str:
    data = np.ascontiguousarray(arr, dtype="<i8").tobytes()
    return base64.b64encode(zlib.compress(data)).decode("ascii")


def _decode(text: str, expected_len: int) -> np.ndarray:
    try:
        raw = zlib.decompress(base64.b64decode(text.encode("ascii")))
        arr = np.frombuffer(raw, dtype="<i8")
    except (ValueError, zlib.error) as exc:
        raise SimulationError(f"corrupt L1 filter payload: {exc}") from exc
    if len(arr) != expected_len:
        raise SimulationError(
            f"corrupt L1 filter payload: expected {expected_len} values, "
            f"decoded {len(arr)}")
    return arr.astype(np.int64, copy=False)


def filter_to_payload(filt: L1Filter) -> dict[str, Any]:
    """Serialise a filter into a JSON-safe artifact payload."""
    payload: dict[str, Any] = {
        "version": FASTPATH_VERSION,
        "codec": _CODEC,
        "trace_name": filt.trace_name,
        "n_accesses": filt.n_accesses,
        "n_misses": filt.n_misses,
    }
    for fname in _ARRAY_FIELDS:
        payload[fname] = _encode(getattr(filt, fname))
    return payload


def filter_from_payload(payload: dict[str, Any]) -> L1Filter:
    """Rebuild a filter from an artifact payload.

    Raises :class:`SimulationError` on any structural mismatch so the
    caller can treat the artifact as a miss and rebuild from the trace.
    """
    if (payload.get("version") != FASTPATH_VERSION
            or payload.get("codec") != _CODEC):
        raise SimulationError(
            "L1 filter payload has an incompatible version or codec")
    try:
        n_accesses = int(payload["n_accesses"])
        n_misses = int(payload["n_misses"])
        arrays = {fname: _decode(payload[fname], n_misses)
                  for fname in _ARRAY_FIELDS}
        name = str(payload["trace_name"])
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed L1 filter payload: {exc}") from exc
    return L1Filter(trace_name=name, n_accesses=n_accesses, **arrays)
