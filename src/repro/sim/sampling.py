"""SimFlex-style windowed measurement with confidence intervals.

The paper uses the SimFlex multiprocessor sampling methodology and
reports performance "with 95 % confidence and an error of less than
4 %".  At trace scale the analogue is to split a measurement into
independent windows, compute the statistic per window, and derive a
Student-t confidence interval over the window means.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable, Sequence

# Two-sided Student-t critical values at 95 % for small samples; larger
# samples fall back to the normal quantile.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086,
        30: 2.042}
_Z95 = 1.960


def _t_critical(dof: int) -> float:
    if dof <= 0:
        raise ValueError("need at least two samples for an interval")
    if dof in _T95:
        return _T95[dof]
    for bound in sorted(_T95):
        if dof <= bound:
            return _T95[bound]
    return _Z95


@dataclass
class ConfidenceInterval:
    mean: float
    half_width: float
    n_samples: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_error(self) -> float:
        """Half-width as a fraction of the mean (the paper's '<4 %')."""
        if self.mean == 0:
            return 0.0
        return abs(self.half_width / self.mean)

    def __contains__(self, value: float) -> bool:
        return self.low <= value <= self.high


def confidence_interval(samples: Sequence[float]) -> ConfidenceInterval:
    """95 % two-sided Student-t interval over ``samples``."""
    n = len(samples)
    if n < 2:
        raise ValueError("need at least two samples for an interval")
    mean = sum(samples) / n
    variance = sum((x - mean) ** 2 for x in samples) / (n - 1)
    half = _t_critical(n - 1) * math.sqrt(variance / n)
    return ConfidenceInterval(mean=mean, half_width=half, n_samples=n)


class WindowedStat:
    """Collects one statistic per measurement window."""

    def __init__(self, name: str = "stat") -> None:
        self.name = name
        self.samples: list[float] = []

    def add(self, value: float) -> None:
        self.samples.append(float(value))

    def interval(self) -> ConfidenceInterval:
        return confidence_interval(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return sum(self.samples) / len(self.samples)


def windowed_measurement(items: Sequence, n_windows: int,
                         measure: Callable[[Sequence], float],
                         name: str = "stat") -> WindowedStat:
    """Split ``items`` into ``n_windows`` contiguous windows and apply
    ``measure`` to each (e.g. per-window coverage)."""
    if n_windows <= 0:
        raise ValueError("n_windows must be positive")
    stat = WindowedStat(name)
    n = len(items)
    for w in range(n_windows):
        start = w * n // n_windows
        stop = (w + 1) * n // n_windows
        if stop > start:
            stat.add(measure(items[start:stop]))
    return stat
