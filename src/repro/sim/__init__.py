"""Simulators: trace containers, coverage engine, timing model, sampling.

* :mod:`repro.sim.trace` — the memory-access trace format shared by all
  simulators (the stand-in for Flexus trace files).
* :mod:`repro.sim.engine` — trace-driven prefetcher evaluation producing
  coverage / overprediction / traffic numbers (Figs. 1–5, 9–13, 15, 16).
* :mod:`repro.sim.timing` / :mod:`repro.sim.multicore` — simplified
  cycle model for the quad-core performance results (Fig. 14).
* :mod:`repro.sim.sampling` — SimFlex-style windowed measurement with
  confidence intervals.
"""

from .trace import MemoryTrace, TraceBuilder, load_trace, save_trace
from .engine import TraceSimulator, SimulationResult, simulate_trace
from .timing import TimingSimulator, TimingResult
from .multicore import MulticoreResult, simulate_multicore, speedup_over_baseline
from .sampling import WindowedStat, confidence_interval

__all__ = [
    "MemoryTrace",
    "MulticoreResult",
    "SimulationResult",
    "TimingResult",
    "TimingSimulator",
    "TraceBuilder",
    "TraceSimulator",
    "WindowedStat",
    "confidence_interval",
    "load_trace",
    "save_trace",
    "simulate_multicore",
    "simulate_trace",
    "speedup_over_baseline",
]
