"""Memory-access trace format.

A :class:`MemoryTrace` is the unit of input to every simulator: a
sequence of demand data accesses, each carrying

* ``pc``     — the (synthetic) program counter of the load, used by the
  PC-localised ISB prefetcher;
* ``block``  — the 64-byte block address touched;
* ``dep``    — 1 if the access depends on the data returned by the
  previous off-chip miss (a pointer-chase link); dependent misses
  serialise in the timing model, independent ones overlap in the ROB;
* ``work``   — the number of non-memory instructions executed since the
  previous access (drives the instruction count / IPC metric).

The arrays are stored as parallel numpy vectors for compactness, with a
fast path (:meth:`MemoryTrace.as_lists`) that converts to plain Python
lists once so the per-access simulator loops never touch numpy scalars.
"""

from __future__ import annotations

import zipfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import TraceError

_FIELDS = ("pcs", "blocks", "deps", "works")


@dataclass(frozen=True)
class MemoryTrace:
    """Immutable container of parallel access arrays."""

    pcs: np.ndarray
    blocks: np.ndarray
    deps: np.ndarray
    works: np.ndarray
    name: str = "trace"

    def __post_init__(self) -> None:
        n = len(self.blocks)
        for fname in _FIELDS:
            arr = getattr(self, fname)
            if arr.ndim != 1:
                raise TraceError(f"trace field {fname} must be 1-D")
            if len(arr) != n:
                raise TraceError("trace fields must have equal length")
        if n and (self.blocks < 0).any():
            raise TraceError("block addresses must be non-negative")

    def __len__(self) -> int:
        return len(self.blocks)

    @property
    def instructions(self) -> int:
        """Total instruction count represented by the trace (memory
        operations plus the non-memory work between them)."""
        return int(self.works.sum()) + len(self)

    @property
    def footprint_blocks(self) -> int:
        """Number of distinct blocks touched."""
        return int(np.unique(self.blocks).size)

    def as_lists(self) -> tuple[list[int], list[int], list[int], list[int]]:
        """Return (pcs, blocks, deps, works) as plain Python int lists."""
        return (self.pcs.tolist(), self.blocks.tolist(),
                self.deps.tolist(), self.works.tolist())

    def slice(self, start: int, stop: int) -> "MemoryTrace":
        """Sub-trace covering accesses [start, stop).

        Bounds are validated — negative indices and out-of-range
        windows raise :class:`TraceError` rather than silently
        producing empty or wrapped sub-traces (numpy slice semantics
        would otherwise swallow both mistakes).
        """
        if not (0 <= start <= stop <= len(self)):
            raise TraceError(
                f"slice [{start}:{stop}) out of bounds for trace "
                f"{self.name!r} of length {len(self)}")
        return MemoryTrace(
            pcs=self.pcs[start:stop],
            blocks=self.blocks[start:stop],
            deps=self.deps[start:stop],
            works=self.works[start:stop],
            name=f"{self.name}[{start}:{stop}]",
        )

    def split(self, n_parts: int) -> list["MemoryTrace"]:
        """Split into ``n_parts`` contiguous near-equal sub-traces (used
        to feed the four cores of the multicore timing model)."""
        if n_parts <= 0:
            raise TraceError("n_parts must be positive")
        bounds = np.linspace(0, len(self), n_parts + 1, dtype=int)
        return [self.slice(int(bounds[i]), int(bounds[i + 1])) for i in range(n_parts)]


class TraceBuilder:
    """Incremental trace construction used by the workload generators."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self._pcs: list[int] = []
        self._blocks: list[int] = []
        self._deps: list[int] = []
        self._works: list[int] = []

    def append(self, pc: int, block: int, dep: int = 0, work: int = 0) -> None:
        """Record one access."""
        self._pcs.append(pc)
        self._blocks.append(block)
        self._deps.append(dep)
        self._works.append(work)

    def __len__(self) -> int:
        return len(self._blocks)

    def build(self) -> MemoryTrace:
        """Freeze into a :class:`MemoryTrace`."""
        return MemoryTrace(
            pcs=np.asarray(self._pcs, dtype=np.int64),
            blocks=np.asarray(self._blocks, dtype=np.int64),
            deps=np.asarray(self._deps, dtype=np.int8),
            works=np.asarray(self._works, dtype=np.int32),
            name=self.name,
        )


def save_trace(trace: MemoryTrace, path: str | Path) -> None:
    """Persist a trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        pcs=trace.pcs,
        blocks=trace.blocks,
        deps=trace.deps,
        works=trace.works,
        name=np.array(trace.name),
    )


def load_trace(path: str | Path) -> MemoryTrace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    try:
        data = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        # Truncated writes and arbitrary garbage surface as BadZipFile
        # or ValueError from numpy's header parser.
        raise TraceError(f"malformed trace file {path}: {exc}") from exc
    with data:
        try:
            return MemoryTrace(
                pcs=data["pcs"],
                blocks=data["blocks"],
                deps=data["deps"],
                works=data["works"],
                name=str(data["name"]),
            )
        except KeyError as exc:
            raise TraceError(f"malformed trace file {path}: missing {exc}") from exc
