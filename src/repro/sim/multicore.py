"""Quad-core timing simulation (the Fig. 14 configuration).

Four cores run slices of the same workload over a shared LLC and a
shared off-chip channel.  The cores are interleaved in time order — at
every step the core with the smallest local clock advances one access —
so bandwidth contention between demand misses, prefetches, and metadata
traffic is resolved in (approximate) global time order.

System performance follows the paper's metric: the ratio of application
instructions to total cycles across the chip.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..memory.cache import Cache
from ..memory.dram import BandwidthLedger
from ..prefetchers.base import Prefetcher
from ..prefetchers.registry import make_prefetcher
from .timing import TimingResult, TimingSimulator
from .trace import MemoryTrace


@dataclass
class MulticoreResult:
    """Aggregate measurements of one quad-core run."""

    workload: str
    prefetcher: str
    per_core: list[TimingResult] = field(default_factory=list)
    bandwidth_utilization: float = 0.0

    @property
    def cycles(self) -> float:
        """Chip run time: the slowest core's clock."""
        return max((r.cycles for r in self.per_core), default=0.0)

    @property
    def instructions(self) -> int:
        return sum(r.instructions for r in self.per_core)

    @property
    def ipc(self) -> float:
        """System throughput: total instructions over chip cycles."""
        cycles = self.cycles
        return self.instructions / cycles if cycles else 0.0

    @property
    def coverage(self) -> float:
        hits = sum(r.prefetch_hits for r in self.per_core)
        events = hits + sum(r.misses for r in self.per_core)
        return hits / events if events else 0.0


def simulate_multicore(trace: MemoryTrace | list[MemoryTrace], config: SystemConfig,
                       prefetcher_name: str = "baseline",
                       prefetcher_factory=None,
                       warmup_frac: float = 0.5,
                       **prefetcher_kwargs) -> MulticoreResult:
    """Run a workload across ``config.n_cores`` cores.

    ``trace`` is either a list of per-core traces (the realistic setup:
    every core runs the full server application over its own requests,
    e.g. same document library, different generation seeds) or a single
    trace that is split into contiguous slices.

    Each core gets its own prefetcher instance (the paper's metadata
    tables are per core) built either by ``prefetcher_factory(config)``
    or from the registry by name.  The leading ``warmup_frac`` of each
    core's trace warms caches and metadata tables and is excluded from
    the measurements (the SimFlex checkpoint-warming analogue).
    """
    if isinstance(trace, list):
        if len(trace) != config.n_cores:
            raise ValueError(f"need {config.n_cores} per-core traces, "
                             f"got {len(trace)}")
        slices = trace
        workload_name = trace[0].name
    else:
        slices = trace.split(config.n_cores)
        workload_name = trace.name
    shared_llc = Cache(config.llc)
    shared_ledger = BandwidthLedger(config.cycles_per_block_transfer)

    cores: list[TimingSimulator] = []
    for core_slice in slices:
        if prefetcher_factory is not None:
            prefetcher: Prefetcher = prefetcher_factory(config)
        else:
            prefetcher = make_prefetcher(prefetcher_name, config, **prefetcher_kwargs)
        sim = TimingSimulator(config, prefetcher, shared_llc=shared_llc,
                              shared_ledger=shared_ledger)
        sim.load(core_slice, warmup=int(len(core_slice) * warmup_frac))
        cores.append(sim)

    # Advance the core with the smallest local clock each step so shared
    # resources see requests in (approximately) global time order.
    heap = [(sim.now, idx) for idx, sim in enumerate(cores)]
    heapq.heapify(heap)
    while heap:
        _, idx = heapq.heappop(heap)
        sim = cores[idx]
        sim.step()
        if not sim.done():
            heapq.heappush(heap, (sim.now, idx))

    result = MulticoreResult(workload=workload_name,
                             prefetcher=cores[0].prefetcher.name)
    for sim in cores:
        result.per_core.append(sim.finalise())
    # Utilisation is reported over the whole run (warm-up included);
    # the shared ledger cannot attribute busy cycles to one window.
    result.bandwidth_utilization = shared_ledger.utilization(
        max(sim.now for sim in cores))
    return result


def speedup_over_baseline(trace: MemoryTrace, config: SystemConfig,
                          prefetcher_name: str,
                          **prefetcher_kwargs) -> tuple[float, MulticoreResult, MulticoreResult]:
    """IPC ratio of a prefetcher-equipped chip over the no-prefetcher
    baseline on the same trace.  Returns (speedup, run, baseline_run)."""
    baseline = simulate_multicore(trace, config, "baseline")
    run = simulate_multicore(trace, config, prefetcher_name, **prefetcher_kwargs)
    speedup = run.ipc / baseline.ipc if baseline.ipc else 0.0
    return speedup, run, baseline
