"""Simplified cycle-accounting timing model (the Fig. 14 substrate).

This replaces the paper's Flexus full-system timing simulation with a
per-core replay model that captures the effects the Fig. 14 results
hinge on:

* **Out-of-order overlap (MLP)** — independent misses overlap inside a
  128-entry ROB window bounded by the L1 MSHR count; *dependent*
  (pointer-chase) misses serialise behind the previous memory
  operation.  Workloads with high MLP (Web Search, Media Streaming)
  therefore gain little from coverage, exactly as Section V-C observes.
* **Prefetch timeliness** — a prefetched block only hides the full miss
  latency if it arrived before the demand access; late prefetches
  shorten rather than eliminate the stall.  The first prefetch of a new
  stream is delayed by the prefetcher's serialised metadata round
  trips: two for STMS/Digram, one for Domino (Fig. 6), zero for the
  on-chip designs.
* **Shared bandwidth** — every off-chip transfer (demand, prefetch,
  metadata read/write) occupies the shared 37.5 GB/s channel, so
  overpredicting prefetchers pay queueing delays.

Performance is reported as instructions per cycle over the measured
region (the paper's "application instructions over total cycles" system
throughput metric).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..config import SystemConfig
from ..memory.cache import Cache
from ..memory.dram import BandwidthLedger, DramModel
from ..memory.hierarchy import AccessOutcome, MemoryHierarchy
from ..memory.prefetch_buffer import PrefetchBuffer
from ..prefetchers.base import NullPrefetcher, Prefetcher
from .trace import MemoryTrace


@dataclass
class TimingResult:
    """Cycle-model measurements for one core."""

    workload: str
    prefetcher: str
    cycles: float = 0.0
    instructions: int = 0
    misses: int = 0
    llc_hits: int = 0
    memory_accesses: int = 0
    prefetch_hits: int = 0
    late_prefetch_hits: int = 0
    prefetches_issued: int = 0
    prefetches_dropped: int = 0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def timeliness(self) -> float:
        """Fraction of prefetch hits that were fully timely."""
        if not self.prefetch_hits:
            return 0.0
        return 1.0 - self.late_prefetch_hits / self.prefetch_hits


class TimingSimulator:
    """Replays one trace on one core with cycle accounting."""

    def __init__(self, config: SystemConfig, prefetcher: Prefetcher | None = None,
                 shared_llc: Cache | None = None,
                 shared_ledger: BandwidthLedger | None = None) -> None:
        self.config = config
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher(config)
        self.hierarchy = MemoryHierarchy(config, shared_llc=shared_llc)
        self.dram = DramModel(config, ledger=shared_ledger)
        self.buffer = PrefetchBuffer(config.prefetch_buffer_blocks)

        self.now = 0.0
        self.inst_index = 0
        self._last_completion = 0.0
        #: (completion_cycle, instruction_index) of outstanding misses.
        self._outstanding: deque[tuple[float, int]] = deque()
        self._seen_streams: set[int] = set()
        self._md_reads = 0
        self._md_writes = 0
        self.result = TimingResult(workload="", prefetcher=self.prefetcher.name)

    # -- public driving interface (multicore interleaves step calls) -----
    def load(self, trace: MemoryTrace, warmup: int = 0) -> None:
        self._pcs, self._blocks, self._deps, self._works = trace.as_lists()
        self._cursor = 0
        self._warmup_at = warmup
        self._warm_now = 0.0
        self._warm_counters: TimingResult | None = None
        self.result.workload = trace.name

    def done(self) -> bool:
        return self._cursor >= len(self._blocks)

    def mark_measurement_start(self) -> None:
        """Snapshot counters so warm-up is excluded from the result."""
        import copy

        self._warm_counters = copy.copy(self.result)
        self._warm_now = self.now

    def finalise(self) -> TimingResult:
        """Close the measurement window (subtracting any warm-up).

        Misses still in flight at trace end are part of the measured
        region — the program has not finished until its last fill
        returns — so the clock is first advanced to the latest
        outstanding completion.  Idempotent: the drain empties the
        queue, so a second call changes nothing.
        """
        while self._outstanding:
            completion, _ = self._outstanding.popleft()
            if completion > self.now:
                self.now = completion
            if completion > self._last_completion:
                self._last_completion = completion
        res = self.result
        if self._warm_counters is not None:
            warm = self._warm_counters
            for fname in ("instructions", "misses", "llc_hits",
                          "memory_accesses", "prefetch_hits",
                          "late_prefetch_hits", "prefetches_issued",
                          "prefetches_dropped"):
                setattr(res, fname, getattr(res, fname) - getattr(warm, fname))
        res.cycles = self.now - self._warm_now
        return res

    def step(self) -> None:
        """Process one memory access (plus the work preceding it)."""
        i = self._cursor
        if i == self._warmup_at and i > 0:
            self.mark_measurement_start()
        self._cursor += 1
        block = self._blocks[i]
        dep = self._deps[i]
        work = self._works[i]

        # Non-memory instructions issue at full width.
        self.now += work / self.config.issue_width
        self.inst_index += work + 1
        self.result.instructions += work + 1
        self._retire(self.inst_index)

        if self.hierarchy.l1.access(block):
            return  # L1 hit: latency hidden by the pipeline

        entry = self.buffer.lookup(block)
        if entry is not None:
            self._prefetch_hit(self._pcs[i], block, dep, entry)
        else:
            self._demand_miss(self._pcs[i], block, dep)

    # -- access handling ---------------------------------------------------
    def _prefetch_hit(self, pc: int, block: int, dep: int, entry) -> None:
        res = self.result
        res.prefetch_hits += 1
        if dep:
            self.now = max(self.now, self._last_completion)
        if entry.ready_time > self.now:
            # Late prefetch: the remaining latency behaves like a
            # shortened miss — a dependent access stalls for it, an
            # independent one overlaps it in the ROB window.  The demand
            # merges with the in-flight prefetch and promotes it to
            # demand priority, so the wait never exceeds a fresh fetch.
            completion = min(entry.ready_time,
                             self.now + self.config.memory_latency_cycles)
            res.late_prefetch_hits += 1
            if dep:
                self.now = completion
            else:
                self._outstanding.append((completion, self.inst_index))
                self._retire(self.inst_index)
        else:
            # Timely prefetch hit: the block is in the buffer, so the
            # access costs an L1-hit latency — dependent accesses stall
            # for it, independent ones carry it in the ROB window just
            # like any other completed load.
            completion = self.now + self.config.l1d.hit_latency
            if dep:
                self.now = completion
            else:
                self._outstanding.append((completion, self.inst_index))
                self._retire(self.inst_index)
        self._last_completion = completion
        self.hierarchy.fill_l1(block)
        candidates = self.prefetcher.on_prefetch_hit(pc, block, entry.stream_id)
        self._after_event(candidates)

    def _demand_miss(self, pc: int, block: int, dep: int) -> None:
        res = self.result
        res.misses += 1
        if dep:
            self.now = max(self.now, self._last_completion)
        if self.hierarchy.llc.access(block):
            res.llc_hits += 1
            completion = self.now + self.config.llc_latency_cycles
        else:
            res.memory_accesses += 1
            completion = self.dram.access(self.now, "demand")
        if dep:
            # Pointer chase: the core cannot proceed without the data.
            self.now = completion
        else:
            self._outstanding.append((completion, self.inst_index))
            self._retire(self.inst_index)
        self._last_completion = completion
        candidates = self.prefetcher.on_miss(pc, block)
        self._after_event(candidates)

    def _retire(self, inst_index: int) -> None:
        """Stall when the ROB window or MSHR file is exhausted."""
        rob = self.config.rob_entries
        mshrs = self.config.l1_mshrs
        outstanding = self._outstanding
        while outstanding:
            completion, issued_at = outstanding[0]
            if completion <= self.now:
                outstanding.popleft()
                continue
            if inst_index - issued_at >= rob or len(outstanding) > mshrs:
                self.now = completion
                outstanding.popleft()
                continue
            break

    # -- prefetch issue ---------------------------------------------------
    def _after_event(self, candidates) -> None:
        # Charge new metadata transfers against the shared channel.
        metadata = self.prefetcher.metadata
        for _ in range(metadata.reads - self._md_reads):
            self.dram.access(self.now, "metadata_read")
        for _ in range(metadata.writes - self._md_writes):
            self.dram.access(self.now, "metadata_write")
        self._md_reads = metadata.reads
        self._md_writes = metadata.writes

        for sid in self.prefetcher.take_killed_streams():
            self.buffer.invalidate_stream(sid)

        round_trip = self.config.memory_latency_cycles
        drop_backlog = (self.config.prefetch_drop_backlog_blocks
                        * self.config.cycles_per_block_transfer)
        for block, sid in candidates:
            if self.buffer.probe(block) or self.hierarchy.l1.probe(block):
                continue
            if self.dram.ledger.backlog(self.now) > drop_backlog:
                # Channel saturated: shed the prefetch rather than queue
                # it behind an unbounded backlog.
                self.result.prefetches_dropped += 1
                continue
            if sid not in self._seen_streams:
                self._seen_streams.add(sid)
                metadata_delay = self.prefetcher.first_prefetch_round_trips * round_trip
            else:
                metadata_delay = 0.0
            # The serialised metadata round trips delay the block's
            # arrival; the channel occupancy itself is charged at issue
            # time so the single-server queue sees arrivals in order.
            if self.hierarchy.probe_prefetch_target(block) is AccessOutcome.LLC_HIT:
                ready = self.now + metadata_delay + self.config.llc_latency_cycles
            else:
                ready = self.dram.access(self.now, "prefetch_useful") + metadata_delay
            self.result.prefetches_issued += 1
            victim = self.buffer.insert(block, sid, ready_time=ready)
            if victim is not None:
                self.prefetcher.on_buffer_eviction(
                    victim.block, victim.stream_id, victim.used)

    # -- one-shot convenience -----------------------------------------------
    def run(self, trace: MemoryTrace, warmup_frac: float = 0.0) -> TimingResult:
        """Replay the whole trace; optionally exclude a leading warm-up
        fraction from the reported instruction/cycle counts."""
        self.load(trace, warmup=int(len(trace) * warmup_frac))
        while not self.done():
            self.step()
        return self.finalise()
